//! The interpreter: executes a parsed loop body against the speculative
//! engine's instrumented context — the run-time half of the pass.
//!
//! The evaluator is generic over [`DataCtx`] so the same body can run
//! against the ordinary speculative context ([`rlrpd_core::IterCtx`])
//! or the induction-variable context ([`rlrpd_core::IndCtx`], the
//! EXTEND two-pass scheme).

use crate::analyze::Class;
use crate::ast::*;
use rlrpd_core::{ArrayId, IndCtx, IterCtx};
use std::cell::RefCell;
use std::ops::ControlFlow;

thread_local! {
    /// Per-thread `let`-slot buffer, shared by every tree-walked loop
    /// body on the thread. The body is `&self`, so the iteration frame
    /// cannot live in the loop object; keeping one grow-only buffer
    /// per thread means the block hot loop never allocates — the same
    /// treatment the VM gives its register file.
    static LOCALS: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zeroed `n`-slot locals buffer drawn from the
/// per-thread scratch (no allocation once the buffer has grown to the
/// largest body on this thread).
pub(crate) fn with_locals<R>(n: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    LOCALS.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < n {
            buf.resize(n, 0.0);
        }
        let slots = &mut buf[..n];
        slots.fill(0.0);
        f(slots)
    })
}

/// Exactly `v.round() as i64` (round half away from zero, `as`-cast
/// saturation included), computed with integer conversions instead of
/// the float intrinsic. On baseline x86-64 (no SSE4.1) `f64::round`
/// lowers to a libm call, and this helper sits on the hottest path of
/// *both* compiled tiers — every `%` operand and every subscript —
/// so the call overhead dominated iteration time. Shared by the
/// tree-walk evaluator, the VM, and the constant folder, so all three
/// agree bit-for-bit by construction.
#[inline]
pub(crate) fn round_i64(v: f64) -> i64 {
    let t = v as i64; // truncate toward zero; saturating, NaN -> 0
    let frac = v - t as f64;
    t.saturating_add((frac >= 0.5) as i64 - (frac <= -0.5) as i64)
}

/// The `%` operator of the language: round both operands to integers,
/// Euclidean remainder.
///
/// # Panics
/// Panics when the rounded divisor is zero (a program fault).
#[inline]
pub(crate) fn rem_value(l: f64, r: f64) -> f64 {
    let (li, ri) = (round_i64(l), round_i64(r));
    assert!(ri != 0, "modulo by zero");
    li.rem_euclid(ri) as f64
}

/// Evaluate a subscript value into an element index.
///
/// # Panics
/// Panics on negative or non-integral subscripts (a bug in the source
/// program, reported with the offending value).
fn subscript(v: f64) -> usize {
    let r = round_i64(v);
    assert!(
        (v - r as f64).abs() < 1e-9 && r >= 0,
        "subscript {v} is not a non-negative integer"
    );
    r as usize
}

/// Uniform data-access interface over the engine's contexts.
pub(crate) trait DataCtx {
    fn read(&mut self, a: usize, i: usize) -> f64;
    fn write(&mut self, a: usize, i: usize, v: f64);
    fn reduce(&mut self, a: usize, i: usize, v: f64);
    fn exit(&mut self);
    /// Current induction-counter value (induction contexts only).
    fn counter(&self) -> usize {
        panic!("counters are only available in induction loops")
    }
    /// Bump the induction counter (induction contexts only).
    fn bump(&mut self) {
        panic!("counters are only available in induction loops")
    }
}

impl DataCtx for IterCtx<'_, f64> {
    fn read(&mut self, a: usize, i: usize) -> f64 {
        IterCtx::read(self, ArrayId(a as u32), i)
    }
    fn write(&mut self, a: usize, i: usize, v: f64) {
        IterCtx::write(self, ArrayId(a as u32), i, v)
    }
    fn reduce(&mut self, a: usize, i: usize, v: f64) {
        IterCtx::reduce(self, ArrayId(a as u32), i, v)
    }
    fn exit(&mut self) {
        IterCtx::exit(self)
    }
}

impl DataCtx for IndCtx<'_, f64> {
    fn read(&mut self, a: usize, i: usize) -> f64 {
        IndCtx::read(self, a, i)
    }
    fn write(&mut self, a: usize, i: usize, v: f64) {
        IndCtx::write(self, a, i, v)
    }
    fn reduce(&mut self, _a: usize, _i: usize, _v: f64) {
        panic!("reductions are not supported inside induction loops")
    }
    fn exit(&mut self) {
        panic!("premature exit is not supported inside induction loops")
    }
    fn counter(&self) -> usize {
        IndCtx::counter(self)
    }
    fn bump(&mut self) {
        IndCtx::bump(self)
    }
}

/// One iteration's evaluation state: loop-variable value, `let` slots
/// (reset per iteration), classifications (routing `⊕=`), and the
/// engine context.
pub(crate) struct Eval<'a, C> {
    pub i: f64,
    pub locals: &'a mut [f64],
    pub classes: &'a [Class],
    pub ctx: &'a mut C,
}

impl<'a, C: DataCtx> Eval<'a, C> {
    pub fn expr(&mut self, e: &Expr) -> f64 {
        match e {
            Expr::Num(n) => *n,
            Expr::LoopVar => self.i,
            Expr::Counter => self.ctx.counter() as f64,
            Expr::Local(slot) => self.locals[*slot],
            Expr::Read { array, index, .. } => {
                let idx = self.expr(index);
                self.ctx.read(*array, subscript(idx))
            }
            Expr::Call { func, args } => {
                let a = self.expr(&args[0]);
                match func {
                    Intrinsic::Min => a.min(self.expr(&args[1])),
                    Intrinsic::Max => a.max(self.expr(&args[1])),
                    Intrinsic::Abs => a.abs(),
                    Intrinsic::Sqrt => a.sqrt(),
                    Intrinsic::Floor => a.floor(),
                }
            }
            Expr::Neg(e) => -self.expr(e),
            Expr::Not(e) => {
                if self.expr(e) != 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return if self.expr(lhs) != 0.0 && self.expr(rhs) != 0.0 {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    BinOp::Or => {
                        return if self.expr(lhs) != 0.0 || self.expr(rhs) != 0.0 {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    _ => {}
                }
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                    BinOp::Rem => rem_value(l, r),
                    BinOp::Eq => bool_val(l == r),
                    BinOp::Ne => bool_val(l != r),
                    BinOp::Lt => bool_val(l < r),
                    BinOp::Le => bool_val(l <= r),
                    BinOp::Gt => bool_val(l > r),
                    BinOp::Ge => bool_val(l >= r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Execute `body`; `Break(())` means the iteration requested a
    /// premature loop exit and the rest of the body must not run.
    pub fn stmts(&mut self, body: &[Stmt]) -> ControlFlow<()> {
        for s in body {
            match s {
                Stmt::Let { slot, expr } => {
                    self.locals[*slot] = self.expr(expr);
                }
                Stmt::Assign {
                    array, index, expr, ..
                } => {
                    let idx = subscript(self.expr(index));
                    let v = self.expr(expr);
                    self.ctx.write(*array, idx, v);
                }
                Stmt::Update {
                    array,
                    index,
                    op,
                    expr,
                    ..
                } => {
                    let idx = subscript(self.expr(index));
                    let delta = self.expr(expr);
                    if matches!(self.classes[*array], Class::Reduction(_)) {
                        self.ctx.reduce(*array, idx, delta);
                    } else {
                        // Desugared read-modify-write under the LRPD
                        // test (or direct access for untested arrays).
                        let cur = self.ctx.read(*array, idx);
                        let v = match op {
                            UpdateOp::Add => cur + delta,
                            UpdateOp::Mul => cur * delta,
                        };
                        self.ctx.write(*array, idx, v);
                    }
                }
                Stmt::Bump => self.ctx.bump(),
                Stmt::Break { cond } => {
                    if self.expr(cond) != 0.0 {
                        self.ctx.exit();
                        return ControlFlow::Break(());
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let taken = if self.expr(cond) != 0.0 {
                        self.stmts(then_body)
                    } else {
                        self.stmts(else_body)
                    };
                    if taken.is_break() {
                        return ControlFlow::Break(());
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }
}

fn bool_val(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}
