//! The interpreter: executes a parsed loop body against the speculative
//! engine's instrumented context — the run-time half of the pass.
//!
//! The evaluator is generic over [`DataCtx`] so the same body can run
//! against the ordinary speculative context ([`rlrpd_core::IterCtx`])
//! or the induction-variable context ([`rlrpd_core::IndCtx`], the
//! EXTEND two-pass scheme).

use crate::analyze::Class;
use crate::ast::*;
use rlrpd_core::{ArrayId, IndCtx, IterCtx};
use std::ops::ControlFlow;

/// Evaluate a subscript value into an element index.
///
/// # Panics
/// Panics on negative or non-integral subscripts (a bug in the source
/// program, reported with the offending value).
fn subscript(v: f64) -> usize {
    let r = v.round();
    assert!(
        (v - r).abs() < 1e-9 && r >= 0.0,
        "subscript {v} is not a non-negative integer"
    );
    r as usize
}

/// Uniform data-access interface over the engine's contexts.
pub(crate) trait DataCtx {
    fn read(&mut self, a: usize, i: usize) -> f64;
    fn write(&mut self, a: usize, i: usize, v: f64);
    fn reduce(&mut self, a: usize, i: usize, v: f64);
    fn exit(&mut self);
    /// Current induction-counter value (induction contexts only).
    fn counter(&self) -> usize {
        panic!("counters are only available in induction loops")
    }
    /// Bump the induction counter (induction contexts only).
    fn bump(&mut self) {
        panic!("counters are only available in induction loops")
    }
}

impl DataCtx for IterCtx<'_, f64> {
    fn read(&mut self, a: usize, i: usize) -> f64 {
        IterCtx::read(self, ArrayId(a as u32), i)
    }
    fn write(&mut self, a: usize, i: usize, v: f64) {
        IterCtx::write(self, ArrayId(a as u32), i, v)
    }
    fn reduce(&mut self, a: usize, i: usize, v: f64) {
        IterCtx::reduce(self, ArrayId(a as u32), i, v)
    }
    fn exit(&mut self) {
        IterCtx::exit(self)
    }
}

impl DataCtx for IndCtx<'_, f64> {
    fn read(&mut self, a: usize, i: usize) -> f64 {
        IndCtx::read(self, a, i)
    }
    fn write(&mut self, a: usize, i: usize, v: f64) {
        IndCtx::write(self, a, i, v)
    }
    fn reduce(&mut self, _a: usize, _i: usize, _v: f64) {
        panic!("reductions are not supported inside induction loops")
    }
    fn exit(&mut self) {
        panic!("premature exit is not supported inside induction loops")
    }
    fn counter(&self) -> usize {
        IndCtx::counter(self)
    }
    fn bump(&mut self) {
        IndCtx::bump(self)
    }
}

/// One iteration's evaluation state: loop-variable value, `let` slots
/// (reset per iteration), classifications (routing `⊕=`), and the
/// engine context.
pub(crate) struct Eval<'a, C> {
    pub i: f64,
    pub locals: &'a mut [f64],
    pub classes: &'a [Class],
    pub ctx: &'a mut C,
}

impl<'a, C: DataCtx> Eval<'a, C> {
    pub fn expr(&mut self, e: &Expr) -> f64 {
        match e {
            Expr::Num(n) => *n,
            Expr::LoopVar => self.i,
            Expr::Counter => self.ctx.counter() as f64,
            Expr::Local(slot) => self.locals[*slot],
            Expr::Read { array, index, .. } => {
                let idx = self.expr(index);
                self.ctx.read(*array, subscript(idx))
            }
            Expr::Call { func, args } => {
                let a = self.expr(&args[0]);
                match func {
                    Intrinsic::Min => a.min(self.expr(&args[1])),
                    Intrinsic::Max => a.max(self.expr(&args[1])),
                    Intrinsic::Abs => a.abs(),
                    Intrinsic::Sqrt => a.sqrt(),
                    Intrinsic::Floor => a.floor(),
                }
            }
            Expr::Neg(e) => -self.expr(e),
            Expr::Not(e) => {
                if self.expr(e) != 0.0 {
                    0.0
                } else {
                    1.0
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return if self.expr(lhs) != 0.0 && self.expr(rhs) != 0.0 {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    BinOp::Or => {
                        return if self.expr(lhs) != 0.0 || self.expr(rhs) != 0.0 {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    _ => {}
                }
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                    BinOp::Rem => {
                        let (li, ri) = (l.round() as i64, r.round() as i64);
                        assert!(ri != 0, "modulo by zero");
                        (li.rem_euclid(ri)) as f64
                    }
                    BinOp::Eq => bool_val(l == r),
                    BinOp::Ne => bool_val(l != r),
                    BinOp::Lt => bool_val(l < r),
                    BinOp::Le => bool_val(l <= r),
                    BinOp::Gt => bool_val(l > r),
                    BinOp::Ge => bool_val(l >= r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Execute `body`; `Break(())` means the iteration requested a
    /// premature loop exit and the rest of the body must not run.
    pub fn stmts(&mut self, body: &[Stmt]) -> ControlFlow<()> {
        for s in body {
            match s {
                Stmt::Let { slot, expr } => {
                    self.locals[*slot] = self.expr(expr);
                }
                Stmt::Assign {
                    array, index, expr, ..
                } => {
                    let idx = subscript(self.expr(index));
                    let v = self.expr(expr);
                    self.ctx.write(*array, idx, v);
                }
                Stmt::Update {
                    array,
                    index,
                    op,
                    expr,
                    ..
                } => {
                    let idx = subscript(self.expr(index));
                    let delta = self.expr(expr);
                    if matches!(self.classes[*array], Class::Reduction(_)) {
                        self.ctx.reduce(*array, idx, delta);
                    } else {
                        // Desugared read-modify-write under the LRPD
                        // test (or direct access for untested arrays).
                        let cur = self.ctx.read(*array, idx);
                        let v = match op {
                            UpdateOp::Add => cur + delta,
                            UpdateOp::Mul => cur * delta,
                        };
                        self.ctx.write(*array, idx, v);
                    }
                }
                Stmt::Bump => self.ctx.bump(),
                Stmt::Break { cond } => {
                    if self.expr(cond) != 0.0 {
                        self.ctx.exit();
                        return ControlFlow::Break(());
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let taken = if self.expr(cond) != 0.0 {
                        self.stmts(then_body)
                    } else {
                        self.stmts(else_body)
                    };
                    if taken.is_break() {
                        return ControlFlow::Break(());
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }
}

fn bool_val(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}
