//! The static classifier — the compile-time half of the paper's
//! Polaris run-time pass.
//!
//! For each declared array the pass must decide how the transformed
//! loop treats it:
//!
//! * **reduction** — every reference has the shape `A[e] ⊕= expr` with
//!   one operator and `expr` free of `A` (the paper's footnote-1
//!   pattern): parallelize speculatively as a reduction;
//! * **untested** — no two *different* iterations can touch the same
//!   element with a write involved: statically safe for any block
//!   schedule, only checkpointing is needed;
//! * **tested** — anything else (indirection, data-dependent
//!   subscripts, guarded cross-iteration writes, or affine subscripts
//!   with provable cross-iteration conflicts): privatize, mark, and run
//!   the LRPD test.
//!
//! The conflict decision is the symbolic GCD/Banerjee analysis of
//! [`crate::depend`] — O(refs²) per array, independent of the loop
//! range — and every verdict carries structured evidence: the
//! conflicting reference pair with source spans, the minimum dependence
//! distance when one is provable, and a predicted touch-density
//! estimate for shadow selection. The pre-symbolic exact enumerator is
//! retained as [`classify_loop_exact`], the ground-truth oracle the
//! symbolic path is property-tested against.

use crate::ast::*;
use crate::depend::{
    self, array_conflict, touch_estimate, ArrayRefs, Certainty, ConflictEvidence, TouchEstimate,
};
use std::collections::HashMap;

/// How the run-time system will treat an array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Privatize + LRPD test.
    Tested,
    /// Direct writes + checkpoint.
    Untested,
    /// Speculative reduction with the given operator.
    Reduction(UpdateOp),
}

/// Classification of one array: the decision plus the structured
/// evidence behind it.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The decision.
    pub class: Class,
    /// Human-readable rationale (for diagnostics / reports).
    pub rationale: String,
    /// The dependence that forced (or could force) the LRPD test:
    /// conflicting reference pair, certainty, distance, first sink.
    pub evidence: Option<ConflictEvidence>,
    /// Predicted number of distinct elements touched / density
    /// (`None` when the loop never references the array).
    pub touch: Option<TouchEstimate>,
    /// When the array is Tested *only* because of conditional
    /// references: the span of the responsible guard.
    pub guard_only: Option<Span>,
    /// Spans of two updates with different `⊕` operators (the broken
    /// reduction pattern), when that is what forced the test.
    pub mixed_ops: Option<(Span, Span)>,
    /// For hinted declarations: what the analysis alone would have
    /// decided (drives the unsound-hint / redundant-hint lints).
    pub unhinted: Option<Box<Classification>>,
}

impl Classification {
    fn new(class: Class, rationale: impl Into<String>) -> Self {
        Classification {
            class,
            rationale: rationale.into(),
            evidence: None,
            touch: None,
            guard_only: None,
            mixed_ops: None,
            unhinted: None,
        }
    }
}

/// Classify every array for every loop of `program`:
/// `result[loop][array]`. An array may be tested in one loop and
/// untested in another — each loop instance gets its own run-time
/// treatment, exactly as the pass instruments each loop separately.
pub fn classify_program(program: &Program) -> Vec<Vec<Classification>> {
    (0..program.loops.len())
        .map(|k| classify_loop(program, k))
        .collect()
}

/// Classify every array of loop `k` (declaration order).
pub fn classify_loop(program: &Program, k: usize) -> Vec<Classification> {
    let refs = depend::collect_refs(program, k);
    let (lo, hi) = program.loops[k].range;
    program
        .arrays
        .iter()
        .enumerate()
        .map(|(id, decl)| {
            let mut c = classify_array(decl.hint, &refs[id], lo, hi);
            if !refs[id].accesses.is_empty() {
                c.touch = Some(touch_estimate(&refs[id].accesses, lo, hi, decl.size));
            }
            c
        })
        .collect()
}

fn classify_array(
    hint: Option<KindHint>,
    refs: &ArrayRefs,
    lo: usize,
    hi: usize,
) -> Classification {
    if let Some(hint) = hint {
        let class = match hint {
            KindHint::Tested => Class::Tested,
            KindHint::Untested => Class::Untested,
            KindHint::Reduction(op) => Class::Reduction(op),
        };
        let mut c = Classification::new(class, "explicit declaration hint");
        // What the analysis alone would say — the hint lints compare.
        c.unhinted = Some(Box::new(classify_array(None, refs, lo, hi)));
        return c;
    }

    if !refs.updates.is_empty() && !refs.non_reduction_ref {
        let (op, first_span) = refs.updates[0];
        if refs.updates.iter().all(|&(o, _)| o == op) {
            return Classification::new(
                Class::Reduction(op),
                format!(
                    "referenced only as 'x {}= expr' with x not in expr",
                    match op {
                        UpdateOp::Add => "+",
                        UpdateOp::Mul => "*",
                    }
                ),
            );
        }
        let (_, other_span) = *refs.updates.iter().find(|&&(o, _)| o != op).unwrap();
        let mut c = Classification::new(Class::Tested, "mixed reduction operators");
        c.mixed_ops = Some((first_span, other_span));
        return c;
    }

    if refs.accesses.is_empty() {
        return Classification::new(Class::Untested, "never referenced by the loop");
    }
    if !refs.accesses.iter().any(|a| a.is_write) {
        return Classification::new(Class::Untested, "read-only");
    }

    // Symbolic cross-iteration conflict decision (GCD + Banerjee +
    // interval disjointness) — never enumerates the loop range.
    match array_conflict(&refs.accesses, lo, hi) {
        Some(ev) => {
            let rationale = describe(&ev);
            let mut c = Classification::new(Class::Tested, rationale);
            if ev.guarded {
                // Would the array be safe with every conditional
                // reference ignored? Then a guard alone forces the
                // test — worth a diagnostic.
                let unguarded: Vec<_> = refs
                    .accesses
                    .iter()
                    .filter(|a| a.guard.is_none())
                    .cloned()
                    .collect();
                if array_conflict(&unguarded, lo, hi).is_none() {
                    c.guard_only = ev.src.guard.or(ev.sink.guard);
                }
            }
            c.evidence = Some(ev);
            c
        }
        None => Classification::new(
            Class::Untested,
            "provably iteration-disjoint (GCD/Banerjee)",
        ),
    }
}

fn describe(ev: &ConflictEvidence) -> String {
    match (ev.certainty, ev.distance) {
        (Certainty::Must, Some(d)) => format!(
            "cross-iteration dependence between {} and {} (min distance {d})",
            ev.src.text, ev.sink.text
        ),
        (Certainty::Must, None) => format!(
            "cross-iteration dependence forced by {} (pigeonhole: more iterations than reachable elements)",
            ev.src.text
        ),
        (Certainty::May, _) if ev.guarded => format!(
            "possible cross-iteration conflict between {} and {} behind a guard",
            ev.src.text, ev.sink.text
        ),
        (Certainty::May, _) => format!(
            "data-dependent subscript: {} may conflict with {} across iterations",
            ev.src.text, ev.sink.text
        ),
    }
}

/// The exact-enumeration oracle: classify every array of loop `k` by
/// concretely evaluating every subscript at every iteration — the
/// pre-symbolic classifier, kept as the ground truth that
/// [`classify_loop`] is tested against. Subscripts that are not pure
/// functions of the iteration (array reads, the induction counter)
/// conservatively count as conflicting. O(iterations × body) — use
/// only on small ranges.
pub fn classify_loop_exact(program: &Program, k: usize) -> Vec<Class> {
    let refs = depend::collect_refs(program, k);
    let nest = &program.loops[k];
    let (lo, hi) = nest.range;

    let mut tables: Vec<HashMap<i64, Group>> =
        (0..program.arrays.len()).map(|_| HashMap::new()).collect();
    let mut impure = vec![false; program.arrays.len()];

    for i in lo..hi {
        let mut w = ExactWalk {
            i: i as f64,
            iter: i,
            locals: vec![None; nest.num_locals],
            tables: &mut tables,
            impure: &mut impure,
        };
        w.stmts(&nest.body);
    }

    program
        .arrays
        .iter()
        .enumerate()
        .map(|(id, decl)| {
            if let Some(hint) = decl.hint {
                return match hint {
                    KindHint::Tested => Class::Tested,
                    KindHint::Untested => Class::Untested,
                    KindHint::Reduction(op) => Class::Reduction(op),
                };
            }
            let r = &refs[id];
            if !r.updates.is_empty() && !r.non_reduction_ref {
                let op = r.updates[0].0;
                return if r.updates.iter().all(|&(o, _)| o == op) {
                    Class::Reduction(op)
                } else {
                    Class::Tested
                };
            }
            if r.accesses.is_empty() {
                return Class::Untested;
            }
            if !r.accesses.iter().any(|a| a.is_write) {
                return Class::Untested;
            }
            if impure[id] {
                return Class::Tested;
            }
            if tables[id].values().any(|g| g.has_write && g.multi) {
                Class::Tested
            } else {
                Class::Untested
            }
        })
        .collect()
}

/// One iteration of the oracle's walk: evaluates pure subscripts with
/// the interpreter's arithmetic, assumes every guard taken.
struct ExactWalk<'t> {
    i: f64,
    iter: usize,
    locals: Vec<Option<f64>>,
    tables: &'t mut Vec<HashMap<i64, Group>>,
    impure: &'t mut Vec<bool>,
}

/// Per-element record of the oracle's enumeration: first touching
/// iteration, whether any write touched it, whether two distinct
/// iterations touched it.
struct Group {
    has_write: bool,
    iter: usize,
    multi: bool,
}

impl ExactWalk<'_> {
    /// Pure evaluation mirroring the interpreter's arithmetic
    /// (rounded `rem_euclid`, f64 elsewhere); `None` when the value
    /// depends on array contents or the induction counter.
    fn eval(&self, e: &Expr) -> Option<f64> {
        match e {
            Expr::Num(n) => Some(*n),
            Expr::LoopVar => Some(self.i),
            Expr::Counter | Expr::Read { .. } => None,
            Expr::Local(slot) => self.locals.get(*slot).copied().flatten(),
            Expr::Neg(inner) => Some(-self.eval(inner)?),
            Expr::Not(inner) => Some(if self.eval(inner)? != 0.0 { 0.0 } else { 1.0 }),
            Expr::Call { func, args } => {
                let a = self.eval(&args[0])?;
                Some(match func {
                    Intrinsic::Min => a.min(self.eval(&args[1])?),
                    Intrinsic::Max => a.max(self.eval(&args[1])?),
                    Intrinsic::Abs => a.abs(),
                    Intrinsic::Sqrt => a.sqrt(),
                    Intrinsic::Floor => a.floor(),
                })
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                let b = |v: bool| if v { 1.0 } else { 0.0 };
                Some(match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                    BinOp::Rem => {
                        let (li, ri) = (l.round() as i64, r.round() as i64);
                        if ri == 0 {
                            return None;
                        }
                        li.rem_euclid(ri) as f64
                    }
                    BinOp::Eq => b(l == r),
                    BinOp::Ne => b(l != r),
                    BinOp::Lt => b(l < r),
                    BinOp::Le => b(l <= r),
                    BinOp::Gt => b(l > r),
                    BinOp::Ge => b(l >= r),
                    BinOp::And => b(l != 0.0 && r != 0.0),
                    BinOp::Or => b(l != 0.0 || r != 0.0),
                })
            }
        }
    }

    fn record(&mut self, array: usize, index: &Expr, is_write: bool) {
        let idx = match self.eval(index) {
            Some(v) if (v - v.round()).abs() < 1e-9 => v.round() as i64,
            _ => {
                self.impure[array] = true;
                return;
            }
        };
        let iter = self.iter;
        self.tables[array]
            .entry(idx)
            .and_modify(|g| {
                g.has_write |= is_write;
                if g.iter != iter {
                    g.multi = true;
                }
            })
            .or_insert(Group {
                has_write: is_write,
                iter,
                multi: false,
            });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Read { array, index, .. } => {
                self.record(*array, index, false);
                self.expr(index);
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Neg(e) | Expr::Not(e) => self.expr(e),
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Num(_) | Expr::LoopVar | Expr::Counter | Expr::Local(_) => {}
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            match s {
                Stmt::Let { slot, expr } => {
                    self.expr(expr);
                    self.locals[*slot] = self.eval(expr);
                }
                Stmt::Assign {
                    array, index, expr, ..
                } => {
                    self.record(*array, index, true);
                    self.expr(index);
                    self.expr(expr);
                }
                Stmt::Update {
                    array, index, expr, ..
                } => {
                    // Read-modify-write of one element.
                    self.record(*array, index, true);
                    self.record(*array, index, false);
                    self.expr(index);
                    self.expr(expr);
                }
                Stmt::Bump => {}
                Stmt::Break { cond } => self.expr(cond),
                Stmt::If {
                    then_body,
                    else_body,
                    cond,
                    ..
                } => {
                    self.expr(cond);
                    // Guards are conservatively assumed taken.
                    self.stmts(then_body);
                    self.stmts(else_body);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn classes(src: &str) -> Vec<Class> {
        let p = parse(src).unwrap();
        classify_loop(&p, 0).into_iter().map(|c| c.class).collect()
    }

    fn full(src: &str) -> Vec<Classification> {
        classify_loop(&parse(src).unwrap(), 0)
    }

    #[test]
    fn disjoint_affine_writes_are_untested() {
        let c = classes("array A[100];\nfor i in 0..100 { A[i] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn shifted_affine_read_conflicts() {
        // A[i] written, A[i-1] read: cross-iteration flow dependence.
        let c = classes("array A[101];\nfor i in 1..100 { A[i] = A[i - 1] + 1; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn same_iteration_rmw_is_untested() {
        let c = classes("array A[100];\nfor i in 0..100 { A[i] = A[i] * 2; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn strided_writes_that_collide_are_tested() {
        // i % 10 wraps: 100 iterations into 10 slots.
        let c = classes("array A[10];\nfor i in 0..100 { A[i % 10] = i; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn constant_subscript_write_is_tested() {
        // Every iteration writes A[0]: output dependence.
        let c = classes("array A[4];\nfor i in 0..10 { A[0] = i; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn read_only_arrays_are_untested() {
        let c = classes("array A[10];\narray B[10];\nfor i in 0..10 { A[i] = B[3] + B[i]; }");
        assert_eq!(c, vec![Class::Untested, Class::Untested]);
    }

    #[test]
    fn indirection_is_tested() {
        let c = classes("array A[10];\narray IDX[10];\nfor i in 0..10 { A[IDX[i]] = i; }");
        assert_eq!(c[0], Class::Tested, "A is indexed through IDX");
        assert_eq!(c[1], Class::Untested, "IDX itself is read-only");
    }

    #[test]
    fn pure_update_pattern_is_a_reduction() {
        let c = classes("array Y[10];\narray W[100];\nfor i in 0..100 { W[i] = i; Y[W[i]] += 1; }");
        assert_eq!(c[0], Class::Reduction(UpdateOp::Add));
    }

    #[test]
    fn update_reading_itself_is_not_a_reduction() {
        let c = classes("array Y[10];\nfor i in 0..10 { Y[i] += Y[0]; }");
        assert_eq!(c[0], Class::Tested);
    }

    #[test]
    fn update_mixed_with_assign_is_not_a_reduction() {
        let c = classes("array Y[10];\nfor i in 0..10 { Y[i] += 1; Y[0] = 5; }");
        assert_ne!(c[0], Class::Reduction(UpdateOp::Add));
    }

    #[test]
    fn mixed_update_operators_fall_back_to_tested() {
        let c = full("array Y[10];\nfor i in 0..10 { Y[0] += 1; Y[1] *= 2; }");
        assert_eq!(c[0].class, Class::Tested);
        let (a, b) = c[0].mixed_ops.expect("mixed-op spans recorded");
        assert_eq!((a.line, b.line), (2, 2));
    }

    #[test]
    fn affine_locals_propagate() {
        // let j = i + 1 keeps the subscript affine and disjoint.
        let c = classes("array A[101];\nfor i in 0..100 { let j = i + 1; A[j] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn data_dependent_locals_taint_subscripts() {
        let c =
            classes("array A[100];\narray B[100];\nfor i in 0..100 { let j = B[i]; A[j] = i; }");
        assert_eq!(c[0], Class::Tested);
    }

    #[test]
    fn guarded_conflicting_write_is_tested() {
        // The guard might not fire, but the pass must assume it can.
        let c = full(
            "array A[110];\nfor i in 0..100 { if i % 7 == 0 { A[i + 5] = 1; } A[i] = A[i] + 1; }",
        );
        assert_eq!(c[0].class, Class::Tested);
        let g = c[0].guard_only.expect("only the guard forces the test");
        assert_eq!(g.line, 2);
    }

    #[test]
    fn hints_override_analysis() {
        let c = full("array A[100] : tested;\nfor i in 0..100 { A[i] = i; }");
        assert_eq!(c[0].class, Class::Tested);
        let unhinted = c[0].unhinted.as_ref().expect("unhinted verdict recorded");
        assert_eq!(unhinted.class, Class::Untested, "the hint was redundant");
    }

    #[test]
    fn scaled_affine_subscripts_are_analyzed() {
        // 2*i and 2*i+1 never collide across iterations.
        let c = classes("array A[200];\nfor i in 0..100 { A[2 * i] = i; A[2 * i + 1] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn wrapped_modulo_stays_affine_when_in_range() {
        // i % 512 over 0..512 is the identity: still affine, disjoint.
        let c = classes("array A[512];\nfor i in 0..512 { A[i % 512] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn evidence_carries_distance_and_spans() {
        let c = full("array A[200];\nfor i in 8..100 { A[i] = A[i - 8] + 1; }");
        assert_eq!(c[0].class, Class::Tested);
        let ev = c[0].evidence.as_ref().expect("dependence evidence");
        assert_eq!(ev.distance, Some(8));
        assert_eq!(ev.first_sink, Some(16));
        assert_eq!(ev.certainty, Certainty::Must);
        assert!(ev.src.span.line > 0);
        assert!(c[0].rationale.contains("distance 8"), "{}", c[0].rationale);
    }

    #[test]
    fn touch_density_is_predicted() {
        let c = full("array A[1000];\nfor i in 0..100 { A[i % 16] += i; }");
        let t = c[0].touch.expect("touch estimate");
        assert_eq!(t.touched, 16);
        assert!(t.density < 0.02);
    }

    #[test]
    fn symbolic_classifier_matches_exact_oracle_on_fixed_cases() {
        for src in [
            "array A[100];\nfor i in 0..100 { A[i] = i; }",
            "array A[101];\nfor i in 1..100 { A[i] = A[i - 1] + 1; }",
            "array A[100];\nfor i in 0..100 { A[i] = A[i] * 2; }",
            "array A[10];\nfor i in 0..100 { A[i % 10] = i; }",
            "array A[4];\nfor i in 0..10 { A[0] = i; }",
            "array A[200];\nfor i in 0..100 { A[2 * i] = i; A[2 * i + 1] = i; }",
            "array A[300];\nfor i in 0..100 { let j = 2 * i + 5; A[j] = A[3 * j - 1]; }",
            "array Y[10];\nfor i in 0..10 { Y[i] += 1; }",
            "array A[512];\nfor i in 0..512 { A[i % 512] = i; }",
            "array A[110];\nfor i in 0..100 { if i % 7 == 0 { A[i + 5] = 1; } A[i] = A[i] + 1; }",
        ] {
            let p = parse(src).unwrap();
            let sym: Vec<Class> = classify_loop(&p, 0).into_iter().map(|c| c.class).collect();
            let exact = classify_loop_exact(&p, 0);
            assert_eq!(sym, exact, "disagreement on:\n{src}");
        }
    }

    #[test]
    fn oracle_is_sound_on_the_example_programs() {
        // Wherever the symbolic classifier says Untested, the exact
        // enumeration must find no conflict either (and vice versa the
        // oracle finding a conflict must mean we tested it).
        for src in [
            include_str!("../../../examples/programs/tracking.rlp"),
            include_str!("../../../examples/programs/lu_sparse.rlp"),
            include_str!("../../../examples/programs/premature_exit.rlp"),
            include_str!("../../../examples/programs/two_phase.rlp"),
            include_str!("../../../examples/programs/extend.rlp"),
        ] {
            let p = parse(src).unwrap();
            for k in 0..p.loops.len() {
                let sym = classify_loop(&p, k);
                let exact = classify_loop_exact(&p, k);
                for (id, (s, e)) in sym.iter().zip(&exact).enumerate() {
                    if s.class == Class::Untested {
                        assert_eq!(
                            *e,
                            Class::Untested,
                            "loop {k} array {id}: symbolic Untested but oracle disagrees"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_classification_is_range_independent_fast() {
        // A petaiteration loop classifies instantly — the point of the
        // GCD/Banerjee path. (The oracle would never finish this.)
        let c =
            classes("array A[100];\nfor i in 0..1000000000000 { A[i % 100] = A[i % 100] + 1; }");
        assert_eq!(c, vec![Class::Tested]);
    }
}
