//! The static classifier — the compile-time half of the paper's
//! Polaris run-time pass.
//!
//! For each declared array the pass must decide how the transformed
//! loop treats it:
//!
//! * **reduction** — every reference has the shape `A[e] ⊕= expr` with
//!   one operator and `expr` free of `A` (the paper's footnote-1
//!   pattern): parallelize speculatively as a reduction;
//! * **untested** — every subscript is affine in the loop variable and
//!   no two *different* iterations can touch the same element with a
//!   write involved: statically safe for any block schedule, only
//!   checkpointing is needed;
//! * **tested** — anything else (indirection, data-dependent
//!   subscripts, guarded cross-iteration writes, or affine subscripts
//!   with provable cross-iteration conflicts): privatize, mark, and run
//!   the LRPD test.
//!
//! The affine conflict check is exact (it enumerates the loop range),
//! which a compiler would replace with a GCD/Banerjee test; guards are
//! conservatively assumed taken, exactly as a static pass must.

use crate::ast::*;

/// How the run-time system will treat an array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Privatize + LRPD test.
    Tested,
    /// Direct writes + checkpoint.
    Untested,
    /// Speculative reduction with the given operator.
    Reduction(UpdateOp),
}

/// Classification of one array, with the pass's reasoning.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The decision.
    pub class: Class,
    /// Human-readable rationale (for diagnostics / reports).
    pub rationale: String,
}

/// A subscript as an affine function of the loop variable, when it is
/// one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Affine {
    Lin { a: i64, b: i64 },
    NotAffine,
}

impl Affine {
    fn constant(b: i64) -> Self {
        Affine::Lin { a: 0, b }
    }
}

fn affine(expr: &Expr, locals: &[Affine]) -> Affine {
    use Affine::*;
    match expr {
        Expr::Num(n) => {
            if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
                Affine::constant(*n as i64)
            } else {
                NotAffine
            }
        }
        Expr::LoopVar => Lin { a: 1, b: 0 },
        Expr::Local(slot) => locals.get(*slot).copied().unwrap_or(NotAffine),
        Expr::Neg(e) => match affine(e, locals) {
            Lin { a, b } => Lin { a: -a, b: -b },
            NotAffine => NotAffine,
        },
        Expr::Bin { op, lhs, rhs } => {
            let (l, r) = (affine(lhs, locals), affine(rhs, locals));
            match (op, l, r) {
                (BinOp::Add, Lin { a: a1, b: b1 }, Lin { a: a2, b: b2 }) => Lin {
                    a: a1 + a2,
                    b: b1 + b2,
                },
                (BinOp::Sub, Lin { a: a1, b: b1 }, Lin { a: a2, b: b2 }) => Lin {
                    a: a1 - a2,
                    b: b1 - b2,
                },
                (BinOp::Mul, Lin { a: 0, b: c }, Lin { a, b }) => Lin { a: a * c, b: b * c },
                (BinOp::Mul, Lin { a, b }, Lin { a: 0, b: c }) => Lin { a: a * c, b: b * c },
                _ => NotAffine,
            }
        }
        _ => NotAffine,
    }
}

/// One array reference found by the walk.
#[derive(Clone, Debug)]
struct Access {
    affine: Affine,
    is_write: bool,
}

#[derive(Default)]
struct Walk {
    /// Per array: collected ordinary accesses.
    accesses: Vec<Vec<Access>>,
    /// Per array: update-statement operators seen (`A[e] ⊕= …`).
    update_ops: Vec<Vec<UpdateOp>>,
    /// Per array: referenced outside the update pattern, or inside an
    /// update's delta/subscript of itself.
    non_reduction_ref: Vec<bool>,
    locals: Vec<Affine>,
}

impl Walk {
    fn new(num_arrays: usize, num_locals: usize) -> Self {
        Walk {
            accesses: vec![Vec::new(); num_arrays],
            update_ops: vec![Vec::new(); num_arrays],
            non_reduction_ref: vec![false; num_arrays],
            locals: vec![Affine::NotAffine; num_locals],
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Read { array, index } => {
                self.non_reduction_ref[*array] = true;
                let aff = affine(index, &self.locals);
                self.accesses[*array].push(Access {
                    affine: aff,
                    is_write: false,
                });
                self.expr(index);
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Neg(e) | Expr::Not(e) => self.expr(e),
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Num(_) | Expr::LoopVar | Expr::Counter | Expr::Local(_) => {}
        }
    }

    fn reads_array(e: &Expr, array: usize) -> bool {
        match e {
            Expr::Read { array: a, index } => *a == array || Self::reads_array(index, array),
            Expr::Bin { lhs, rhs, .. } => {
                Self::reads_array(lhs, array) || Self::reads_array(rhs, array)
            }
            Expr::Neg(e) | Expr::Not(e) => Self::reads_array(e, array),
            Expr::Call { args, .. } => args.iter().any(|a| Self::reads_array(a, array)),
            _ => false,
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            match s {
                Stmt::Let { slot, expr } => {
                    self.expr(expr);
                    self.locals[*slot] = affine(expr, &self.locals);
                }
                Stmt::Assign { array, index, expr } => {
                    self.non_reduction_ref[*array] = true;
                    let aff = affine(index, &self.locals);
                    self.accesses[*array].push(Access {
                        affine: aff,
                        is_write: true,
                    });
                    self.expr(index);
                    self.expr(expr);
                }
                Stmt::Update {
                    array,
                    index,
                    op,
                    expr,
                } => {
                    self.update_ops[*array].push(*op);
                    // The delta and subscript must not read the array
                    // itself, or the reduction pattern is broken.
                    if Self::reads_array(expr, *array) || Self::reads_array(index, *array) {
                        self.non_reduction_ref[*array] = true;
                    }
                    let aff = affine(index, &self.locals);
                    // For the non-reduction fallback the update is a
                    // read-modify-write of one element.
                    self.accesses[*array].push(Access {
                        affine: aff,
                        is_write: true,
                    });
                    self.accesses[*array].push(Access {
                        affine: aff,
                        is_write: false,
                    });
                    self.expr(index);
                    self.expr(expr);
                }
                Stmt::Bump => {}
                Stmt::Break { cond } => self.expr(cond),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.expr(cond);
                    // Guards are conservatively assumed taken.
                    self.stmts(then_body);
                    self.stmts(else_body);
                }
            }
        }
    }
}

/// Classify every array for every loop of `program`:
/// `result[loop][array]`. An array may be tested in one loop and
/// untested in another — each loop instance gets its own run-time
/// treatment, exactly as the pass instruments each loop separately.
pub fn classify_program(program: &Program) -> Vec<Vec<Classification>> {
    (0..program.loops.len())
        .map(|k| classify_loop(program, k))
        .collect()
}

/// Classify every array of loop `k` (declaration order).
pub fn classify_loop(program: &Program, k: usize) -> Vec<Classification> {
    let nest = &program.loops[k];
    let mut w = Walk::new(program.arrays.len(), nest.num_locals);
    w.stmts(&nest.body);
    let (lo, hi) = nest.range;

    program
        .arrays
        .iter()
        .enumerate()
        .map(|(id, decl)| {
            if let Some(hint) = decl.hint {
                let class = match hint {
                    KindHint::Tested => Class::Tested,
                    KindHint::Untested => Class::Untested,
                    KindHint::Reduction(op) => Class::Reduction(op),
                };
                return Classification {
                    class,
                    rationale: "explicit declaration hint".into(),
                };
            }

            let updates = &w.update_ops[id];
            if !updates.is_empty() && !w.non_reduction_ref[id] {
                let op = updates[0];
                if updates.iter().all(|&o| o == op) {
                    return Classification {
                        class: Class::Reduction(op),
                        rationale: format!(
                            "referenced only as 'x {}= expr' with x not in expr",
                            match op {
                                UpdateOp::Add => "+",
                                UpdateOp::Mul => "*",
                            }
                        ),
                    };
                }
                return Classification {
                    class: Class::Tested,
                    rationale: "mixed reduction operators".into(),
                };
            }

            let accesses = &w.accesses[id];
            if accesses.is_empty() {
                return Classification {
                    class: Class::Untested,
                    rationale: "never referenced by the loop".into(),
                };
            }
            if accesses.iter().any(|a| a.affine == Affine::NotAffine) {
                return Classification {
                    class: Class::Tested,
                    rationale: "non-affine (data-dependent) subscript".into(),
                };
            }
            if !accesses.iter().any(|a| a.is_write) {
                return Classification {
                    class: Class::Untested,
                    rationale: "read-only".into(),
                };
            }

            // Exact cross-iteration conflict check over the loop range.
            if has_conflict(accesses, lo, hi) {
                Classification {
                    class: Class::Tested,
                    rationale: "affine subscripts with a possible cross-iteration conflict".into(),
                }
            } else {
                Classification {
                    class: Class::Untested,
                    rationale: "affine subscripts, provably iteration-disjoint".into(),
                }
            }
        })
        .collect()
}

fn has_conflict(accesses: &[Access], lo: usize, hi: usize) -> bool {
    use std::collections::HashMap;
    // index -> iteration of some write to it.
    let mut writers: HashMap<i64, usize> = HashMap::new();
    for acc in accesses.iter().filter(|a| a.is_write) {
        let Affine::Lin { a, b } = acc.affine else {
            unreachable!()
        };
        for i in lo..hi {
            let idx = a * i as i64 + b;
            if let Some(&other) = writers.get(&idx) {
                if other != i {
                    return true; // cross-iteration output dependence
                }
            } else {
                writers.insert(idx, i);
            }
        }
    }
    for acc in accesses.iter().filter(|a| !a.is_write) {
        let Affine::Lin { a, b } = acc.affine else {
            unreachable!()
        };
        for i in lo..hi {
            let idx = a * i as i64 + b;
            if let Some(&w) = writers.get(&idx) {
                if w != i {
                    return true; // cross-iteration flow/anti dependence
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn classes(src: &str) -> Vec<Class> {
        let p = parse(src).unwrap();
        classify_loop(&p, 0).into_iter().map(|c| c.class).collect()
    }

    #[test]
    fn disjoint_affine_writes_are_untested() {
        let c = classes("array A[100];\nfor i in 0..100 { A[i] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn shifted_affine_read_conflicts() {
        // A[i] written, A[i-1] read: cross-iteration flow dependence.
        let c = classes("array A[101];\nfor i in 1..100 { A[i] = A[i - 1] + 1; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn same_iteration_rmw_is_untested() {
        let c = classes("array A[100];\nfor i in 0..100 { A[i] = A[i] * 2; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn strided_writes_that_collide_are_tested() {
        // i % 10 is non-affine -> tested.
        let c = classes("array A[10];\nfor i in 0..100 { A[i % 10] = i; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn constant_subscript_write_is_tested() {
        // Every iteration writes A[0]: output dependence.
        let c = classes("array A[4];\nfor i in 0..10 { A[0] = i; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn read_only_arrays_are_untested() {
        let c = classes("array A[10];\narray B[10];\nfor i in 0..10 { A[i] = B[3] + B[i]; }");
        assert_eq!(c, vec![Class::Untested, Class::Untested]);
    }

    #[test]
    fn indirection_is_tested() {
        let c = classes("array A[10];\narray IDX[10];\nfor i in 0..10 { A[IDX[i]] = i; }");
        assert_eq!(c[0], Class::Tested, "A is indexed through IDX");
        assert_eq!(c[1], Class::Untested, "IDX itself is read-only");
    }

    #[test]
    fn pure_update_pattern_is_a_reduction() {
        let c = classes("array Y[10];\narray W[100];\nfor i in 0..100 { W[i] = i; Y[W[i]] += 1; }");
        assert_eq!(c[0], Class::Reduction(UpdateOp::Add));
    }

    #[test]
    fn update_reading_itself_is_not_a_reduction() {
        let c = classes("array Y[10];\nfor i in 0..10 { Y[i] += Y[0]; }");
        assert_eq!(c[0], Class::Tested);
    }

    #[test]
    fn update_mixed_with_assign_is_not_a_reduction() {
        let c = classes("array Y[10];\nfor i in 0..10 { Y[i] += 1; Y[0] = 5; }");
        assert_ne!(c[0], Class::Reduction(UpdateOp::Add));
    }

    #[test]
    fn mixed_update_operators_fall_back_to_tested() {
        let c = classes("array Y[10];\nfor i in 0..10 { Y[0] += 1; Y[1] *= 2; }");
        assert_eq!(c[0], Class::Tested);
    }

    #[test]
    fn affine_locals_propagate() {
        // let j = i + 1 keeps the subscript affine and disjoint.
        let c = classes("array A[101];\nfor i in 0..100 { let j = i + 1; A[j] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }

    #[test]
    fn data_dependent_locals_taint_subscripts() {
        let c =
            classes("array A[100];\narray B[100];\nfor i in 0..100 { let j = B[i]; A[j] = i; }");
        assert_eq!(c[0], Class::Tested);
    }

    #[test]
    fn guarded_conflicting_write_is_tested() {
        // The guard might not fire, but the pass must assume it can.
        let c = classes(
            "array A[110];\nfor i in 0..100 { if i % 7 == 0 { A[i + 5] = 1; } A[i] = A[i] + 1; }",
        );
        assert_eq!(c[0], Class::Tested);
    }

    #[test]
    fn hints_override_analysis() {
        let c = classes("array A[100] : tested;\nfor i in 0..100 { A[i] = i; }");
        assert_eq!(c, vec![Class::Tested]);
    }

    #[test]
    fn scaled_affine_subscripts_are_analyzed() {
        // 2*i and 2*i+1 never collide across iterations.
        let c = classes("array A[200];\nfor i in 0..100 { A[2 * i] = i; A[2 * i + 1] = i; }");
        assert_eq!(c, vec![Class::Untested]);
    }
}
