//! Register bytecode for the loop DSL — the compiled tier of the
//! run-time pass.
//!
//! The tree-walk interpreter ([`crate::interp`]) re-walks the AST for
//! every speculative iteration: every node is a match, a `Box` deref,
//! and a recursive call, and every restart of a speculative stage
//! re-pays that tax on top of the instrumentation overhead. This module
//! lowers each [`LoopNest`] once, at compile time, into fixed-width
//! instructions over a small register file; the VM ([`crate::vm`])
//! then executes one flat dispatch loop per iteration.
//!
//! Design points:
//!
//! * **Register file** `[i | locals | consts | temps]`: register 0
//!   always holds the loop variable (written once per iteration by the
//!   VM, never by an instruction), `let` slots are pinned to registers
//!   so reads are direct, the constant pool is materialized into
//!   registers once per `(thread, loop)` binding — not per iteration —
//!   and expression temporaries are stack-allocated with statement
//!   lifetime.
//! * **Fused shadow-marking ops**: instrumented array access is an
//!   *addressing mode*, not an interpreter call chain. [`Insn::LoadMarked`]
//!   / [`Insn::StoreMarked`] / [`Insn::Reduce`] carry the array id and
//!   the mark kind (read / write / reduction) in the opcode itself, so
//!   one dispatch reaches the engine's marking context directly.
//! * **Elision as codegen**: when the static dependence analysis
//!   (`depend.rs`, DESIGN.md §11) proves an array's references disjoint,
//!   the lowering emits plain [`Insn::Load`] / [`Insn::Store`] — the
//!   unmarked addressing mode. The run-time route in
//!   `rlrpd_core::IterCtx` remains the safety net: under
//!   `with_full_instrumentation` the same bytecode runs with marking
//!   forced back on, byte-identically.
//! * **Superinstructions**: the lowering fuses the statement shapes
//!   that dominate the paper's kernels — multiply-accumulate
//!   ([`Insn::MulAdd`] and friends, two IEEE roundings exactly as the
//!   unfused pair), compare-and-branch ([`Insn::JumpUnless`]), and
//!   power-of-two `%` strength-reduced to a mask ([`Insn::RemPow2`]) —
//!   so a typical filter statement costs one dispatch instead of three.
//! * **Trusted subscripts**: a conservative lowering-time proof
//!   (`is_nni`) marks subscript expressions that always evaluate to a
//!   non-negative integer; the VM then skips per-access validation and
//!   casts directly (array bounds are still enforced by the access).
//!   Unprovable subscripts keep the checked path and its diagnostics.
//! * **Spans in a side table**: every instruction carries the source
//!   position of the reference it implements (parallel `spans` vector,
//!   not widening the fixed 12-byte instruction), so subscript faults
//!   inside the VM are reported with the offending source location and
//!   the disassembler can annotate each op.
//!
//! A lowering-time verifier bounds every register operand and jump
//! target, which is what licenses the VM's unchecked register and
//! instruction fetches.

use crate::analyze::Class;
use crate::ast::{BinOp, Expr, Intrinsic, LoopNest, Span, Stmt, UpdateOp};
use std::sync::atomic::{AtomicU64, Ordering};

/// A register index into the VM's register file.
pub type Reg = u16;

/// Register 0 always holds the loop variable.
pub const REG_I: Reg = 0;

/// Provisional temp-register tag used during lowering: temps are
/// numbered from `TEMP_TAG` until the constant pool is complete, then
/// remapped to their final position above the constants.
const TEMP_TAG: u16 = 0x8000;

/// A comparison predicate carried by the fused compare-and-branch
/// instruction ([`Insn::JumpUnless`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the six relational operators of the language
pub enum Pred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Pred {
    /// The predicate implementing `op`, when `op` is relational.
    fn of(op: BinOp) -> Option<Pred> {
        Some(match op {
            BinOp::Eq => Pred::Eq,
            BinOp::Ne => Pred::Ne,
            BinOp::Lt => Pred::Lt,
            BinOp::Le => Pred::Le,
            BinOp::Gt => Pred::Gt,
            BinOp::Ge => Pred::Ge,
            _ => return None,
        })
    }

    /// Evaluate the predicate — the same IEEE comparison the unfused
    /// `Cmp*` instruction would have materialized.
    #[inline]
    pub(crate) fn eval(self, a: f64, b: f64) -> bool {
        match self {
            Pred::Eq => a == b,
            Pred::Ne => a != b,
            Pred::Lt => a < b,
            Pred::Le => a <= b,
            Pred::Gt => a > b,
            Pred::Ge => a >= b,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Pred::Eq => "==",
            Pred::Ne => "!=",
            Pred::Lt => "<",
            Pred::Le => "<=",
            Pred::Gt => ">",
            Pred::Ge => ">=",
        }
    }
}

/// One fixed-width (12-byte) VM instruction.
///
/// Arithmetic is three-address: `dst <- a op b`. Comparisons produce
/// the language's booleans (`1.0` / `0.0`). Array ops come in two
/// addressing modes: *marked* (fused shadow-marking dispatch for
/// arrays under the LRPD test) and plain (statically-proven-disjoint
/// arrays whose shadow was elided); each carries a `trusted` bit for
/// subscripts proven non-negative-integral at lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // operand fields: dst/a/b registers, arr ids, jump targets
pub enum Insn {
    /// `dst <- src`.
    Move { dst: Reg, src: Reg },
    /// `dst <- counter` (induction programs only).
    Counter { dst: Reg },
    /// `dst <- a + b`.
    Add { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a - b`.
    Sub { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a * b`.
    Mul { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a / b`.
    Div { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a % b` on rounded integers (euclidean remainder).
    Rem { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a % (mask + 1)` — strength-reduced remainder by a
    /// power-of-two constant: `round(a) & mask`, exactly the Euclidean
    /// remainder [`Insn::Rem`] computes for these divisors (two's
    /// complement).
    RemPow2 { dst: Reg, a: Reg, mask: u16 },
    /// `dst <- a * b + c`. Two IEEE roundings, exactly the mul-then-add
    /// pair it fuses (not an FMA).
    MulAdd { dst: Reg, a: Reg, b: Reg, c: Reg },
    /// `dst <- a * b + c * d` — the filter-kernel workhorse (blend /
    /// weighted pair). Three IEEE roundings, exactly the
    /// mul-mul-add triple it fuses; five registers, the widest
    /// instruction in the ISA.
    DualMulAdd {
        dst: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
        d: Reg,
    },
    /// `dst <- a * b - c` (two roundings, as the unfused pair).
    MulSub { dst: Reg, a: Reg, b: Reg, c: Reg },
    /// `dst <- c - a * b` (two roundings, as the unfused pair).
    MulRSub { dst: Reg, a: Reg, b: Reg, c: Reg },
    /// `dst <- a == b`.
    CmpEq { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a != b`.
    CmpNe { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a < b`.
    CmpLt { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a <= b`.
    CmpLe { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a > b`.
    CmpGt { dst: Reg, a: Reg, b: Reg },
    /// `dst <- a >= b`.
    CmpGe { dst: Reg, a: Reg, b: Reg },
    /// `dst <- -a`.
    Neg { dst: Reg, a: Reg },
    /// `dst <- !a` (0.0 ↦ 1.0, non-zero ↦ 0.0).
    Not { dst: Reg, a: Reg },
    /// `dst <- min(a, b)`.
    Min { dst: Reg, a: Reg, b: Reg },
    /// `dst <- max(a, b)`.
    Max { dst: Reg, a: Reg, b: Reg },
    /// `dst <- abs(a)`.
    Abs { dst: Reg, a: Reg },
    /// `dst <- sqrt(a)`.
    Sqrt { dst: Reg, a: Reg },
    /// `dst <- floor(a)`.
    Floor { dst: Reg, a: Reg },
    /// Unmarked load `dst <- arr[idx]` — the elided addressing mode for
    /// statically-proven-disjoint arrays.
    Load {
        dst: Reg,
        arr: u16,
        idx: Reg,
        trusted: bool,
    },
    /// Unmarked store `arr[idx] <- src` (elided addressing mode).
    Store {
        arr: u16,
        idx: Reg,
        src: Reg,
        trusted: bool,
    },
    /// Fused read-mark load `dst <- arr[idx]`: one dispatch marks the
    /// shadow and reads through the speculative view.
    LoadMarked {
        dst: Reg,
        arr: u16,
        idx: Reg,
        trusted: bool,
    },
    /// Fused write-mark store `arr[idx] <- src` into the privatized
    /// view.
    StoreMarked {
        arr: u16,
        idx: Reg,
        src: Reg,
        trusted: bool,
    },
    /// Fused reduction-mark update `arr[idx] <- arr[idx] ⊕ src` (the
    /// operator is the array's declared reduction).
    Reduce {
        arr: u16,
        idx: Reg,
        src: Reg,
        trusted: bool,
    },
    /// Unconditional branch.
    Jump { target: u32 },
    /// Branch when `cond` is `0.0`.
    JumpIfZero { cond: Reg, target: u32 },
    /// Fused compare-and-branch: jump when `a pred b` is *false*
    /// (replaces a `Cmp*` + [`Insn::JumpIfZero`] pair at every `if`,
    /// `break if`, and short-circuit test whose condition is a bare
    /// comparison).
    JumpUnless {
        pred: Pred,
        a: Reg,
        b: Reg,
        target: u32,
    },
    /// Bump the induction counter (induction programs only).
    Bump,
    /// Premature loop exit (`break if` taken): tell the context and
    /// stop this iteration.
    Exit,
    /// End of the iteration body.
    Halt,
}

/// The bytecode of one lowered loop body.
#[derive(Clone, Debug)]
pub struct LoopCode {
    pub(crate) code: Vec<Insn>,
    /// Source position per instruction (side table — see module docs).
    pub(crate) spans: Vec<Span>,
    /// Deduplicated constant pool, materialized into registers
    /// `[const_base, const_base + consts.len())` at scratch-bind time.
    pub(crate) consts: Vec<f64>,
    /// Number of `let` slots (registers `1..=num_locals`).
    pub(crate) num_locals: u16,
    /// Total register-file size: `1 + locals + consts + temps`.
    pub(crate) num_regs: u16,
    /// Process-unique id, used by the VM scratch to detect when its
    /// constant registers belong to a different loop.
    pub(crate) uid: u64,
}

impl LoopCode {
    /// First constant register.
    #[inline]
    pub(crate) fn const_base(&self) -> usize {
        1 + self.num_locals as usize
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for an empty body (never produced — every body ends in
    /// [`Insn::Halt`]).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The source span of instruction `pc` (fault diagnostics).
    pub fn span_of(&self, pc: usize) -> Span {
        self.spans.get(pc).copied().unwrap_or_default()
    }

    /// Render one register operand for the disassembly.
    fn reg_name(&self, r: Reg, loop_var: &str) -> String {
        let r = r as usize;
        let cb = self.const_base();
        if r == REG_I as usize {
            loop_var.to_string()
        } else if r < cb {
            format!("l{}", r - 1)
        } else if r < cb + self.consts.len() {
            format!("c{}={}", r - cb, self.consts[r - cb])
        } else {
            format!("t{}", r - cb - self.consts.len())
        }
    }

    /// Human-readable disassembly: one line per instruction with
    /// opcode, operands, fused-mark annotation, and source span.
    /// `names` are the program's array names (declaration order);
    /// `loop_var` is the loop variable's source name.
    pub fn disassemble(&self, names: &[&str], loop_var: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let temps = self.num_regs as usize - self.const_base() - self.consts.len();
        let _ = writeln!(
            out,
            "  {} insns, regs: [{} | {} locals | {} consts | {} temps]",
            self.code.len(),
            loop_var,
            self.num_locals,
            self.consts.len(),
            temps,
        );
        let r = |reg: Reg| self.reg_name(reg, loop_var);
        let arr = |a: u16| names.get(a as usize).copied().unwrap_or("?");
        // Trusted-subscript suffix on a memory op's note.
        let tr = |trusted: bool| if trusted { ", trusted subscript" } else { "" };
        for (pc, insn) in self.code.iter().enumerate() {
            let (op, operands, note) = match *insn {
                Insn::Move { dst, src } => ("mov", format!("{} <- {}", r(dst), r(src)), None),
                Insn::Counter { dst } => ("cnt", format!("{} <- counter", r(dst)), None),
                Insn::Add { dst, a, b } => {
                    ("add", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Sub { dst, a, b } => {
                    ("sub", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Mul { dst, a, b } => {
                    ("mul", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Div { dst, a, b } => {
                    ("div", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Rem { dst, a, b } => {
                    ("rem", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::RemPow2 { dst, a, mask } => (
                    "rem.p2",
                    format!("{} <- {} % {}", r(dst), r(a), mask as u32 + 1),
                    Some("strength-reduced power-of-two modulus".to_string()),
                ),
                Insn::MulAdd { dst, a, b, c } => (
                    "mul.add",
                    format!("{} <- {} * {} + {}", r(dst), r(a), r(b), r(c)),
                    None,
                ),
                Insn::DualMulAdd { dst, a, b, c, d } => (
                    "mul.add2",
                    format!("{} <- {} * {} + {} * {}", r(dst), r(a), r(b), r(c), r(d)),
                    None,
                ),
                Insn::MulSub { dst, a, b, c } => (
                    "mul.sub",
                    format!("{} <- {} * {} - {}", r(dst), r(a), r(b), r(c)),
                    None,
                ),
                Insn::MulRSub { dst, a, b, c } => (
                    "mul.rsub",
                    format!("{} <- {} - {} * {}", r(dst), r(c), r(a), r(b)),
                    None,
                ),
                Insn::CmpEq { dst, a, b } => {
                    ("ceq", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::CmpNe { dst, a, b } => {
                    ("cne", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::CmpLt { dst, a, b } => {
                    ("clt", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::CmpLe { dst, a, b } => {
                    ("cle", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::CmpGt { dst, a, b } => {
                    ("cgt", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::CmpGe { dst, a, b } => {
                    ("cge", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Neg { dst, a } => ("neg", format!("{} <- {}", r(dst), r(a)), None),
                Insn::Not { dst, a } => ("not", format!("{} <- {}", r(dst), r(a)), None),
                Insn::Min { dst, a, b } => {
                    ("min", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Max { dst, a, b } => {
                    ("max", format!("{} <- {}, {}", r(dst), r(a), r(b)), None)
                }
                Insn::Abs { dst, a } => ("abs", format!("{} <- {}", r(dst), r(a)), None),
                Insn::Sqrt { dst, a } => ("sqrt", format!("{} <- {}", r(dst), r(a)), None),
                Insn::Floor { dst, a } => ("floor", format!("{} <- {}", r(dst), r(a)), None),
                Insn::Load {
                    dst,
                    arr: a,
                    idx,
                    trusted,
                } => (
                    "ld",
                    format!("{} <- {}[{}]", r(dst), arr(a), r(idx)),
                    Some(format!(
                        "unmarked (shadow elided: statically disjoint){}",
                        tr(trusted)
                    )),
                ),
                Insn::Store {
                    arr: a,
                    idx,
                    src,
                    trusted,
                } => (
                    "st",
                    format!("{}[{}] <- {}", arr(a), r(idx), r(src)),
                    Some(format!(
                        "unmarked (shadow elided: statically disjoint){}",
                        tr(trusted)
                    )),
                ),
                Insn::LoadMarked {
                    dst,
                    arr: a,
                    idx,
                    trusted,
                } => (
                    "ld.mark",
                    format!("{} <- {}[{}]", r(dst), arr(a), r(idx)),
                    Some(format!("fused read-mark of {}{}", arr(a), tr(trusted))),
                ),
                Insn::StoreMarked {
                    arr: a,
                    idx,
                    src,
                    trusted,
                } => (
                    "st.mark",
                    format!("{}[{}] <- {}", arr(a), r(idx), r(src)),
                    Some(format!("fused write-mark of {}{}", arr(a), tr(trusted))),
                ),
                Insn::Reduce {
                    arr: a,
                    idx,
                    src,
                    trusted,
                } => (
                    "red.mark",
                    format!("{}[{}] ⊕= {}", arr(a), r(idx), r(src)),
                    Some(format!("fused reduction-mark of {}{}", arr(a), tr(trusted))),
                ),
                Insn::Jump { target } => ("jmp", format!("-> {target:03}"), None),
                Insn::JumpIfZero { cond, target } => {
                    ("jz", format!("{} -> {target:03}", r(cond)), None)
                }
                Insn::JumpUnless { pred, a, b, target } => (
                    "jf",
                    format!("{} {} {} -> {target:03}", r(a), pred.symbol(), r(b)),
                    Some("fused compare-and-branch".to_string()),
                ),
                Insn::Bump => ("bump", "counter".to_string(), None),
                Insn::Exit => ("exit", String::new(), None),
                Insn::Halt => ("halt", String::new(), None),
            };
            let span = self.spans[pc];
            let mut line = format!("  {pc:03}  {op:<8} {operands}");
            if note.is_some() || span.line != 0 {
                // Pad by character count, not bytes (⊕ is multibyte).
                while line.chars().count() < 44 {
                    line.push(' ');
                }
                line.push_str("  ;");
                if let Some(n) = &note {
                    line.push(' ');
                    line.push_str(n);
                }
                if span.line != 0 {
                    line.push_str(&format!(" @ {span}"));
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Fold a binary operator over two constants, mirroring the VM's (and
/// the tree-walk interpreter's) runtime semantics exactly. Returns
/// `None` when the operation must be left to fault at run time
/// (`% 0`), so injected program faults fire identically under both
/// backends.
fn fold_bin(op: BinOp, l: f64, r: f64) -> Option<f64> {
    let b = |v: bool| if v { 1.0 } else { 0.0 };
    Some(match op {
        BinOp::Add => l + r,
        BinOp::Sub => l - r,
        BinOp::Mul => l * r,
        BinOp::Div => l / r,
        BinOp::Rem => {
            let (li, ri) = (crate::interp::round_i64(l), crate::interp::round_i64(r));
            if ri == 0 {
                return None;
            }
            li.rem_euclid(ri) as f64
        }
        BinOp::Eq => b(l == r),
        BinOp::Ne => b(l != r),
        BinOp::Lt => b(l < r),
        BinOp::Le => b(l <= r),
        BinOp::Gt => b(l > r),
        BinOp::Ge => b(l >= r),
        BinOp::And => b(l != 0.0 && r != 0.0),
        BinOp::Or => b(l != 0.0 || r != 0.0),
    })
}

/// Evaluate a constant subexpression at lowering time, or `None` when
/// any leaf depends on the iteration. Folding uses the same IEEE ops
/// the VM would execute, so folded results are bit-identical.
fn try_const(e: &Expr) -> Option<f64> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Neg(x) => try_const(x).map(|v| -v),
        Expr::Not(x) => try_const(x).map(|v| if v != 0.0 { 0.0 } else { 1.0 }),
        Expr::Bin { op, lhs, rhs } => fold_bin(*op, try_const(lhs)?, try_const(rhs)?),
        Expr::Call { func, args } => {
            let a = try_const(&args[0])?;
            Some(match func {
                Intrinsic::Min => a.min(try_const(&args[1])?),
                Intrinsic::Max => a.max(try_const(&args[1])?),
                Intrinsic::Abs => a.abs(),
                Intrinsic::Sqrt => a.sqrt(),
                Intrinsic::Floor => a.floor(),
            })
        }
        _ => None,
    }
}

/// The `mask` licensing [`Insn::RemPow2`]: `e` is a constant whose
/// rounded value (the divisor `%` actually uses) is a power of two in
/// `1..=65536`.
fn pow2_mask(e: &Expr) -> Option<u16> {
    let d = crate::interp::round_i64(try_const(e)?);
    if d > 0 && d <= 65536 && (d & (d - 1)) == 0 {
        Some((d - 1) as u16)
    } else {
        None
    }
}

/// Lowering state for one loop body.
struct Lower<'a> {
    classes: &'a [Class],
    num_locals: u16,
    code: Vec<Insn>,
    spans: Vec<Span>,
    consts: Vec<f64>,
    /// Provisional temp allocator (tagged; remapped after lowering).
    next_temp: u16,
    max_temp: u16,
    /// Span of the statement currently being lowered (instructions
    /// without a reference of their own inherit it).
    stmt_span: Span,
    /// Per-slot "provably a non-negative integer" flags backing the
    /// trusted-subscript proof. Sound as simple in-order updates
    /// because the parser allocates a fresh slot per `let` and scopes
    /// it lexically, so each slot has exactly one definition and it
    /// dominates every use.
    nni_slots: Vec<bool>,
}

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Lower one loop body to bytecode. `classes` is the per-array verdict
/// table of this loop (the same table the tree-walk interpreter uses to
/// route `⊕=`), which here additionally selects the addressing mode:
/// `Untested` arrays get the unmarked ops, everything else the fused
/// marking ops.
pub fn lower_loop(nest: &LoopNest, classes: &[Class]) -> LoopCode {
    assert!(nest.num_locals < TEMP_TAG as usize, "too many locals");
    let mut lw = Lower {
        classes,
        num_locals: nest.num_locals as u16,
        code: Vec::new(),
        spans: Vec::new(),
        consts: Vec::new(),
        next_temp: 0,
        max_temp: 0,
        stmt_span: Span::none(),
        nni_slots: vec![false; nest.num_locals],
    };
    lw.stmts(&nest.body);
    lw.stmt_span = Span::none();
    lw.emit(Insn::Halt, Span::none());
    lw.finish()
}

impl Lower<'_> {
    fn emit(&mut self, insn: Insn, span: Span) -> usize {
        let pc = self.code.len();
        self.code.push(insn);
        self.spans
            .push(if span.line != 0 { span } else { self.stmt_span });
        pc
    }

    /// The constant register holding `v` (pooled, deduplicated by bit
    /// pattern so `-0.0` and `0.0` stay distinct).
    fn const_reg(&mut self, v: f64) -> Reg {
        let k = self
            .consts
            .iter()
            .position(|c| c.to_bits() == v.to_bits())
            .unwrap_or_else(|| {
                self.consts.push(v);
                self.consts.len() - 1
            });
        assert!(k < TEMP_TAG as usize / 2, "constant pool overflow");
        1 + self.num_locals + k as u16
    }

    fn local_reg(&self, slot: usize) -> Reg {
        1 + slot as u16
    }

    /// Conservative proof that `e` always evaluates to a non-negative
    /// integer, licensing the VM's trusted (unvalidated) subscript
    /// cast. On the proven domain `v as usize` is exact, so trusted
    /// and checked resolution agree; past the end of any real array
    /// both modes still fault (trusted via the array's own bounds
    /// check rather than the subscript diagnostic).
    fn is_nni(&self, e: &Expr) -> bool {
        if let Some(v) = try_const(e) {
            return v >= 0.0 && v.fract() == 0.0;
        }
        match e {
            // The loop variable and the induction counter come from
            // `usize` ranges.
            Expr::LoopVar | Expr::Counter => true,
            Expr::Local(slot) => self.nni_slots[*slot],
            Expr::Bin { op, lhs, rhs } => match op {
                // f64 `+` / `*` of non-negative integers stays a
                // non-negative integer: every representable f64 at or
                // above 2^53 is itself an integer, so rounding never
                // introduces a fraction.
                BinOp::Add | BinOp::Mul => self.is_nni(lhs) && self.is_nni(rhs),
                // `%` rounds both operands and takes a Euclidean
                // remainder — a non-negative integer whenever it
                // returns at all (a zero divisor faults first, under
                // either subscript mode).
                BinOp::Rem => true,
                _ => false,
            },
            Expr::Call {
                func: Intrinsic::Min | Intrinsic::Max,
                args,
            } => args.iter().all(|a| self.is_nni(a)),
            _ => false,
        }
    }

    /// Fuse `x*y + z`, `z + x*y`, `x*y - z`, `z - x*y` into one
    /// multiply-accumulate dispatch when the multiply side is not a
    /// foldable constant. Operand lowering order matches the unfused
    /// form (so marking side effects are identical), and the fused op
    /// performs the same two IEEE roundings, so results are
    /// bit-identical.
    fn try_fuse_muladd(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, dst: Reg) -> bool {
        fn as_mul(e: &Expr) -> Option<(&Expr, &Expr)> {
            match e {
                Expr::Bin {
                    op: BinOp::Mul,
                    lhs,
                    rhs,
                } if try_const(e).is_none() => Some((lhs, rhs)),
                _ => None,
            }
        }
        if op == BinOp::Add {
            if let (Some((x, y)), Some((u, v))) = (as_mul(lhs), as_mul(rhs)) {
                let a = self.expr(x);
                let b = self.expr(y);
                let c = self.expr(u);
                let d = self.expr(v);
                self.emit(Insn::DualMulAdd { dst, a, b, c, d }, Span::none());
                return true;
            }
        }
        type MacCtor = fn(Reg, Reg, Reg, Reg) -> Insn;
        let (a, b, c, insn): (Reg, Reg, Reg, MacCtor) = if let Some((x, y)) = as_mul(lhs) {
            let a = self.expr(x);
            let b = self.expr(y);
            let c = self.expr(rhs);
            match op {
                BinOp::Add => (a, b, c, |dst, a, b, c| Insn::MulAdd { dst, a, b, c }),
                BinOp::Sub => (a, b, c, |dst, a, b, c| Insn::MulSub { dst, a, b, c }),
                _ => unreachable!("fusion is only attempted for + and -"),
            }
        } else if let Some((x, y)) = as_mul(rhs) {
            let c = self.expr(lhs);
            let a = self.expr(x);
            let b = self.expr(y);
            match op {
                BinOp::Add => (a, b, c, |dst, a, b, c| Insn::MulAdd { dst, a, b, c }),
                BinOp::Sub => (a, b, c, |dst, a, b, c| Insn::MulRSub { dst, a, b, c }),
                _ => unreachable!("fusion is only attempted for + and -"),
            }
        } else {
            return false;
        };
        self.emit(insn(dst, a, b, c), Span::none());
        true
    }

    /// Emit "branch ahead when `cond` is false" (target patched by the
    /// caller), fusing a bare comparison into one compare-and-branch
    /// instruction; any other condition materializes a boolean and
    /// branches on zero. Returns the pc to patch.
    fn jump_if_false(&mut self, cond: &Expr) -> usize {
        if try_const(cond).is_none() {
            if let Expr::Bin { op, lhs, rhs } = cond {
                if let Some(pred) = Pred::of(*op) {
                    let a = self.expr(lhs);
                    let b = self.expr(rhs);
                    return self.emit(
                        Insn::JumpUnless {
                            pred,
                            a,
                            b,
                            target: 0,
                        },
                        Span::none(),
                    );
                }
            }
        }
        let c = self.expr(cond);
        self.emit(Insn::JumpIfZero { cond: c, target: 0 }, Span::none())
    }

    fn alloc_temp(&mut self) -> Reg {
        let t = self.next_temp;
        self.next_temp += 1;
        self.max_temp = self.max_temp.max(self.next_temp);
        assert!(t < TEMP_TAG / 2, "temporary register overflow");
        TEMP_TAG + t
    }

    /// Evaluate `e` into some register and return it. Leaves (the loop
    /// variable, locals, constants) evaluate to their pinned register
    /// with no instruction; everything else lands in a fresh temp whose
    /// children are released on return (temps live in stack discipline,
    /// bounded by expression depth).
    fn expr(&mut self, e: &Expr) -> Reg {
        if let Some(v) = try_const(e) {
            return self.const_reg(v);
        }
        match e {
            Expr::LoopVar => REG_I,
            Expr::Local(slot) => self.local_reg(*slot),
            _ => {
                let d = self.alloc_temp();
                self.expr_into_op(e, d);
                // Release the children's temps; `d` stays live.
                self.next_temp = (d - TEMP_TAG) + 1;
                d
            }
        }
    }

    /// Evaluate `e` directly into `dst` (a local or a caller-owned
    /// temp).
    fn expr_into(&mut self, e: &Expr, dst: Reg) {
        if let Some(v) = try_const(e) {
            let src = self.const_reg(v);
            self.emit(Insn::Move { dst, src }, Span::none());
            return;
        }
        match e {
            Expr::LoopVar => {
                self.emit(Insn::Move { dst, src: REG_I }, Span::none());
            }
            Expr::Local(slot) => {
                let src = self.local_reg(*slot);
                self.emit(Insn::Move { dst, src }, Span::none());
            }
            _ => self.expr_into_op(e, dst),
        }
    }

    /// Lower a non-leaf expression so its final instruction writes
    /// `dst`.
    fn expr_into_op(&mut self, e: &Expr, dst: Reg) {
        match e {
            Expr::Num(_) | Expr::LoopVar | Expr::Local(_) => {
                unreachable!("leaves are handled by expr/expr_into")
            }
            Expr::Counter => {
                self.emit(Insn::Counter { dst }, Span::none());
            }
            Expr::Read { array, index, span } => {
                let trusted = self.is_nni(index);
                let idx = self.expr(index);
                let arr = *array as u16;
                let insn = match self.classes[*array] {
                    Class::Untested => Insn::Load {
                        dst,
                        arr,
                        idx,
                        trusted,
                    },
                    _ => Insn::LoadMarked {
                        dst,
                        arr,
                        idx,
                        trusted,
                    },
                };
                self.emit(insn, *span);
            }
            Expr::Neg(x) => {
                let a = self.expr(x);
                self.emit(Insn::Neg { dst, a }, Span::none());
            }
            Expr::Not(x) => {
                let a = self.expr(x);
                self.emit(Insn::Not { dst, a }, Span::none());
            }
            Expr::Call { func, args } => {
                let a = self.expr(&args[0]);
                let insn = match func {
                    Intrinsic::Min => {
                        let b = self.expr(&args[1]);
                        Insn::Min { dst, a, b }
                    }
                    Intrinsic::Max => {
                        let b = self.expr(&args[1]);
                        Insn::Max { dst, a, b }
                    }
                    Intrinsic::Abs => Insn::Abs { dst, a },
                    Intrinsic::Sqrt => Insn::Sqrt { dst, a },
                    Intrinsic::Floor => Insn::Floor { dst, a },
                };
                self.emit(insn, Span::none());
            }
            Expr::Bin { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => self.logical_into(*op, lhs, rhs, dst),
                BinOp::Add | BinOp::Sub if self.try_fuse_muladd(*op, lhs, rhs, dst) => {}
                BinOp::Rem if pow2_mask(rhs).is_some() => {
                    let mask = pow2_mask(rhs).unwrap();
                    let a = self.expr(lhs);
                    self.emit(Insn::RemPow2 { dst, a, mask }, Span::none());
                }
                _ => {
                    let a = self.expr(lhs);
                    let b = self.expr(rhs);
                    let insn = match op {
                        BinOp::Add => Insn::Add { dst, a, b },
                        BinOp::Sub => Insn::Sub { dst, a, b },
                        BinOp::Mul => Insn::Mul { dst, a, b },
                        BinOp::Div => Insn::Div { dst, a, b },
                        BinOp::Rem => Insn::Rem { dst, a, b },
                        BinOp::Eq => Insn::CmpEq { dst, a, b },
                        BinOp::Ne => Insn::CmpNe { dst, a, b },
                        BinOp::Lt => Insn::CmpLt { dst, a, b },
                        BinOp::Le => Insn::CmpLe { dst, a, b },
                        BinOp::Gt => Insn::CmpGt { dst, a, b },
                        BinOp::Ge => Insn::CmpGe { dst, a, b },
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    };
                    self.emit(insn, Span::none());
                }
            },
        }
    }

    /// Patch a placeholder jump's target to the current position.
    fn patch(&mut self, at: usize) {
        let here = self.code.len() as u32;
        match &mut self.code[at] {
            Insn::Jump { target }
            | Insn::JumpIfZero { target, .. }
            | Insn::JumpUnless { target, .. } => *target = here,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Short-circuit `&&` / `||` producing `1.0` / `0.0` in `dst`,
    /// with the same evaluation order (and therefore the same marking
    /// side effects) as the tree-walk interpreter.
    fn logical_into(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, dst: Reg) {
        let c_true = self.const_reg(1.0);
        let c_false = self.const_reg(0.0);
        match op {
            BinOp::And => {
                let j_false_1 = self.jump_if_false(lhs);
                let j_false_2 = self.jump_if_false(rhs);
                self.emit(Insn::Move { dst, src: c_true }, Span::none());
                let j_end = self.emit(Insn::Jump { target: 0 }, Span::none());
                self.patch(j_false_1);
                self.patch(j_false_2);
                self.emit(Insn::Move { dst, src: c_false }, Span::none());
                self.patch(j_end);
            }
            BinOp::Or => {
                let j_rhs = self.jump_if_false(lhs);
                self.emit(Insn::Move { dst, src: c_true }, Span::none());
                let j_end_1 = self.emit(Insn::Jump { target: 0 }, Span::none());
                self.patch(j_rhs);
                let j_false = self.jump_if_false(rhs);
                self.emit(Insn::Move { dst, src: c_true }, Span::none());
                let j_end_2 = self.emit(Insn::Jump { target: 0 }, Span::none());
                self.patch(j_false);
                self.emit(Insn::Move { dst, src: c_false }, Span::none());
                self.patch(j_end_1);
                self.patch(j_end_2);
            }
            _ => unreachable!("not a logical operator"),
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            // Temporaries die at statement boundaries.
            let mark = self.next_temp;
            self.stmt(s);
            self.next_temp = mark;
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { slot, expr } => {
                self.stmt_span = Span::none();
                self.nni_slots[*slot] = self.is_nni(expr);
                let dst = self.local_reg(*slot);
                self.expr_into(expr, dst);
            }
            Stmt::Assign {
                array,
                index,
                expr,
                span,
            } => {
                self.stmt_span = *span;
                let trusted = self.is_nni(index);
                let idx = self.expr(index);
                let src = self.expr(expr);
                let arr = *array as u16;
                let insn = match self.classes[*array] {
                    Class::Untested => Insn::Store {
                        arr,
                        idx,
                        src,
                        trusted,
                    },
                    _ => Insn::StoreMarked {
                        arr,
                        idx,
                        src,
                        trusted,
                    },
                };
                self.emit(insn, *span);
            }
            Stmt::Update {
                array,
                index,
                op,
                expr,
                span,
            } => {
                self.stmt_span = *span;
                let trusted = self.is_nni(index);
                let idx = self.expr(index);
                let delta = self.expr(expr);
                let arr = *array as u16;
                if matches!(self.classes[*array], Class::Reduction(_)) {
                    self.emit(
                        Insn::Reduce {
                            arr,
                            idx,
                            src: delta,
                            trusted,
                        },
                        *span,
                    );
                } else {
                    // Desugared read-modify-write, exactly as the
                    // tree-walk interpreter routes it.
                    let cur = self.alloc_temp();
                    let (load, store) = match self.classes[*array] {
                        Class::Untested => (
                            Insn::Load {
                                dst: cur,
                                arr,
                                idx,
                                trusted,
                            },
                            Insn::Store {
                                arr,
                                idx,
                                src: cur,
                                trusted,
                            },
                        ),
                        _ => (
                            Insn::LoadMarked {
                                dst: cur,
                                arr,
                                idx,
                                trusted,
                            },
                            Insn::StoreMarked {
                                arr,
                                idx,
                                src: cur,
                                trusted,
                            },
                        ),
                    };
                    self.emit(load, *span);
                    let insn = match op {
                        UpdateOp::Add => Insn::Add {
                            dst: cur,
                            a: cur,
                            b: delta,
                        },
                        UpdateOp::Mul => Insn::Mul {
                            dst: cur,
                            a: cur,
                            b: delta,
                        },
                    };
                    self.emit(insn, *span);
                    self.emit(store, *span);
                }
            }
            Stmt::Bump => {
                self.stmt_span = Span::none();
                self.emit(Insn::Bump, Span::none());
            }
            Stmt::Break { cond } => {
                self.stmt_span = Span::none();
                let skip = self.jump_if_false(cond);
                self.emit(Insn::Exit, Span::none());
                self.patch(skip);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                self.stmt_span = *span;
                let j_else = self.jump_if_false(cond);
                self.stmts(then_body);
                if else_body.is_empty() {
                    self.patch(j_else);
                } else {
                    let j_end = self.emit(Insn::Jump { target: 0 }, Span::none());
                    self.patch(j_else);
                    self.stmts(else_body);
                    self.patch(j_end);
                }
            }
        }
    }

    /// Remap provisional temp registers above the (now complete)
    /// constant pool, verify every operand and target, and assemble the
    /// final [`LoopCode`].
    fn finish(mut self) -> LoopCode {
        let temp_base = 1 + self.num_locals + self.consts.len() as u16;
        let num_regs = temp_base + self.max_temp;
        let fix = |r: &mut Reg| {
            if *r >= TEMP_TAG {
                *r = temp_base + (*r - TEMP_TAG);
            }
        };
        for insn in &mut self.code {
            match insn {
                Insn::Move { dst, src } => {
                    fix(dst);
                    fix(src);
                }
                Insn::Counter { dst } => fix(dst),
                Insn::Add { dst, a, b }
                | Insn::Sub { dst, a, b }
                | Insn::Mul { dst, a, b }
                | Insn::Div { dst, a, b }
                | Insn::Rem { dst, a, b }
                | Insn::CmpEq { dst, a, b }
                | Insn::CmpNe { dst, a, b }
                | Insn::CmpLt { dst, a, b }
                | Insn::CmpLe { dst, a, b }
                | Insn::CmpGt { dst, a, b }
                | Insn::CmpGe { dst, a, b }
                | Insn::Min { dst, a, b }
                | Insn::Max { dst, a, b } => {
                    fix(dst);
                    fix(a);
                    fix(b);
                }
                Insn::MulAdd { dst, a, b, c }
                | Insn::MulSub { dst, a, b, c }
                | Insn::MulRSub { dst, a, b, c } => {
                    fix(dst);
                    fix(a);
                    fix(b);
                    fix(c);
                }
                Insn::DualMulAdd { dst, a, b, c, d } => {
                    fix(dst);
                    fix(a);
                    fix(b);
                    fix(c);
                    fix(d);
                }
                Insn::Neg { dst, a }
                | Insn::Not { dst, a }
                | Insn::Abs { dst, a }
                | Insn::Sqrt { dst, a }
                | Insn::Floor { dst, a }
                | Insn::RemPow2 { dst, a, .. } => {
                    fix(dst);
                    fix(a);
                }
                Insn::Load { dst, idx, .. } | Insn::LoadMarked { dst, idx, .. } => {
                    fix(dst);
                    fix(idx);
                }
                Insn::Store { idx, src, .. }
                | Insn::StoreMarked { idx, src, .. }
                | Insn::Reduce { idx, src, .. } => {
                    fix(idx);
                    fix(src);
                }
                Insn::JumpIfZero { cond, .. } => fix(cond),
                Insn::JumpUnless { a, b, .. } => {
                    fix(a);
                    fix(b);
                }
                Insn::Jump { .. } | Insn::Bump | Insn::Exit | Insn::Halt => {}
            }
        }
        let code = LoopCode {
            code: self.code,
            spans: self.spans,
            consts: self.consts,
            num_locals: self.num_locals,
            num_regs,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        };
        verify(&code);
        code
    }
}

/// Verify the invariants the VM's unchecked fetches rely on: every
/// register operand is below `num_regs`, every jump target is inside
/// the code, and the final instruction is a terminator (so `pc` can
/// never run off the end).
///
/// # Panics
/// Panics on any violation — a lowering bug, never a program error.
fn verify(code: &LoopCode) {
    assert_eq!(code.code.len(), code.spans.len(), "span table out of sync");
    let n = code.code.len() as u32;
    let nr = code.num_regs;
    let reg = |r: Reg| assert!(r < nr, "register {r} out of range (have {nr})");
    let tgt = |t: u32| assert!(t < n, "jump target {t} out of range (have {n})");
    assert!(
        matches!(code.code.last(), Some(Insn::Halt)),
        "body must end in halt"
    );
    for insn in &code.code {
        match *insn {
            Insn::Move { dst, src } => {
                reg(dst);
                reg(src);
            }
            Insn::Counter { dst } => reg(dst),
            Insn::Add { dst, a, b }
            | Insn::Sub { dst, a, b }
            | Insn::Mul { dst, a, b }
            | Insn::Div { dst, a, b }
            | Insn::Rem { dst, a, b }
            | Insn::CmpEq { dst, a, b }
            | Insn::CmpNe { dst, a, b }
            | Insn::CmpLt { dst, a, b }
            | Insn::CmpLe { dst, a, b }
            | Insn::CmpGt { dst, a, b }
            | Insn::CmpGe { dst, a, b }
            | Insn::Min { dst, a, b }
            | Insn::Max { dst, a, b } => {
                reg(dst);
                reg(a);
                reg(b);
            }
            Insn::MulAdd { dst, a, b, c }
            | Insn::MulSub { dst, a, b, c }
            | Insn::MulRSub { dst, a, b, c } => {
                reg(dst);
                reg(a);
                reg(b);
                reg(c);
            }
            Insn::DualMulAdd { dst, a, b, c, d } => {
                reg(dst);
                reg(a);
                reg(b);
                reg(c);
                reg(d);
            }
            Insn::Neg { dst, a }
            | Insn::Not { dst, a }
            | Insn::Abs { dst, a }
            | Insn::Sqrt { dst, a }
            | Insn::Floor { dst, a }
            | Insn::RemPow2 { dst, a, .. } => {
                reg(dst);
                reg(a);
            }
            Insn::Load { dst, idx, .. } | Insn::LoadMarked { dst, idx, .. } => {
                reg(dst);
                reg(idx);
            }
            Insn::Store { idx, src, .. }
            | Insn::StoreMarked { idx, src, .. }
            | Insn::Reduce { idx, src, .. } => {
                reg(idx);
                reg(src);
            }
            Insn::Jump { target } => tgt(target),
            Insn::JumpIfZero { cond, target } => {
                reg(cond);
                tgt(target);
            }
            Insn::JumpUnless { a, b, target, .. } => {
                reg(a);
                reg(b);
                tgt(target);
            }
            Insn::Bump | Insn::Exit | Insn::Halt => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn lower_src(src: &str) -> LoopCode {
        let prog = parse(src).unwrap();
        let classes = crate::analyze::classify_loop(&prog, 0)
            .into_iter()
            .map(|c| c.class)
            .collect::<Vec<_>>();
        lower_loop(&prog.loops[0], &classes)
    }

    #[test]
    fn instructions_are_twelve_bytes() {
        // Fixed width: the four-register multiply-accumulate forms and
        // the fused compare-and-branch set the size.
        assert_eq!(std::mem::size_of::<Insn>(), 12);
    }

    #[test]
    fn muladd_shapes_fuse_into_one_dispatch() {
        let code = lower_src(
            "array A[64] = 1;\narray B[64];\nfor i in 0..64 {\n  let x = A[i];\n  B[i] = x * 3 + i;\n  B[i] = i + x * 3;\n  B[i] = x * 3 - i;\n  B[i] = i - x * 3;\n  B[i] = x * 2 + i * 5;\n}",
        );
        let count = |f: &dyn Fn(&Insn) -> bool| code.code.iter().filter(|i| f(i)).count();
        assert_eq!(
            count(&|i| matches!(i, Insn::MulAdd { .. })),
            2,
            "{:?}",
            code.code
        );
        assert_eq!(count(&|i| matches!(i, Insn::MulSub { .. })), 1);
        assert_eq!(count(&|i| matches!(i, Insn::MulRSub { .. })), 1);
        assert_eq!(count(&|i| matches!(i, Insn::DualMulAdd { .. })), 1);
        assert_eq!(
            count(&|i| matches!(i, Insn::Mul { .. })),
            0,
            "all multiplies fused"
        );
    }

    #[test]
    fn constant_multiplies_stay_folded_not_fused() {
        // `2 * 3 + i` folds to `6 + i`; fusing it into a runtime
        // multiply-accumulate would defeat the constant folder.
        let code = lower_src("array A[64];\nfor i in 0..64 { A[i] = 2 * 3 + i; }");
        assert!(!code.code.iter().any(|i| matches!(i, Insn::MulAdd { .. })));
        assert!(code.consts.contains(&6.0), "{:?}", code.consts);
    }

    #[test]
    fn power_of_two_modulus_is_strength_reduced() {
        let code = lower_src("array A[64];\nfor i in 0..128 { A[i % 64] = i % 3; }");
        // `% 64` becomes a mask; `% 3` stays a real remainder.
        assert!(
            code.code
                .iter()
                .any(|i| matches!(i, Insn::RemPow2 { mask: 63, .. })),
            "{:?}",
            code.code
        );
        assert!(code.code.iter().any(|i| matches!(i, Insn::Rem { .. })));
    }

    #[test]
    fn bare_comparison_conditions_fuse_into_branch() {
        let code = lower_src(
            "array A[64];\nfor i in 0..64 {\n  if i % 8 == 0 { A[i] = 1; }\n  break if i >= 60;\n}",
        );
        let unless = code
            .code
            .iter()
            .filter(|i| matches!(i, Insn::JumpUnless { .. }))
            .count();
        assert_eq!(unless, 2, "{:?}", code.code);
        assert!(
            !code
                .code
                .iter()
                .any(|i| matches!(i, Insn::JumpIfZero { .. })),
            "no materialized booleans remain: {:?}",
            code.code
        );
    }

    #[test]
    fn provably_integral_subscripts_are_trusted() {
        let code = lower_src(
            "array A[256] = 1;\narray B[64];\nfor i in 0..64 {\n  let s = (i * 3 + 1) % 64;\n  B[i] = A[s + 2];\n  A[i - 1] = 0;\n}",
        );
        // `s + 2` chains loop-var arithmetic through a let slot:
        // trusted. `i - 1` can be negative at i = 0: checked.
        assert!(
            code.code
                .iter()
                .any(|i| matches!(i, Insn::LoadMarked { trusted: true, .. })),
            "{:?}",
            code.code
        );
        assert!(
            code.code
                .iter()
                .any(|i| matches!(i, Insn::StoreMarked { trusted: false, .. })),
            "{:?}",
            code.code
        );
    }

    #[test]
    fn straight_line_body_lowers_compactly() {
        let code = lower_src("array A[64];\narray B[64] = 1;\nfor i in 0..64 { A[i] = B[i] * 2; }");
        // idx is the loop register, 2 and the mul land in one temp
        // each: mul + store + halt.
        assert!(code.len() <= 4, "{:?}", code.code);
        assert!(matches!(code.code.last(), Some(Insn::Halt)));
    }

    #[test]
    fn elision_selects_the_unmarked_addressing_mode() {
        // B is provably disjoint (untested) -> plain store; A is tested
        // (data-dependent subscript) -> fused marked ops.
        let code = lower_src(
            "array A[128] = 1;\narray B[64];\nfor i in 0..64 {\n  let s = (i * 7) % 64;\n  B[i] = A[s];\n  A[s + 1] = i;\n}",
        );
        let has = |f: &dyn Fn(&Insn) -> bool| code.code.iter().any(f);
        assert!(has(&|i| matches!(i, Insn::LoadMarked { .. })));
        assert!(has(&|i| matches!(i, Insn::StoreMarked { .. })));
        assert!(has(&|i| matches!(i, Insn::Store { .. })));
        assert!(
            !has(&|i| matches!(i, Insn::Load { .. })),
            "no unmarked loads of A"
        );
    }

    #[test]
    fn constants_are_pooled_and_deduplicated() {
        let code = lower_src("array A[64];\nfor i in 0..64 { A[i] = i * 0.5 + 0.5 * 3; }");
        // 0.5 appears once in the pool; 0.5 * 3 folds to 1.5.
        let halves = code.consts.iter().filter(|c| **c == 0.5).count();
        assert_eq!(halves, 1);
        assert!(code.consts.contains(&1.5), "{:?}", code.consts);
    }

    #[test]
    fn modulo_by_literal_zero_is_not_folded() {
        // The fault must fire at run time, identically to the
        // interpreter — never at compile time.
        let code = lower_src("array A[8];\nfor i in 0..8 { A[i] = 4 % 0; }");
        assert!(code.code.iter().any(|i| matches!(i, Insn::Rem { .. })));
    }

    #[test]
    fn spans_follow_array_references() {
        let code = lower_src("array A[8];\nfor i in 0..8 {\n  A[i] = 1;\n}");
        let store_pc = code
            .code
            .iter()
            .position(|i| matches!(i, Insn::Store { .. } | Insn::StoreMarked { .. }))
            .unwrap();
        assert_eq!(code.span_of(store_pc).line, 3);
    }

    #[test]
    fn disassembly_names_arrays_and_marks() {
        let code = lower_src("array A[128] = 1;\nfor i in 0..64 { A[(i * 3) % 64] = A[i] + 1; }");
        let text = code.disassemble(&["A"], "i");
        assert!(text.contains("ld.mark"), "{text}");
        assert!(text.contains("st.mark"), "{text}");
        assert!(text.contains("fused write-mark of A"), "{text}");
        assert!(text.contains("@ 2:"), "{text}");
    }
}
