//! Recursive-descent parser producing a resolved [`Program`] (array
//! names and locals are resolved to indices during parsing).

use crate::ast::*;
use crate::error::LangError;
use crate::token::{lex, Tok, Token};
use std::collections::HashMap;

/// Parse a full program.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        arrays: Vec::new(),
        array_ids: HashMap::new(),
        scalar_ids: HashMap::new(),
        counter: None,
        locals: Vec::new(),
        num_locals: 0,
        loop_var: String::new(),
    };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    arrays: Vec<ArrayDeclAst>,
    array_ids: HashMap<String, usize>,
    /// Scalars desugar to hidden size-1 arrays: name -> array id.
    scalar_ids: HashMap<String, usize>,
    /// The induction counter, when declared.
    counter: Option<(String, usize)>,
    /// Lexically visible locals: (name, slot), innermost last.
    locals: Vec<(String, usize)>,
    num_locals: usize,
    loop_var: String,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        let t = self.peek();
        Err(LangError::at(t.line, t.col, msg.into()))
    }

    fn expect_punct(&mut self, c: char) -> Result<(), LangError> {
        if self.peek().kind == Tok::Punct(c) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{c}', found {}", self.peek().kind))
        }
    }

    fn expect_op(&mut self, op: &'static str) -> Result<(), LangError> {
        if self.peek().kind == Tok::Op(op) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{op}', found {}", self.peek().kind))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        match &self.peek().kind {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => {
                let msg = format!("expected '{kw}', found {other}");
                self.err(msg)
            }
        }
    }

    fn ident(&mut self) -> Result<(String, u32, u32), LangError> {
        match self.peek().kind.clone() {
            Tok::Ident(s) => {
                let t = self.bump();
                Ok((s, t.line, t.col))
            }
            other => {
                let msg = format!("expected identifier, found {other}");
                self.err(msg)
            }
        }
    }

    fn number(&mut self) -> Result<f64, LangError> {
        match self.peek().kind {
            Tok::Num(n) => {
                self.bump();
                Ok(n)
            }
            ref other => {
                let msg = format!("expected number, found {other}");
                self.err(msg)
            }
        }
    }

    fn usize_lit(&mut self) -> Result<usize, LangError> {
        let n = self.number()?;
        if n < 0.0 || n.fract() != 0.0 {
            return self.err("expected a non-negative integer");
        }
        Ok(n as usize)
    }

    fn program(&mut self) -> Result<Program, LangError> {
        // Declarations come first.
        loop {
            match self.peek().kind.clone() {
                Tok::Ident(s) if s == "array" => self.array_decl()?,
                Tok::Ident(s) if s == "scalar" => self.scalar_decl()?,
                Tok::Ident(s) if s == "counter" => self.counter_decl()?,
                _ => break,
            }
        }

        // Then one or more (optionally cost-annotated) loops.
        let mut loops = Vec::new();
        loop {
            let mut cost = 1.0;
            if matches!(&self.peek().kind, Tok::Ident(s) if s == "cost") {
                self.bump();
                cost = self.number()?;
                if cost <= 0.0 {
                    return self.err("cost must be positive");
                }
                self.expect_punct(';')?;
            }
            let span = {
                let t = self.peek();
                Span::at(t.line, t.col)
            };
            self.expect_keyword("for")?;
            let (var, ..) = self.ident()?;
            self.loop_var = var.clone();
            self.num_locals = 0;
            self.locals.clear();
            self.expect_keyword("in")?;
            let lo = self.usize_lit()?;
            self.expect_op("..")?;
            let hi = self.usize_lit()?;
            if hi < lo {
                return self.err(format!("empty or inverted range {lo}..{hi}"));
            }
            let body = self.block()?;
            loops.push(LoopNest {
                loop_var: var,
                range: (lo, hi),
                cost,
                body,
                num_locals: self.num_locals,
                span,
            });
            if self.peek().kind == Tok::Eof {
                break;
            }
        }
        Ok(Program {
            arrays: std::mem::take(&mut self.arrays),
            counter: self.counter.take(),
            loops,
        })
    }

    /// `counter NAME (= INIT)?;` — the conditionally-incremented
    /// induction variable of the EXTEND pattern. At most one.
    fn counter_decl(&mut self) -> Result<(), LangError> {
        self.expect_keyword("counter")?;
        let (name, line, col) = self.ident()?;
        if self.counter.is_some() {
            return Err(LangError::at(line, col, "only one counter is supported"));
        }
        if self.array_ids.contains_key(&name) || self.scalar_ids.contains_key(&name) {
            return Err(LangError::at(line, col, format!("'{name}' declared twice")));
        }
        let init = if self.peek().kind == Tok::Op("=") {
            self.bump();
            self.usize_lit()?
        } else {
            0
        };
        self.expect_punct(';')?;
        self.counter = Some((name, init));
        Ok(())
    }

    fn array_decl(&mut self) -> Result<(), LangError> {
        self.expect_keyword("array")?;
        let (name, line, _) = self.ident()?;
        if self.array_ids.contains_key(&name) {
            return self.err(format!("array '{name}' declared twice"));
        }
        self.expect_punct('[')?;
        let size = self.usize_lit()?;
        self.expect_punct(']')?;
        let init = if self.peek().kind == Tok::Op("=") {
            self.bump();
            self.signed_number()?
        } else {
            0.0
        };
        let hint = if self.peek().kind == Tok::Punct(':') {
            self.bump();
            Some(self.kind_hint()?)
        } else {
            None
        };
        self.expect_punct(';')?;
        self.array_ids.insert(name.clone(), self.arrays.len());
        self.arrays.push(ArrayDeclAst {
            name,
            size,
            init,
            hint,
            line,
        });
        Ok(())
    }

    /// `scalar NAME (= INIT)?;` — desugars to a hidden one-element
    /// array. The run-time test then discovers the scalar's nature
    /// dynamically: write-first scalars privatize (one stage),
    /// `s += e` scalars become reductions, genuinely loop-carried
    /// scalars serialize under the R-LRPD test — all without any
    /// scalar-specific machinery.
    fn scalar_decl(&mut self) -> Result<(), LangError> {
        self.expect_keyword("scalar")?;
        let (name, line, col) = self.ident()?;
        if self.array_ids.contains_key(&name) || self.scalar_ids.contains_key(&name) {
            return Err(LangError::at(line, col, format!("'{name}' declared twice")));
        }
        let init = if self.peek().kind == Tok::Op("=") {
            self.bump();
            self.signed_number()?
        } else {
            0.0
        };
        self.expect_punct(';')?;
        let id = self.arrays.len();
        self.scalar_ids.insert(name.clone(), id);
        self.arrays.push(ArrayDeclAst {
            name,
            size: 1,
            init,
            hint: None,
            line,
        });
        Ok(())
    }

    fn signed_number(&mut self) -> Result<f64, LangError> {
        if self.peek().kind == Tok::Op("-") {
            self.bump();
            Ok(-self.number()?)
        } else {
            self.number()
        }
    }

    fn kind_hint(&mut self) -> Result<KindHint, LangError> {
        let (kw, ..) = self.ident()?;
        match kw.as_str() {
            "tested" => Ok(KindHint::Tested),
            "untested" => Ok(KindHint::Untested),
            "reduction" => {
                self.expect_punct('(')?;
                let op = match self.peek().kind {
                    Tok::Op("+") => UpdateOp::Add,
                    Tok::Op("*") => UpdateOp::Mul,
                    ref other => {
                        let msg = format!("expected '+' or '*', found {other}");
                        return self.err(msg);
                    }
                };
                self.bump();
                self.expect_punct(')')?;
                Ok(KindHint::Reduction(op))
            }
            other => self.err(format!("unknown kind hint '{other}'")),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect_punct('{')?;
        let scope_depth = self.locals.len();
        let mut stmts = Vec::new();
        while self.peek().kind != Tok::Punct('}') {
            if self.peek().kind == Tok::Eof {
                return self.err("unclosed block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // '}'
        self.locals.truncate(scope_depth);
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek().kind.clone() {
            Tok::Ident(s) if s == "let" => {
                self.bump();
                let (name, ..) = self.ident()?;
                self.expect_op("=")?;
                let expr = self.expr()?;
                self.expect_punct(';')?;
                let slot = self.num_locals;
                self.num_locals += 1;
                self.locals.push((name, slot));
                Ok(Stmt::Let { slot, expr })
            }
            Tok::Ident(s) if s == "bump" => {
                self.bump();
                let (name, line, col) = self.ident()?;
                match &self.counter {
                    Some((c, _)) if *c == name => {}
                    _ => {
                        return Err(LangError::at(
                            line,
                            col,
                            format!("'{name}' is not the declared counter"),
                        ))
                    }
                }
                self.expect_punct(';')?;
                Ok(Stmt::Bump)
            }
            Tok::Ident(s) if s == "break" => {
                self.bump();
                self.expect_keyword("if")?;
                let cond = self.expr()?;
                self.expect_punct(';')?;
                Ok(Stmt::Break { cond })
            }
            Tok::Ident(s) if s == "if" => {
                let kw = self.bump();
                let span = Span::at(kw.line, kw.col);
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if matches!(&self.peek().kind, Tok::Ident(s) if s == "else") {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                })
            }
            Tok::Ident(name) => {
                let (_, line, col) = self.ident()?;
                let span = Span::at(line, col);
                if let Some(&array) = self.scalar_ids.get(&name) {
                    // Scalar assignment: desugar to element 0.
                    let index = Expr::Num(0.0);
                    let stmt = match self.peek().kind {
                        Tok::Op("=") => {
                            self.bump();
                            let expr = self.expr()?;
                            Stmt::Assign {
                                array,
                                index,
                                expr,
                                span,
                            }
                        }
                        Tok::Op("+=") => {
                            self.bump();
                            let expr = self.expr()?;
                            Stmt::Update {
                                array,
                                index,
                                op: UpdateOp::Add,
                                expr,
                                span,
                            }
                        }
                        Tok::Op("*=") => {
                            self.bump();
                            let expr = self.expr()?;
                            Stmt::Update {
                                array,
                                index,
                                op: UpdateOp::Mul,
                                expr,
                                span,
                            }
                        }
                        ref other => {
                            let msg = format!("expected '=', '+=' or '*=', found {other}");
                            return self.err(msg);
                        }
                    };
                    self.expect_punct(';')?;
                    return Ok(stmt);
                }
                let Some(&array) = self.array_ids.get(&name) else {
                    return Err(LangError::at(
                        line,
                        col,
                        format!("'{name}' is not a declared array or scalar"),
                    ));
                };
                self.expect_punct('[')?;
                let index = self.expr()?;
                self.expect_punct(']')?;
                let stmt = match self.peek().kind {
                    Tok::Op("=") => {
                        self.bump();
                        let expr = self.expr()?;
                        Stmt::Assign {
                            array,
                            index,
                            expr,
                            span,
                        }
                    }
                    Tok::Op("+=") => {
                        self.bump();
                        let expr = self.expr()?;
                        Stmt::Update {
                            array,
                            index,
                            op: UpdateOp::Add,
                            expr,
                            span,
                        }
                    }
                    Tok::Op("*=") => {
                        self.bump();
                        let expr = self.expr()?;
                        Stmt::Update {
                            array,
                            index,
                            op: UpdateOp::Mul,
                            expr,
                            span,
                        }
                    }
                    ref other => {
                        let msg = format!("expected '=', '+=' or '*=', found {other}");
                        return self.err(msg);
                    }
                };
                self.expect_punct(';')?;
                Ok(stmt)
            }
            other => {
                let msg = format!("expected a statement, found {other}");
                self.err(msg)
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek().kind == Tok::Op("||") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek().kind == Tok::Op("&&") {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            Tok::Op("==") => BinOp::Eq,
            Tok::Op("!=") => BinOp::Ne,
            Tok::Op("<") => BinOp::Lt,
            Tok::Op("<=") => BinOp::Le,
            Tok::Op(">") => BinOp::Gt,
            Tok::Op(">=") => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                Tok::Op("+") => BinOp::Add,
                Tok::Op("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                Tok::Op("*") => BinOp::Mul,
                Tok::Op("/") => BinOp::Div,
                Tok::Op("%") => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind {
            Tok::Op("-") => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary_expr()?)))
            }
            Tok::Op("!") => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind.clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Punct('(') => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let (_, line, col) = self.ident()?;
                if self.peek().kind == Tok::Punct('(') {
                    let func = match name.as_str() {
                        "min" => (Intrinsic::Min, 2),
                        "max" => (Intrinsic::Max, 2),
                        "abs" => (Intrinsic::Abs, 1),
                        "sqrt" => (Intrinsic::Sqrt, 1),
                        "floor" => (Intrinsic::Floor, 1),
                        other => {
                            return Err(LangError::at(
                                line,
                                col,
                                format!("unknown function '{other}'"),
                            ))
                        }
                    };
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.peek().kind == Tok::Punct(',') {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    self.expect_punct(')')?;
                    if args.len() != func.1 {
                        return Err(LangError::at(
                            line,
                            col,
                            format!("'{name}' takes {} argument(s), got {}", func.1, args.len()),
                        ));
                    }
                    Ok(Expr::Call { func: func.0, args })
                } else if self.peek().kind == Tok::Punct('[') {
                    let Some(&array) = self.array_ids.get(&name) else {
                        return Err(LangError::at(line, col, format!("unknown array '{name}'")));
                    };
                    self.bump();
                    let index = self.expr()?;
                    self.expect_punct(']')?;
                    Ok(Expr::Read {
                        array,
                        index: Box::new(index),
                        span: Span::at(line, col),
                    })
                } else if name == self.loop_var {
                    Ok(Expr::LoopVar)
                } else if let Some(&(_, slot)) = self.locals.iter().rev().find(|(n, _)| *n == name)
                {
                    Ok(Expr::Local(slot))
                } else if let Some(&array) = self.scalar_ids.get(&name) {
                    Ok(Expr::Read {
                        array,
                        index: Box::new(Expr::Num(0.0)),
                        span: Span::at(line, col),
                    })
                } else if matches!(&self.counter, Some((c, _)) if *c == name) {
                    Ok(Expr::Counter)
                } else {
                    Err(LangError::at(line, col, format!("unknown name '{name}'")))
                }
            }
            other => {
                let msg = format!("expected an expression, found {other}");
                self.err(msg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_program() {
        let p = parse(
            "array A[10];\n\
             array B[10] = 1 : untested;\n\
             cost 5;\n\
             for i in 0..10 {\n\
                 let v = A[i] + B[i];\n\
                 if v > 2 { A[i] = v; } else { A[i] = i; }\n\
             }",
        )
        .unwrap();
        assert_eq!(p.arrays.len(), 2);
        assert_eq!(p.arrays[1].init, 1.0);
        assert_eq!(p.arrays[1].hint, Some(KindHint::Untested));
        assert_eq!(p.loops.len(), 1);
        assert_eq!(p.loops[0].range, (0, 10));
        assert_eq!(p.loops[0].cost, 5.0);
        assert_eq!(p.loops[0].body.len(), 2);
        assert_eq!(p.loops[0].num_locals, 1);
    }

    #[test]
    fn update_ops_parse_as_updates() {
        let p = parse("array Y[4];\nfor i in 0..4 { Y[i % 4] += i; }").unwrap();
        match &p.loops[0].body[0] {
            Stmt::Update { op, .. } => assert_eq!(*op, UpdateOp::Add),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse("array A[4];\nfor i in 0..4 { A[0] = 1 + 2 * 3; }").unwrap();
        match &p.loops[0].body[0] {
            Stmt::Assign {
                expr:
                    Expr::Bin {
                        op: BinOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locals_are_scoped_to_their_block() {
        let err =
            parse("array A[4];\nfor i in 0..4 { if i > 0 { let v = 1; } A[i] = v; }").unwrap_err();
        assert!(err.message.contains("unknown name 'v'"), "{err}");
    }

    #[test]
    fn unknown_array_is_a_resolution_error() {
        let err = parse("for i in 0..4 { A[i] = 1; }").unwrap_err();
        assert!(err.message.contains("not a declared array"), "{err}");
    }

    #[test]
    fn duplicate_array_rejected() {
        let err = parse("array A[4];\narray A[4];\nfor i in 0..1 { A[0] = 0; }").unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn reduction_hint_parses() {
        let p = parse("array Y[4] : reduction(*);\nfor i in 0..4 { Y[0] *= 2; }").unwrap();
        assert_eq!(p.arrays[0].hint, Some(KindHint::Reduction(UpdateOp::Mul)));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("array A[4]\nfor i in 0..4 { }").unwrap_err();
        assert_eq!(err.line, 2, "the missing ';' is noticed at 'for'");
    }
}
