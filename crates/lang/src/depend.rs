//! Symbolic dependence analysis — the real compile-time half of the
//! paper's hybrid static/dynamic framework.
//!
//! The classifier in [`crate::analyze`] needs to know, for every array
//! and every loop, whether two *different* iterations can touch the
//! same element with a write involved. This module answers that
//! question without enumerating the iteration space:
//!
//! * every array reference is normalized to an [`AccessDesc`] — an
//!   affine subscript `a·i + b` when the subscript provably is one, or
//!   an opaque subscript with an optional value [`Interval`] otherwise;
//! * a **value-range (interval) analysis** over `let` locals and
//!   arithmetic keeps moduli and clamped indirections like `i % 31` or
//!   `(i*11 + 3) % 512` finite: `e % m` either *stays affine* (when
//!   `range(e) ⊆ [0, m-1]` the modulo is the identity) or becomes an
//!   opaque subscript with the range `[0, |m|-1]`;
//! * cross-iteration conflicts between two affine subscripts are
//!   decided in O(1) by a **GCD test** plus a **Banerjee-style bound
//!   intersection** (the t-interval of the Diophantine solution line
//!   intersected with the iteration bounds), and when a dependence must
//!   exist its minimum **distance** and the first possible **sink
//!   iteration** are computed in closed form from the same line;
//! * opaque subscripts fall back to interval disjointness (a proof of
//!   independence) or a pigeonhole argument (`width < #iters` forces a
//!   repeated element — a *must* conflict for an unguarded write);
//! * a per-array **touch-density estimate** (how many distinct elements
//!   the loop will mark) feeds shadow-structure selection.
//!
//! Nothing in the conflict decisions iterates over the loop range, so
//! classifying a `0..10^15` loop costs the same as a `0..10` one.

use crate::ast::*;
use crate::pretty::subscript_to_string;

/// An inclusive integer interval `[lo, hi]` (saturating arithmetic; the
/// subscript domain is well inside `i64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: i64,
    /// Largest possible value.
    pub hi: i64,
}

impl Interval {
    /// The interval `[lo, hi]` (panics if inverted).
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Number of integers covered (saturating).
    pub fn width(&self) -> u64 {
        (self.hi as i128 - self.lo as i128 + 1).min(u64::MAX as i128) as u64
    }

    /// `self + other` (saturating).
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// `self - other` (saturating).
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    /// `-self`.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.saturating_neg(),
            hi: self.lo.saturating_neg(),
        }
    }

    /// `self * other` (all four corner products, saturating).
    pub fn mul(&self, other: &Interval) -> Interval {
        let cs = [
            self.lo as i128 * other.lo as i128,
            self.lo as i128 * other.hi as i128,
            self.hi as i128 * other.lo as i128,
            self.hi as i128 * other.hi as i128,
        ];
        let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        Interval {
            lo: clamp(*cs.iter().min().unwrap()),
            hi: clamp(*cs.iter().max().unwrap()),
        }
    }

    /// Does `self` share any integer with `other`?
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Is every value of `self` inside `other`?
    pub fn within(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// The intersection, when non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

/// A normalized subscript: affine in the loop variable, or opaque with
/// whatever value range the interval analysis could prove.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subscript {
    /// `a·i + b` for loop variable `i`.
    Affine {
        /// Coefficient of the loop variable.
        a: i64,
        /// Constant offset.
        b: i64,
    },
    /// Not affine; `range` bounds the value when known (e.g. a modulo).
    Opaque {
        /// Provable value bounds, when any.
        range: Option<Interval>,
    },
}

impl Subscript {
    /// The value range of this subscript over iterations `[lo, hi)`,
    /// when known.
    pub fn range(&self, lo: i64, hi: i64) -> Option<Interval> {
        match *self {
            Subscript::Affine { a, b } => {
                if lo >= hi {
                    return None;
                }
                let iter = Interval::new(lo, hi - 1);
                Some(iter.mul(&Interval::point(a)).add(&Interval::point(b)))
            }
            Subscript::Opaque { range } => range,
        }
    }
}

/// Symbolic value of an expression: optional affine form plus optional
/// value range (each can be known independently).
#[derive(Clone, Copy, Debug)]
struct SymVal {
    /// `a·i + b` when the value is provably that.
    affine: Option<(i64, i64)>,
    /// Provable integer value bounds.
    range: Option<Interval>,
}

impl SymVal {
    fn opaque() -> Self {
        SymVal {
            affine: None,
            range: None,
        }
    }

    fn constant(v: i64) -> Self {
        SymVal {
            affine: Some((0, v)),
            range: Some(Interval::point(v)),
        }
    }

    fn ranged(r: Interval) -> Self {
        SymVal {
            affine: None,
            range: Some(r),
        }
    }

    /// The constant value, when this is provably one.
    fn as_const(&self) -> Option<i64> {
        match (self.affine, self.range) {
            (Some((0, b)), _) => Some(b),
            (_, Some(r)) if r.lo == r.hi => Some(r.lo),
            _ => None,
        }
    }

    fn subscript(&self) -> Subscript {
        match self.affine {
            Some((a, b)) => Subscript::Affine { a, b },
            None => Subscript::Opaque { range: self.range },
        }
    }
}

/// Symbolic evaluation environment for one loop.
struct SymEnv {
    locals: Vec<SymVal>,
    /// Value interval of the loop variable (`[lo, hi-1]`), `None` for
    /// an empty loop.
    iter: Option<Interval>,
}

impl SymEnv {
    fn eval(&self, e: &Expr) -> SymVal {
        match e {
            Expr::Num(n) => {
                if n.fract() == 0.0 && n.abs() < i64::MAX as f64 {
                    SymVal::constant(*n as i64)
                } else {
                    SymVal::opaque()
                }
            }
            Expr::LoopVar => SymVal {
                affine: Some((1, 0)),
                range: self.iter,
            },
            Expr::Counter | Expr::Read { .. } => SymVal::opaque(),
            Expr::Local(slot) => self
                .locals
                .get(*slot)
                .copied()
                .unwrap_or_else(SymVal::opaque),
            Expr::Neg(inner) => {
                let v = self.eval(inner);
                SymVal {
                    affine: v
                        .affine
                        .and_then(|(a, b)| Some((a.checked_neg()?, b.checked_neg()?))),
                    range: v.range.map(|r| r.neg()),
                }
            }
            Expr::Not(_) => SymVal::ranged(Interval::new(0, 1)),
            Expr::Bin { op, lhs, rhs } => self.eval_bin(*op, lhs, rhs),
            Expr::Call { func, args } => self.eval_call(*func, args),
        }
    }

    fn eval_bin(&self, op: BinOp, lhs: &Expr, rhs: &Expr) -> SymVal {
        let l = self.eval(lhs);
        let r = self.eval(rhs);
        match op {
            BinOp::Add => SymVal {
                affine: combine(l.affine, r.affine, i64::checked_add),
                range: l.range.zip(r.range).map(|(a, b)| a.add(&b)),
            },
            BinOp::Sub => SymVal {
                affine: combine(l.affine, r.affine, i64::checked_sub),
                range: l.range.zip(r.range).map(|(a, b)| a.sub(&b)),
            },
            BinOp::Mul => {
                let affine = match (l.as_const(), r.as_const()) {
                    (Some(c), _) => scale(r.affine, c),
                    (_, Some(c)) => scale(l.affine, c),
                    _ => None,
                };
                SymVal {
                    affine,
                    range: l.range.zip(r.range).map(|(a, b)| a.mul(&b)),
                }
            }
            BinOp::Div => {
                // Exact division only: (a·i + b) / c is affine iff c
                // divides both coefficients (otherwise the quotient is
                // fractional for some i and nothing can be proved).
                match (l.affine, r.as_const()) {
                    (Some((a, b)), Some(c)) if c != 0 && a % c == 0 && b % c == 0 => SymVal {
                        affine: Some((a / c, b / c)),
                        range: self
                            .iter
                            .map(|it| it.mul(&Interval::point(a / c)).add(&Interval::point(b / c))),
                    },
                    _ => SymVal::opaque(),
                }
            }
            BinOp::Rem => {
                // The interpreter computes `l.round().rem_euclid(m)`,
                // which lands in [0, |m|-1] for any constant m != 0.
                // The rewrite win: when range(l) already fits in
                // [0, |m|-1], the modulo is the identity and the
                // subscript stays affine.
                match r.as_const() {
                    Some(m) if m != 0 => {
                        let mab = m.abs();
                        let bound = Interval::new(0, mab - 1);
                        match l.range {
                            Some(lr) if lr.within(&bound) => l,
                            _ => SymVal::ranged(bound),
                        }
                    }
                    _ => SymVal::opaque(),
                }
            }
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => SymVal::ranged(Interval::new(0, 1)),
        }
    }

    fn eval_call(&self, func: Intrinsic, args: &[Expr]) -> SymVal {
        let a = self.eval(&args[0]);
        match func {
            Intrinsic::Min | Intrinsic::Max => {
                let b = self.eval(&args[1]);
                let range = a.range.zip(b.range).map(|(ra, rb)| match func {
                    Intrinsic::Min => Interval::new(ra.lo.min(rb.lo), ra.hi.min(rb.hi)),
                    _ => Interval::new(ra.lo.max(rb.lo), ra.hi.max(rb.hi)),
                });
                SymVal {
                    affine: None,
                    range,
                }
            }
            Intrinsic::Abs => match a.range {
                // abs of a provably non-negative value is the identity.
                Some(r) if r.lo >= 0 => a,
                Some(r) => {
                    let hi = r.lo.abs().max(r.hi.abs());
                    let lo = if r.lo <= 0 && r.hi >= 0 {
                        0
                    } else {
                        r.lo.abs().min(r.hi.abs())
                    };
                    SymVal::ranged(Interval::new(lo, hi))
                }
                None => SymVal::opaque(),
            },
            // Affine values over an integer loop variable are integral,
            // so floor is the identity on them.
            Intrinsic::Floor => a,
            Intrinsic::Sqrt => SymVal::opaque(),
        }
    }
}

fn combine(
    l: Option<(i64, i64)>,
    r: Option<(i64, i64)>,
    op: fn(i64, i64) -> Option<i64>,
) -> Option<(i64, i64)> {
    let ((a1, b1), (a2, b2)) = (l?, r?);
    Some((op(a1, a2)?, op(b1, b2)?))
}

fn scale(v: Option<(i64, i64)>, c: i64) -> Option<(i64, i64)> {
    let (a, b) = v?;
    Some((a.checked_mul(c)?, b.checked_mul(c)?))
}

/// One array reference, normalized for dependence testing.
#[derive(Clone, Debug)]
pub struct AccessDesc {
    /// Normalized subscript.
    pub subscript: Subscript,
    /// Write (assign / update) vs read.
    pub is_write: bool,
    /// Span of the innermost enclosing `if` when the reference is
    /// conditional; `None` for an unconditional reference.
    pub guard: Option<Span>,
    /// Source position of the reference itself.
    pub span: Span,
    /// The subscript as source text (diagnostics).
    pub text: String,
}

/// Everything the walk learned about one array in one loop.
#[derive(Clone, Debug, Default)]
pub struct ArrayRefs {
    /// Normalized ordinary accesses (updates appear as write + read).
    pub accesses: Vec<AccessDesc>,
    /// `A[e] ⊕= …` operators seen, with their spans.
    pub updates: Vec<(UpdateOp, Span)>,
    /// Referenced outside the update pattern (or an update's delta or
    /// subscript reads the array itself) — disqualifies reduction.
    pub non_reduction_ref: bool,
}

struct Collector<'p> {
    program: &'p Program,
    loop_var: &'p str,
    env: SymEnv,
    guards: Vec<Span>,
    refs: Vec<ArrayRefs>,
}

impl Collector<'_> {
    fn subscript_text(&self, array: usize, index: &Expr) -> String {
        subscript_to_string(self.program, array, index, self.loop_var)
    }

    fn push_access(&mut self, array: usize, index: &Expr, span: Span, is_write: bool) {
        let desc = AccessDesc {
            subscript: self.env.eval(index).subscript(),
            is_write,
            guard: self.guards.last().copied(),
            span,
            text: self.subscript_text(array, index),
        };
        self.refs[array].accesses.push(desc);
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Read { array, index, span } => {
                self.refs[*array].non_reduction_ref = true;
                self.push_access(*array, index, *span, false);
                self.expr(index);
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Neg(e) | Expr::Not(e) => self.expr(e),
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Num(_) | Expr::LoopVar | Expr::Counter | Expr::Local(_) => {}
        }
    }

    fn reads_array(e: &Expr, array: usize) -> bool {
        match e {
            Expr::Read {
                array: a, index, ..
            } => *a == array || Self::reads_array(index, array),
            Expr::Bin { lhs, rhs, .. } => {
                Self::reads_array(lhs, array) || Self::reads_array(rhs, array)
            }
            Expr::Neg(e) | Expr::Not(e) => Self::reads_array(e, array),
            Expr::Call { args, .. } => args.iter().any(|a| Self::reads_array(a, array)),
            _ => false,
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            match s {
                Stmt::Let { slot, expr } => {
                    self.expr(expr);
                    self.env.locals[*slot] = self.env.eval(expr);
                }
                Stmt::Assign {
                    array,
                    index,
                    expr,
                    span,
                } => {
                    self.refs[*array].non_reduction_ref = true;
                    self.push_access(*array, index, *span, true);
                    self.expr(index);
                    self.expr(expr);
                }
                Stmt::Update {
                    array,
                    index,
                    op,
                    expr,
                    span,
                } => {
                    self.refs[*array].updates.push((*op, *span));
                    if Self::reads_array(expr, *array) || Self::reads_array(index, *array) {
                        self.refs[*array].non_reduction_ref = true;
                    }
                    // For the non-reduction fallback the update is a
                    // read-modify-write of one element.
                    self.push_access(*array, index, *span, true);
                    self.push_access(*array, index, *span, false);
                    self.expr(index);
                    self.expr(expr);
                }
                Stmt::Bump => {}
                Stmt::Break { cond } => self.expr(cond),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => {
                    self.expr(cond);
                    // Guards are conservatively assumed taken, but the
                    // references under them remember the guard span.
                    self.guards.push(*span);
                    self.stmts(then_body);
                    self.stmts(else_body);
                    self.guards.pop();
                }
            }
        }
    }
}

/// Walk loop `k` of `program` and normalize every array reference:
/// `result[array_id]`.
pub fn collect_refs(program: &Program, k: usize) -> Vec<ArrayRefs> {
    let nest = &program.loops[k];
    let (lo, hi) = nest.range;
    let iter = (lo < hi).then(|| Interval::new(lo as i64, hi as i64 - 1));
    let mut c = Collector {
        program,
        loop_var: &nest.loop_var,
        env: SymEnv {
            locals: vec![SymVal::opaque(); nest.num_locals],
            iter,
        },
        guards: Vec::new(),
        refs: vec![ArrayRefs::default(); program.arrays.len()],
    };
    c.stmts(&nest.body);
    c.refs
}

/// How certain the analysis is that the dependence occurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certainty {
    /// Two distinct in-range iterations provably touch the same
    /// element (and every involved reference is unconditional).
    Must,
    /// A conflict cannot be ruled out (opaque subscripts or guarded
    /// references).
    May,
}

/// A cross-iteration dependence between one pair of subscripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairDep {
    /// Proven or merely possible.
    pub certainty: Certainty,
    /// Minimum dependence distance `|i - j|` over all conflicting
    /// iteration pairs, when computable.
    pub distance: Option<usize>,
    /// Earliest iteration that can be the *sink* (later endpoint) of a
    /// conflicting pair, when computable.
    pub first_sink: Option<usize>,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Extended Euclid on non-zero `a, b`: returns `(g, x, y)` with
/// `a·x + b·y = g = gcd(|a|, |b|) > 0`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        let s = if a < 0 { -1 } else { 1 };
        return (a * s, s, 0);
    }
    let (g, x, y) = ext_gcd(b, a.rem_euclid(b));
    (g, y, x - a.div_euclid(b) * y)
}

/// The integer-`t` interval where `base + slope·t ∈ [lo, hi]`
/// (`slope != 0`); `None` when empty.
fn t_interval(base: i128, slope: i128, lo: i128, hi: i128) -> Option<(i128, i128)> {
    // base + slope·t >= lo  and  base + slope·t <= hi.
    let (a, b) = (lo - base, hi - base);
    let (tlo, thi) = if slope > 0 {
        (div_ceil(a, slope), div_floor(b, slope))
    } else {
        (div_ceil(b, slope), div_floor(a, slope))
    };
    (tlo <= thi).then_some((tlo, thi))
}

fn div_floor(a: i128, b: i128) -> i128 {
    a.div_euclid(b.abs()) * b.signum()
        - if b < 0 && a.rem_euclid(b.abs()) != 0 {
            1
        } else {
            0
        }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    -div_floor(-a, b)
}

/// Decide whether subscripts `s1` and `s2` can refer to the same
/// element from two *different* iterations of `lo..hi`. `None` means
/// provably not. No iteration-space enumeration happens here: the
/// affine/affine case is a GCD test, a Banerjee-style bound
/// intersection on the solution line, and closed-form distance
/// minimization; opaque cases use interval disjointness.
pub fn subscripts_conflict(s1: Subscript, s2: Subscript, lo: usize, hi: usize) -> Option<PairDep> {
    if hi.saturating_sub(lo) < 2 {
        return None; // fewer than two iterations: nothing is cross-iteration
    }
    let (il, iu) = (lo as i128, hi as i128 - 1);
    match (s1, s2) {
        (Subscript::Affine { a: a1, b: b1 }, Subscript::Affine { a: a2, b: b2 }) => {
            affine_pair(a1 as i128, b1 as i128, a2 as i128, b2 as i128, il, iu)
        }
        _ => {
            let r1 = s1.range(lo as i64, hi as i64);
            let r2 = s2.range(lo as i64, hi as i64);
            match (r1, r2) {
                (Some(r1), Some(r2)) if !r1.intersects(&r2) => None,
                _ => Some(PairDep {
                    certainty: Certainty::May,
                    distance: None,
                    first_sink: None,
                }),
            }
        }
    }
}

/// Exact conflict decision for `a1·i + b1 = a2·j + b2`, `i, j ∈
/// [il, iu]`, `i ≠ j`.
fn affine_pair(a1: i128, b1: i128, a2: i128, b2: i128, il: i128, iu: i128) -> Option<PairDep> {
    let c = b2 - b1;
    let must = |distance: Option<usize>, first_sink: Option<usize>| {
        Some(PairDep {
            certainty: Certainty::Must,
            distance,
            first_sink,
        })
    };
    match (a1, a2) {
        (0, 0) => {
            // Two constants: conflict iff the same element.
            if c != 0 {
                return None;
            }
            must(Some(1), Some((il + 1) as usize))
        }
        (0, a) | (a, 0) => {
            // One access is a constant element; the other hits it at
            // exactly one iteration j (if integral and in range), and
            // the constant access runs at every other iteration.
            let num = if a1 == 0 { b1 - b2 } else { b2 - b1 };
            if num % a != 0 {
                return None;
            }
            let j = num / a;
            if j < il || j > iu {
                return None;
            }
            let sink = if j > il { j } else { il + 1 };
            must(Some(1), Some(sink as usize))
        }
        _ if a1 == a2 => {
            // Equal strides: i - j = c / a1 must be a non-zero integer
            // no larger than the iteration span.
            if c % a1 != 0 {
                return None;
            }
            let d = (c / a1).abs();
            if d == 0 || d > iu - il {
                return None;
            }
            must(Some(d as usize), Some((il + d) as usize))
        }
        _ => affine_general(a1, a2, c, il, iu),
    }
}

/// General case: solve the Diophantine line and intersect with bounds.
fn affine_general(a1: i128, a2: i128, c: i128, il: i128, iu: i128) -> Option<PairDep> {
    // GCD test: a1·i - a2·j = c has integer solutions iff g | c.
    let (g, x, y) = ext_gcd(a1, -a2);
    debug_assert_eq!(g, gcd(a1 as i64, a2 as i64) as i128);
    if c % g != 0 {
        return None;
    }
    // Solution line: i = i0 + si·t, j = j0 + sj·t.
    let (i0, j0) = (x * (c / g), y * (c / g));
    let (si, sj) = (a2 / g, a1 / g);
    // Banerjee-style bound intersection: the t-window where both i and
    // j stay inside the iteration bounds.
    let (ti_lo, ti_hi) = t_interval(i0, si, il, iu)?;
    let (tj_lo, tj_hi) = t_interval(j0, sj, il, iu)?;
    let (tlo, thi) = (ti_lo.max(tj_lo), ti_hi.min(tj_hi));
    if tlo > thi {
        return None;
    }
    // diff(t) = i - j is linear with non-zero slope (a1 != a2), so at
    // most one t gives i == j (a same-iteration touch, not a
    // dependence). The candidate scan below skips it.
    let d0 = i0 - j0;
    let sd = si - sj;
    debug_assert_ne!(sd, 0);
    // Candidate ts: window ends plus the integers around the real
    // minimizer of |diff| (and of the sink) — a linear function's
    // constrained integer optimum is always adjacent to its real root
    // or at the window ends.
    let t_star = -d0 as f64 / sd as f64;
    let mut cands = vec![tlo, thi, tlo + 1, thi - 1];
    for base in [t_star.floor() as i128, t_star.ceil() as i128] {
        for dt in -1..=1 {
            cands.push(base + dt);
        }
    }
    let mut best_dist: Option<i128> = None;
    let mut best_sink: Option<i128> = None;
    for t in cands {
        if t < tlo || t > thi {
            continue;
        }
        let diff = d0 + sd * t;
        if diff == 0 {
            continue;
        }
        let (i, j) = (i0 + si * t, j0 + sj * t);
        let dist = diff.abs();
        let sink = i.max(j);
        best_dist = Some(best_dist.map_or(dist, |b| b.min(dist)));
        best_sink = Some(best_sink.map_or(sink, |b| b.min(sink)));
    }
    // The whole window collapsing onto i == j means no
    // cross-iteration pair exists.
    best_dist?;
    Some(PairDep {
        certainty: Certainty::Must,
        distance: best_dist.map(|d| d as usize),
        first_sink: best_sink.map(|s| s.max(il + 1) as usize),
    })
}

/// One endpoint of a conflicting reference pair (diagnostics).
#[derive(Clone, Debug)]
pub struct RefInfo {
    /// Source position of the reference.
    pub span: Span,
    /// Write vs read.
    pub is_write: bool,
    /// The reference as source text.
    pub text: String,
    /// Span of the guard this reference sits under, when any.
    pub guard: Option<Span>,
}

impl RefInfo {
    fn of(a: &AccessDesc) -> Self {
        RefInfo {
            span: a.span,
            is_write: a.is_write,
            text: a.text.clone(),
            guard: a.guard,
        }
    }
}

/// Evidence for (or against ruling out) a cross-iteration dependence
/// on one array.
#[derive(Clone, Debug)]
pub struct ConflictEvidence {
    /// One endpoint of the conflicting pair.
    pub src: RefInfo,
    /// The other endpoint.
    pub sink: RefInfo,
    /// Proven or merely possible.
    pub certainty: Certainty,
    /// Minimum dependence distance, when computable.
    pub distance: Option<usize>,
    /// Earliest possible sink iteration, when computable.
    pub first_sink: Option<usize>,
    /// The conflicting pair involves at least one guarded reference.
    pub guarded: bool,
}

/// Decide whether any two *different* iterations of `lo..hi` can touch
/// the same element of one array with a write involved. Pairwise over
/// the collected references — O(refs²), never O(iterations).
pub fn array_conflict(accesses: &[AccessDesc], lo: usize, hi: usize) -> Option<ConflictEvidence> {
    let n_iters = hi.saturating_sub(lo) as u64;
    let mut best: Option<ConflictEvidence> = None;
    let mut consider = |ev: ConflictEvidence| {
        let better = match &best {
            None => true,
            Some(b) => {
                let rank = |e: &ConflictEvidence| {
                    (
                        e.certainty == Certainty::May,
                        e.distance.unwrap_or(usize::MAX),
                    )
                };
                rank(&ev) < rank(b)
            }
        };
        if better {
            best = Some(ev);
        }
    };

    for (p, ap) in accesses.iter().enumerate() {
        for aq in &accesses[p..] {
            if !ap.is_write && !aq.is_write {
                continue;
            }
            let guarded = ap.guard.is_some() || aq.guard.is_some();
            let mut dep = if std::ptr::eq(ap, aq) {
                self_conflict(ap, lo, n_iters)
            } else {
                subscripts_conflict(ap.subscript, aq.subscript, lo, hi)
            };
            // A guard may never fire: the conflict is possible, not
            // proven — but its distance geometry still holds *if* it
            // fires, so keep it for scheduling hints.
            if let Some(d) = dep.as_mut() {
                if guarded {
                    d.certainty = Certainty::May;
                }
            }
            if let Some(d) = dep {
                consider(ConflictEvidence {
                    src: RefInfo::of(ap),
                    sink: RefInfo::of(aq),
                    certainty: d.certainty,
                    distance: d.distance,
                    first_sink: d.first_sink,
                    guarded,
                });
            }
        }
    }
    best
}

/// Can one access conflict with *itself* across iterations?
fn self_conflict(a: &AccessDesc, lo: usize, n_iters: u64) -> Option<PairDep> {
    if n_iters < 2 {
        return None;
    }
    match a.subscript {
        // a·i + b is injective in i for a != 0; constant subscripts
        // collide every iteration.
        Subscript::Affine { a: 0, .. } => Some(PairDep {
            certainty: Certainty::Must,
            distance: Some(1),
            first_sink: Some(lo + 1),
        }),
        Subscript::Affine { .. } => None,
        Subscript::Opaque { range } => {
            // Pigeonhole: n iterations into fewer than n slots must
            // repeat one — a proven conflict for an unguarded write.
            let must =
                a.is_write && a.guard.is_none() && range.is_some_and(|r| r.width() < n_iters);
            Some(PairDep {
                certainty: if must {
                    Certainty::Must
                } else {
                    Certainty::May
                },
                distance: None,
                first_sink: None,
            })
        }
    }
}

/// One proven uniform-distance cross-iteration dependence of a
/// DOACROSS plan: at every iteration `i ≥ lo + distance`, the `sink`
/// reference touches the element the `source` reference touched at
/// iteration `i - distance`.
#[derive(Clone, Debug)]
pub struct DoacrossDep {
    /// Array declaration index.
    pub array: usize,
    /// Uniform dependence distance, in iterations (`≥ 1`).
    pub distance: usize,
    /// The earlier-iteration endpoint.
    pub source: RefInfo,
    /// The later-iteration endpoint.
    pub sink: RefInfo,
}

/// Why a loop was demoted from DOACROSS to speculation.
#[derive(Clone, Debug)]
pub struct DoacrossBlock {
    /// Array declaration index of the blocking reference, when the
    /// block is attributable to one array.
    pub array: Option<usize>,
    /// The reference that forced speculation, when one.
    pub reference: Option<RefInfo>,
    /// Human-readable reason.
    pub reason: String,
}

/// Eligibility verdict of [`doacross_plan`].
#[derive(Clone, Debug)]
pub enum DoacrossVerdict {
    /// Every cross-iteration dependence is proven (`Must`) with a
    /// uniform distance: the loop can run DOACROSS under post/wait
    /// cells at those distances, with no speculation and no shadow.
    Eligible,
    /// No cross-iteration dependence exists at all — a doall. DOACROSS
    /// synchronization would be pure overhead; plain speculation never
    /// restarts on such a loop.
    Independent,
    /// At least one reference defeats the proof; the loop must
    /// speculate (R-LRPD).
    Blocked(DoacrossBlock),
}

/// The per-array distance-vector proof behind the hybrid DOACROSS
/// tier: either *every* cross-iteration dependence of the loop is a
/// `Must` at a uniform (iteration-independent) distance — in which
/// case the distance set is a complete synchronization recipe — or the
/// loop is demoted to speculation, with the demoting reference named.
///
/// The proof is deliberately all-or-nothing: one `May`, one opaque or
/// non-uniform subscript, one guarded conflicting pair, and the whole
/// loop speculates. A DOACROSS run performs direct (undo-less) writes,
/// so there is no partial-credit mode.
#[derive(Clone, Debug)]
pub struct DoacrossPlan {
    /// Eligibility verdict.
    pub verdict: DoacrossVerdict,
    /// The proven uniform-distance dependences (deduplicated per
    /// `(array, distance)`); non-empty iff the verdict is `Eligible`.
    pub deps: Vec<DoacrossDep>,
    /// Iteration count of the analyzed loop.
    pub n_iters: usize,
}

impl DoacrossPlan {
    /// Is the loop proven DOACROSS-runnable?
    pub fn eligible(&self) -> bool {
        matches!(self.verdict, DoacrossVerdict::Eligible)
    }

    /// Minimum proven distance (the pipeline-limiting one), when the
    /// plan has dependences.
    pub fn min_distance(&self) -> Option<usize> {
        self.deps.iter().map(|d| d.distance).min()
    }

    /// Proven distances, ascending and deduplicated.
    pub fn distances(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.deps.iter().map(|d| d.distance).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }

    /// Iterations that can be in flight concurrently on `p` processors:
    /// `min(d_min, p)` — iteration `i` may only overlap iterations
    /// within `d_min` of it, and no more than `p` run at once.
    pub fn pipeline_depth(&self, p: usize) -> usize {
        match self.min_distance() {
            Some(d) => d.min(p).max(1),
            None => p.max(1),
        }
    }
}

/// Is there a `break` anywhere in `body`? A premature exit under
/// DOACROSS would leave direct writes from in-flight later iterations
/// with nothing to undo them, so it demotes the loop to speculation.
fn body_has_break(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Break { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_has_break(then_body) || body_has_break(else_body),
        _ => false,
    })
}

/// Build the DOACROSS eligibility proof for loop `k` of `program`.
///
/// The ladder, in order: counter programs are blocked (they compile to
/// the EXTEND two-pass scheme, not a pipelineable body); loops with
/// fewer than two iterations are trivially independent; every
/// conflicting reference pair must be affine with *equal* strides
/// (uniform distance) and unguarded, or provably disjoint — anything
/// else blocks; reduction-classified arrays block (their lowered body
/// performs speculative reduction ops with no direct-mode equivalent);
/// a `break` blocks; and a loop whose surviving dependence set is
/// empty is `Independent`, not `Eligible`.
pub fn doacross_plan(program: &Program, k: usize) -> DoacrossPlan {
    let nest = &program.loops[k];
    let (lo, hi) = nest.range;
    let n_iters = hi.saturating_sub(lo);
    let blocked = |array: Option<usize>, reference: Option<RefInfo>, reason: String| DoacrossPlan {
        verdict: DoacrossVerdict::Blocked(DoacrossBlock {
            array,
            reference,
            reason,
        }),
        deps: Vec::new(),
        n_iters,
    };

    if program.counter.is_some() {
        return blocked(
            None,
            None,
            "program declares an induction counter (EXTEND scheme)".into(),
        );
    }
    if n_iters < 2 {
        return DoacrossPlan {
            verdict: DoacrossVerdict::Independent,
            deps: Vec::new(),
            n_iters,
        };
    }

    let refs = collect_refs(program, k);
    let mut deps: Vec<DoacrossDep> = Vec::new();
    for (array, ar) in refs.iter().enumerate() {
        // Reduction-classified arrays lower to speculative reduction
        // ops (no direct-mode execution path), so their presence in a
        // dependent loop blocks the plan outright.
        let hinted_reduction = matches!(program.arrays[array].hint, Some(KindHint::Reduction(_)));
        let mut ops = ar.updates.iter().map(|(op, _)| *op);
        let natural_reduction = !ar.updates.is_empty()
            && !ar.non_reduction_ref
            && ops.next().is_some_and(|first| ops.all(|op| op == first));
        if hinted_reduction || natural_reduction {
            let span = ar.updates.first().map(|(_, s)| *s).unwrap_or_default();
            return blocked(
                Some(array),
                ar.accesses.first().map(RefInfo::of),
                format!(
                    "'{}' is a reduction (line {}): reductions lower to speculative ops",
                    program.arrays[array].name, span.line
                ),
            );
        }

        for (p, ap) in ar.accesses.iter().enumerate() {
            for aq in &ar.accesses[p..] {
                if !ap.is_write && !aq.is_write {
                    continue;
                }
                let is_self = std::ptr::eq(ap, aq);
                match (ap.subscript, aq.subscript) {
                    (Subscript::Affine { a: a1, b: b1 }, Subscript::Affine { a: a2, b: b2 })
                        if a1 == a2 =>
                    {
                        // Uniform-distance candidate: i2 = i1 + t with
                        // t = (b1 - b2) / a fixed across iterations.
                        let t: i128 = if a1 == 0 {
                            if is_self || b1 == b2 {
                                1 // the same element, every iteration
                            } else {
                                continue; // distinct constants: disjoint
                            }
                        } else {
                            if is_self {
                                continue; // injective subscript: no self dep
                            }
                            let c = b1 as i128 - b2 as i128;
                            if c % a1 as i128 != 0 {
                                continue; // never the same element
                            }
                            c / a1 as i128
                        };
                        let d = t.unsigned_abs();
                        if d == 0 || d >= n_iters as u128 {
                            continue; // same-iteration touch or out of range
                        }
                        if ap.guard.is_some() || aq.guard.is_some() {
                            let r = if ap.guard.is_some() { ap } else { aq };
                            return blocked(
                                Some(array),
                                Some(RefInfo::of(r)),
                                format!(
                                    "'{}' (line {}) conflicts under a guard: the dependence may or may not fire",
                                    r.text, r.span.line
                                ),
                            );
                        }
                        let (source, sink) = if a1 == 0 {
                            // Same element every iteration: orient the
                            // write as the source.
                            if aq.is_write && !ap.is_write {
                                (RefInfo::of(aq), RefInfo::of(ap))
                            } else {
                                (RefInfo::of(ap), RefInfo::of(aq))
                            }
                        } else if t > 0 {
                            (RefInfo::of(ap), RefInfo::of(aq))
                        } else {
                            (RefInfo::of(aq), RefInfo::of(ap))
                        };
                        let distance = d as usize;
                        if !deps
                            .iter()
                            .any(|e| e.array == array && e.distance == distance)
                        {
                            deps.push(DoacrossDep {
                                array,
                                distance,
                                source,
                                sink,
                            });
                        }
                    }
                    _ => {
                        // Non-uniform or opaque geometry: only a proof
                        // of disjointness saves the plan.
                        let dep = if is_self {
                            self_conflict(ap, lo, n_iters as u64)
                        } else {
                            subscripts_conflict(ap.subscript, aq.subscript, lo, hi)
                        };
                        if dep.is_some() {
                            let opaque = matches!(ap.subscript, Subscript::Opaque { .. })
                                || matches!(aq.subscript, Subscript::Opaque { .. });
                            let r = if matches!(ap.subscript, Subscript::Opaque { .. }) {
                                ap
                            } else {
                                aq
                            };
                            return blocked(
                                Some(array),
                                Some(RefInfo::of(r)),
                                format!(
                                    "'{}' (line {}) {}",
                                    r.text,
                                    r.span.line,
                                    if opaque {
                                        "has an opaque subscript: no uniform distance can be proven"
                                    } else {
                                        "conflicts at a non-uniform distance (unequal strides)"
                                    }
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    if deps.is_empty() {
        return DoacrossPlan {
            verdict: DoacrossVerdict::Independent,
            deps,
            n_iters,
        };
    }
    if body_has_break(&nest.body) {
        return blocked(
            None,
            None,
            "loop has a premature exit: in-flight later iterations could not be undone".into(),
        );
    }
    DoacrossPlan {
        verdict: DoacrossVerdict::Eligible,
        deps,
        n_iters,
    }
}

/// Predicted marking footprint of one array in one loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TouchEstimate {
    /// Predicted number of distinct elements referenced.
    pub touched: usize,
    /// `touched / size` (0.0 for a zero-sized array).
    pub density: f64,
}

/// Estimate how many distinct elements of an array of `size` elements
/// the references touch over `lo..hi` — closed form per reference,
/// summed over distinct subscripts, capped at `size`.
pub fn touch_estimate(accesses: &[AccessDesc], lo: usize, hi: usize, size: usize) -> TouchEstimate {
    let n_iters = hi.saturating_sub(lo) as u64;
    let bounds = if size == 0 {
        None
    } else {
        Some(Interval::new(0, size as i64 - 1))
    };
    let mut seen: Vec<Subscript> = Vec::new();
    let mut touched: u64 = 0;
    for acc in accesses {
        if seen.contains(&acc.subscript) {
            continue;
        }
        seen.push(acc.subscript);
        let Some(bounds) = bounds else { continue };
        touched += match acc.subscript {
            Subscript::Affine { a: 0, b } => u64::from(bounds.lo <= b && b <= bounds.hi),
            Subscript::Affine { a, b } => {
                // Distinct values (injective): count the iterations
                // whose subscript lands inside the array.
                match t_interval(b as i128, a as i128, bounds.lo as i128, bounds.hi as i128) {
                    Some((tlo, thi)) => {
                        let lo = tlo.max(lo as i128);
                        let hi = thi.min(hi as i128 - 1);
                        (hi - lo + 1).max(0) as u64
                    }
                    None => 0,
                }
            }
            Subscript::Opaque { range } => match range.and_then(|r| r.intersect(&bounds)) {
                Some(r) => r.width().min(n_iters),
                None => n_iters.min(size as u64),
            },
        };
    }
    let touched = (touched.min(size as u64)) as usize;
    TouchEstimate {
        touched,
        density: if size == 0 {
            0.0
        } else {
            touched as f64 / size as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn refs_for(src: &str, array: usize) -> (ArrayRefs, usize, usize) {
        let p = parse(src).unwrap();
        let (lo, hi) = p.loops[0].range;
        (collect_refs(&p, 0).swap_remove(array), lo, hi)
    }

    fn aff(a: i64, b: i64) -> Subscript {
        Subscript::Affine { a, b }
    }

    #[test]
    fn interval_arithmetic_is_sound() {
        let a = Interval::new(-2, 3);
        let b = Interval::new(1, 4);
        assert_eq!(a.add(&b), Interval::new(-1, 7));
        assert_eq!(a.sub(&b), Interval::new(-6, 2));
        assert_eq!(a.mul(&b), Interval::new(-8, 12));
        assert_eq!(a.neg(), Interval::new(-3, 2));
        assert!(a.intersects(&b));
        assert!(!Interval::new(0, 1).intersects(&Interval::new(2, 3)));
        assert_eq!(Interval::new(0, 9).width(), 10);
    }

    #[test]
    fn modulo_in_range_stays_affine() {
        // i in 0..10, i % 31: range [0,9] ⊆ [0,30] -> identity.
        let (refs, ..) = refs_for("array A[40];\nfor i in 0..10 { A[i % 31] = i; }", 0);
        assert_eq!(refs.accesses[0].subscript, aff(1, 0));
    }

    #[test]
    fn modulo_out_of_range_gets_an_interval() {
        let (refs, ..) = refs_for("array A[10];\nfor i in 0..100 { A[i % 10] = i; }", 0);
        assert_eq!(
            refs.accesses[0].subscript,
            Subscript::Opaque {
                range: Some(Interval::new(0, 9))
            }
        );
    }

    #[test]
    fn affine_locals_and_scaling_propagate() {
        let (refs, ..) = refs_for(
            "array A[300];\nfor i in 0..100 { let j = 2 * i + 5; A[j - 1] = i; }",
            0,
        );
        assert_eq!(refs.accesses[0].subscript, aff(2, 4));
    }

    #[test]
    fn exact_division_stays_affine() {
        let (refs, ..) = refs_for("array A[100];\nfor i in 0..100 { A[4 * i / 2] = i; }", 0);
        assert_eq!(refs.accesses[0].subscript, aff(2, 0));
    }

    #[test]
    fn inexact_division_is_opaque() {
        let (refs, ..) = refs_for("array A[100];\nfor i in 0..100 { A[i / 2] = i; }", 0);
        assert!(matches!(
            refs.accesses[0].subscript,
            Subscript::Opaque { .. }
        ));
    }

    #[test]
    fn guards_are_recorded_on_accesses() {
        let (refs, ..) = refs_for(
            "array A[200];\nfor i in 0..100 { if i > 5 { A[i] = 1; } A[i + 100] = 2; }",
            0,
        );
        assert!(refs.accesses[0].guard.is_some());
        assert!(refs.accesses[1].guard.is_none());
    }

    #[test]
    fn gcd_test_rules_out_parity_disjoint_strides() {
        // 2i vs 2j+1: even vs odd, gcd(2,2)=2 does not divide 1.
        assert_eq!(subscripts_conflict(aff(2, 0), aff(2, 1), 0, 1000), None);
    }

    #[test]
    fn equal_stride_distance_is_exact() {
        // A[i] vs A[i-3]: distance 3, first sink at lo+3.
        let d = subscripts_conflict(aff(1, 0), aff(1, -3), 5, 100).unwrap();
        assert_eq!(d.certainty, Certainty::Must);
        assert_eq!(d.distance, Some(3));
        assert_eq!(d.first_sink, Some(8));
    }

    #[test]
    fn constant_subscript_conflicts_at_distance_one() {
        let d = subscripts_conflict(aff(0, 7), aff(0, 7), 0, 10).unwrap();
        assert_eq!((d.certainty, d.distance), (Certainty::Must, Some(1)));
        assert_eq!(subscripts_conflict(aff(0, 7), aff(0, 8), 0, 10), None);
    }

    #[test]
    fn constant_vs_affine_finds_the_crossing() {
        // A[20] vs A[2j]: j = 10 is in range -> conflict.
        let d = subscripts_conflict(aff(0, 20), aff(2, 0), 0, 50).unwrap();
        assert_eq!(d.certainty, Certainty::Must);
        assert_eq!(d.first_sink, Some(10));
        // Crossing out of range -> none.
        assert_eq!(subscripts_conflict(aff(0, 200), aff(2, 0), 0, 50), None);
        // Non-integral crossing -> none.
        assert_eq!(subscripts_conflict(aff(0, 21), aff(2, 0), 0, 50), None);
    }

    #[test]
    fn general_diophantine_case_is_exact() {
        // 2i = 3j + 1: (i,j) = (2,1), (5,3), (8,5)… min |i-j| = 1 at
        // (2,1); first sink max(2,1) = 2.
        let d = subscripts_conflict(aff(2, 0), aff(3, 1), 0, 100).unwrap();
        assert_eq!(d.certainty, Certainty::Must);
        assert_eq!(d.distance, Some(1));
        assert_eq!(d.first_sink, Some(2));
    }

    #[test]
    fn banerjee_bounds_rule_out_distant_crossings() {
        // 10i = j + 500 needs i >= 50 or j >= ... out of 0..20 bounds.
        assert_eq!(subscripts_conflict(aff(10, 0), aff(1, 500), 0, 20), None);
    }

    #[test]
    fn same_iteration_touch_is_not_a_dependence() {
        // i and i: diff always 0.
        assert_eq!(subscripts_conflict(aff(1, 0), aff(1, 0), 0, 100), None);
        // 2i vs i: equal only at i = j = 0, the single valid t.
        assert_eq!(subscripts_conflict(aff(2, 0), aff(1, 0), 0, 1), None);
    }

    #[test]
    fn huge_ranges_classify_in_constant_time() {
        // Would hang an enumerator; the symbolic test is O(1).
        let n = 1_000_000_000_000_000;
        let d = subscripts_conflict(aff(1, 0), aff(1, -1), 0, n).unwrap();
        assert_eq!(d.distance, Some(1));
        assert_eq!(subscripts_conflict(aff(2, 0), aff(2, 1), 0, n), None);
    }

    #[test]
    fn disjoint_value_ranges_prove_independence() {
        let lo_half = Subscript::Opaque {
            range: Some(Interval::new(0, 9)),
        };
        let hi_half = Subscript::Opaque {
            range: Some(Interval::new(10, 19)),
        };
        assert_eq!(subscripts_conflict(lo_half, hi_half, 0, 100), None);
        assert!(subscripts_conflict(lo_half, lo_half, 0, 100).is_some());
    }

    #[test]
    fn pigeonhole_makes_narrow_opaque_writes_a_must_conflict() {
        let (refs, lo, hi) = refs_for("array A[10];\nfor i in 0..100 { A[i % 10] = i; }", 0);
        let ev = array_conflict(&refs.accesses, lo, hi).unwrap();
        assert_eq!(ev.certainty, Certainty::Must, "100 writes into 10 slots");
    }

    #[test]
    fn guards_demote_must_to_may() {
        let (refs, lo, hi) = refs_for(
            "array A[200];\nfor i in 0..100 { if i > 5 { A[i + 5] = 1; } A[i] = A[i] + 1; }",
            0,
        );
        let ev = array_conflict(&refs.accesses, lo, hi).unwrap();
        assert_eq!(ev.certainty, Certainty::May);
        assert!(ev.guarded);
        assert_eq!(ev.distance, Some(5), "the geometry still holds if it fires");
    }

    #[test]
    fn conflict_evidence_carries_spans_and_text() {
        let (refs, lo, hi) = refs_for("array A[101];\nfor i in 1..100 { A[i] = A[i - 1] + 1; }", 0);
        let ev = array_conflict(&refs.accesses, lo, hi).unwrap();
        assert_eq!(ev.distance, Some(1));
        assert!(ev.src.span.line > 0 && ev.sink.span.line > 0);
        assert!(
            ev.src.text.contains('A') && ev.sink.text.contains('A'),
            "{ev:?}"
        );
    }

    fn plan_for(src: &str) -> DoacrossPlan {
        doacross_plan(&parse(src).unwrap(), 0)
    }

    #[test]
    fn uniform_distance_loop_is_eligible() {
        let plan = plan_for("array A[200];\nfor i in 3..100 { A[i] = A[i - 3] + 1; }");
        assert!(plan.eligible(), "{:?}", plan.verdict);
        assert_eq!(plan.min_distance(), Some(3));
        assert_eq!(plan.distances(), vec![3]);
        assert_eq!(plan.pipeline_depth(8), 3);
        assert_eq!(plan.pipeline_depth(2), 2);
        let dep = &plan.deps[0];
        assert!(dep.source.is_write && !dep.sink.is_write);
    }

    #[test]
    fn multiple_distances_collect_into_one_plan() {
        let plan = plan_for("array A[300];\nfor i in 8..100 { A[i] = A[i - 2] + A[i - 8]; }");
        assert!(plan.eligible());
        assert_eq!(plan.distances(), vec![2, 8]);
        assert_eq!(plan.min_distance(), Some(2));
    }

    #[test]
    fn independent_loop_is_not_eligible() {
        let plan = plan_for("array A[100];\narray B[100];\nfor i in 0..100 { A[i] = B[i] * 2; }");
        assert!(matches!(plan.verdict, DoacrossVerdict::Independent));
        assert!(plan.deps.is_empty());
    }

    #[test]
    fn guarded_conflict_blocks() {
        let plan = plan_for(
            "array A[200];\nfor i in 0..100 { if i > 5 { A[i] = A[i] + 1; } A[i + 5] = 2; }",
        );
        match plan.verdict {
            DoacrossVerdict::Blocked(b) => {
                assert!(b.reason.contains("guard"), "{}", b.reason);
                assert_eq!(b.array, Some(0));
                assert!(b.reference.is_some());
            }
            v => panic!("expected Blocked, got {v:?}"),
        }
    }

    #[test]
    fn opaque_subscript_blocks() {
        let plan = plan_for("array A[10];\nfor i in 0..100 { A[i % 10] = A[i % 10] + 1; }");
        match plan.verdict {
            DoacrossVerdict::Blocked(b) => assert!(b.reason.contains("opaque"), "{}", b.reason),
            v => panic!("expected Blocked, got {v:?}"),
        }
    }

    #[test]
    fn unequal_strides_block_as_non_uniform() {
        let plan = plan_for("array A[300];\nfor i in 0..100 { A[2 * i] = A[3 * i + 1] + 1; }");
        match plan.verdict {
            DoacrossVerdict::Blocked(b) => {
                assert!(b.reason.contains("non-uniform"), "{}", b.reason)
            }
            v => panic!("expected Blocked, got {v:?}"),
        }
    }

    #[test]
    fn disjoint_unequal_strides_stay_independent() {
        // 2i vs 2i' + 201 over 0..100: ranges [0,198] vs [201,399].
        let plan = plan_for("array A[400];\nfor i in 0..100 { A[2 * i] = A[2 * i + 201] + 1; }");
        assert!(matches!(plan.verdict, DoacrossVerdict::Independent));
    }

    #[test]
    fn reductions_and_breaks_and_counters_block() {
        let plan = plan_for("array S[4];\nfor i in 1..100 { S[0] += i; }");
        assert!(
            matches!(&plan.verdict, DoacrossVerdict::Blocked(b) if b.reason.contains("reduction"))
        );

        let plan =
            plan_for("array A[200];\nfor i in 1..100 { A[i] = A[i - 1] + 1; break if A[i] > 50; }");
        assert!(matches!(&plan.verdict, DoacrossVerdict::Blocked(b) if b.reason.contains("exit")));

        let plan =
            plan_for("array A[200];\ncounter c = 0;\nfor i in 1..100 { if A[i] > 0 { bump c; } }");
        assert!(
            matches!(&plan.verdict, DoacrossVerdict::Blocked(b) if b.reason.contains("counter"))
        );
    }

    #[test]
    fn constant_subscript_write_serializes_at_distance_one() {
        let plan = plan_for("array A[10];\narray B[100];\nfor i in 0..100 { A[3] = B[i]; }");
        assert!(plan.eligible(), "{:?}", plan.verdict);
        assert_eq!(plan.min_distance(), Some(1));
    }

    #[test]
    fn tiny_loops_are_independent() {
        let plan = plan_for("array A[10];\nfor i in 0..1 { A[i] = A[i] + 1; }");
        assert!(matches!(plan.verdict, DoacrossVerdict::Independent));
    }

    #[test]
    fn touch_estimates_are_closed_form() {
        // A[i] over 0..100 into size 1000: 100 touched.
        let (refs, lo, hi) = refs_for("array A[1000];\nfor i in 0..100 { A[i] = i; }", 0);
        let t = touch_estimate(&refs.accesses, lo, hi, 1000);
        assert_eq!(t.touched, 100);
        assert!((t.density - 0.1).abs() < 1e-12);

        // A[i % 16] over 0..100 into size 1000: 16 touched.
        let (refs, lo, hi) = refs_for("array A[1000];\nfor i in 0..100 { A[i % 16] += i; }", 0);
        let t = touch_estimate(&refs.accesses, lo, hi, 1000);
        assert_eq!(t.touched, 16);

        // Constant subscript: 1 touched.
        let (refs, lo, hi) = refs_for("array A[1000];\nfor i in 0..100 { A[7] = i; }", 0);
        assert_eq!(touch_estimate(&refs.accesses, lo, hi, 1000).touched, 1);

        // Unknown indirection: capped at min(n, size).
        let (refs, lo, hi) = refs_for(
            "array A[50];\narray IDX[100];\nfor i in 0..100 { A[IDX[i]] = i; }",
            0,
        );
        assert_eq!(touch_estimate(&refs.accesses, lo, hi, 50).touched, 50);
    }
}
