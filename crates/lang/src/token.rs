//! Lexer for the mini loop language.

use crate::error::LangError;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// `(`, `)`, `{`, `}`, `[`, `]`, `;`, `,`, `:`.
    Punct(char),
    /// Operators: `+ - * / % = += *= == != < <= > >= && || ! ..`.
    Op(&'static str),
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Punct(c) => write!(f, "'{c}'"),
            Tok::Op(o) => write!(f, "'{o}'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenize `src`, stripping `#` line comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($kind:expr, $c:expr) => {
            out.push(Token {
                kind: $kind,
                line,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start_col = col;
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | ':' => {
                push!(Tok::Punct(c), start_col);
                i += 1;
                col += 1;
            }
            '0'..='9' => {
                let s = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.' && {
                            // Don't swallow the range operator `..` or a
                            // second decimal point.
                            !(src[s..i].contains('.')
                                || i + 1 < bytes.len() && bytes[i + 1] == b'.')
                        })
                {
                    i += 1;
                    col += 1;
                }
                let text = &src[s..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| LangError::at(line, start_col, format!("bad number '{text}'")))?;
                push!(Tok::Num(n), start_col);
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                push!(Tok::Ident(src[s..i].to_string()), start_col);
            }
            _ => {
                // Multi-char operators first.
                let rest = &src[i..];
                let two = ["+=", "*=", "==", "!=", "<=", ">=", "&&", "||", ".."];
                if let Some(op) = two.iter().find(|op| rest.starts_with(**op)) {
                    push!(Tok::Op(op), start_col);
                    i += 2;
                    col += 2;
                } else if "+-*/%=<>!".contains(c) {
                    let op = match c {
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '%' => "%",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        _ => "!",
                    };
                    push!(Tok::Op(op), start_col);
                    i += 1;
                    col += 1;
                } else {
                    return Err(LangError::at(
                        line,
                        start_col,
                        format!("unexpected character '{c}'"),
                    ));
                }
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_statement() {
        let toks = kinds("A[i] = B[i] + 2.5;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("A".into()),
                Tok::Punct('['),
                Tok::Ident("i".into()),
                Tok::Punct(']'),
                Tok::Op("="),
                Tok::Ident("B".into()),
                Tok::Punct('['),
                Tok::Ident("i".into()),
                Tok::Punct(']'),
                Tok::Op("+"),
                Tok::Num(2.5),
                Tok::Punct(';'),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn range_dots_are_not_a_decimal_point() {
        let toks = kinds("0..100");
        assert_eq!(
            toks,
            vec![Tok::Num(0.0), Tok::Op(".."), Tok::Num(100.0), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_stripped() {
        let toks = kinds("a # the rest vanishes\nb");
        assert_eq!(
            toks,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn compound_ops_lex_greedily() {
        let toks = kinds("a += b && c <= d");
        assert!(toks.contains(&Tok::Op("+=")));
        assert!(toks.contains(&Tok::Op("&&")));
        assert!(toks.contains(&Tok::Op("<=")));
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
    }
}
