//! The `.rlp` lint pass — "clippy for speculative loops".
//!
//! Consumes the structured verdicts of [`crate::analyze`] and turns
//! them into leveled, span-carrying diagnostics:
//!
//! * **errors** — the program asserts something the analysis refutes
//!   (an `untested` hint on an array with a proven cross-iteration
//!   dependence would make speculative runs silently wrong);
//! * **warnings** — the loop is speculation-hostile in a way the
//!   programmer could fix (a guard alone forcing the LRPD test, mixed
//!   reduction operators, data-dependent subscripts);
//! * **notes** — what the pass decided and what to expect at run time
//!   (detected reductions, predicted shadow structure, the
//!   `⌈n/(p·d)⌉`-stage schedule implied by a dependence distance).
//!
//! Driven by the `rlrpd analyze` CLI subcommand.

use crate::analyze::{classify_program, Class, Classification};
use crate::ast::{Program, Span, UpdateOp};
use crate::depend::{doacross_plan, Certainty, DoacrossVerdict};

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational: what the pass decided.
    Note,
    /// The loop is speculation-hostile but correct.
    Warning,
    /// The program asserts something the analysis refutes.
    Error,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warning => "warning",
            Level::Note => "note",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity.
    pub level: Level,
    /// Stable kebab-case lint name (e.g. `guard-forced-test`).
    pub code: &'static str,
    /// Source position the finding points at (line 0 = whole program).
    pub span: Span,
    /// Which loop the finding concerns.
    pub loop_index: usize,
    /// Which array the finding concerns, when one.
    pub array: Option<String>,
    /// Statically computed dependence distance backing the finding,
    /// when the geometry is known — carried even for `May` evidence
    /// (a guarded conflict has an exact distance *if* it fires).
    pub distance: Option<usize>,
    /// The finding involves a guarded (conditional) reference, so any
    /// reported distance is contingent on the guard firing.
    pub guarded: bool,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.level, self.code, self.message)?;
        if self.span.line > 0 {
            write!(f, "\n  --> {}", self.span)?;
        }
        Ok(())
    }
}

/// Lint every loop of `program` assuming `p` processors (the schedule
/// estimates need `p`). Classifies internally; use [`lint_classified`]
/// to reuse existing classifications.
pub fn lint(program: &Program, p: usize) -> Vec<Diagnostic> {
    lint_classified(program, &classify_program(program), p)
}

/// Lint with precomputed classifications (`classes[loop][array]`).
pub fn lint_classified(
    program: &Program,
    classes: &[Vec<Classification>],
    p: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (k, loop_classes) in classes.iter().enumerate() {
        let (lo, hi) = program.loops[k].range;
        let n = hi.saturating_sub(lo);

        // Fully elided loops deserve saying so: no array needs the
        // LRPD test, so the loop runs as a single parallel doall.
        if loop_classes
            .iter()
            .all(|c| matches!(c.class, Class::Untested))
        {
            out.push(Diagnostic {
                level: Level::Note,
                code: "loop-parallel",
                span: program.loops[k].span,
                loop_index: k,
                array: None,
                distance: None,
                guarded: false,
                message: format!(
                    "loop {k} needs no LRPD instrumentation: every array is statically \
                     safe, so all shadows are elided and the loop runs as one parallel \
                     stage"
                ),
            });
        }

        // DOACROSS verdict: can proven uniform distances replace the
        // speculation entirely?
        let plan = doacross_plan(program, k);
        match &plan.verdict {
            DoacrossVerdict::Eligible => {
                let dmin = plan.min_distance().unwrap_or(1);
                let depth = plan.pipeline_depth(p);
                let distances = plan.distances();
                out.push(Diagnostic {
                    level: Level::Note,
                    code: "doacross-eligible",
                    span: program.loops[k].span,
                    loop_index: k,
                    array: None,
                    distance: Some(dmin),
                    guarded: false,
                    message: format!(
                        "loop {k} is DOACROSS-eligible: every cross-iteration dependence \
                         is proven at uniform distance{} {distances:?}; post/wait cells \
                         give pipeline depth min(d, p) = min({dmin}, {p}) = {depth} with \
                         no shadow memory and no restarts",
                        if distances.len() == 1 { "" } else { "s" },
                    ),
                });
            }
            DoacrossVerdict::Blocked(b) => {
                let span = b
                    .reference
                    .as_ref()
                    .map(|r| r.span)
                    .unwrap_or(program.loops[k].span);
                out.push(Diagnostic {
                    level: Level::Note,
                    code: "doacross-blocked",
                    span,
                    loop_index: k,
                    array: b.array.map(|id| program.arrays[id].name.clone()),
                    distance: None,
                    guarded: b.reference.as_ref().is_some_and(|r| r.guard.is_some()),
                    message: format!(
                        "loop {k} cannot run DOACROSS and will speculate: {}",
                        b.reason
                    ),
                });
            }
            // A doall: the loop-parallel / per-array notes already say
            // everything DOACROSS synchronization could add (nothing).
            DoacrossVerdict::Independent => {}
        }
        for (id, c) in loop_classes.iter().enumerate() {
            let decl = &program.arrays[id];
            let mut d = |level, code, span, message, distance: Option<usize>, guarded: bool| {
                out.push(Diagnostic {
                    level,
                    code,
                    span,
                    loop_index: k,
                    array: Some(decl.name.clone()),
                    distance,
                    guarded,
                    message,
                });
            };
            let decl_span = Span::at(decl.line, 1);
            let name = &decl.name;

            if let Some(u) = &c.unhinted {
                lint_hint(c, u, name, decl_span, &mut d);
            } else {
                match c.class {
                    Class::Tested => {
                        if let Some((a, b)) = c.mixed_ops {
                            d(
                                Level::Warning,
                                "mixed-reduction-ops",
                                b,
                                format!(
                                    "array '{name}' mixes reduction operators at {a} and {b}; \
                                     a single operator throughout would make it a parallel \
                                     reduction"
                                ),
                                None,
                                false,
                            );
                        } else if let Some(g) = c.guard_only {
                            d(
                                Level::Warning,
                                "guard-forced-test",
                                g,
                                format!(
                                    "array '{name}' is Tested only because of the guard at \
                                     {g}; without the conditional references it is provably \
                                     iteration-disjoint"
                                ),
                                None,
                                true,
                            );
                        } else if let Some(ev) = &c.evidence {
                            match ev.certainty {
                                Certainty::Must => d(
                                    Level::Warning,
                                    "cross-iteration-dependence",
                                    ev.sink.span,
                                    format!(
                                        "array '{name}' has a proven cross-iteration \
                                         dependence between {} ({}) and {} ({}){}",
                                        ev.src.text,
                                        ev.src.span,
                                        ev.sink.text,
                                        ev.sink.span,
                                        match ev.distance {
                                            Some(dist) => format!(", minimum distance {dist}"),
                                            None => String::new(),
                                        }
                                    ),
                                    ev.distance,
                                    ev.guarded,
                                ),
                                Certainty::May => d(
                                    Level::Warning,
                                    "data-dependent-subscript",
                                    ev.src.span,
                                    match ev.distance {
                                        // A guarded conflict with known
                                        // geometry: the distance holds
                                        // *if* the guard fires.
                                        Some(dist) => format!(
                                            "array '{name}' may conflict across iterations: \
                                             {} vs {} sits at distance {dist} but only under \
                                             a guard, so the LRPD test must instrument every \
                                             reference",
                                            ev.src.text, ev.sink.text
                                        ),
                                        None => format!(
                                            "array '{name}' may conflict across iterations: \
                                             {} vs {} cannot be analyzed statically, so the LRPD \
                                             test must instrument every reference",
                                            ev.src.text, ev.sink.text
                                        ),
                                    },
                                    ev.distance,
                                    ev.guarded,
                                ),
                            }
                        }
                    }
                    Class::Reduction(op) => d(
                        Level::Note,
                        "reduction-detected",
                        decl_span,
                        format!(
                            "array '{name}' is a speculative '{}' reduction (validated at \
                             run time, folded in parallel)",
                            op_str(op)
                        ),
                        None,
                        false,
                    ),
                    Class::Untested => {
                        if c.touch.is_none() {
                            d(
                                Level::Note,
                                "unused-array",
                                decl_span,
                                format!("array '{name}' is never referenced by loop {k}"),
                                None,
                                false,
                            );
                        }
                    }
                }
            }

            // Schedule prediction: a proven minimum distance bounds how
            // fast the recursive R-LRPD run can converge.
            if let Some(ev) = &c.evidence {
                if let (Certainty::Must, Some(dist)) = (ev.certainty, ev.distance) {
                    if dist > 0 && p > 0 && n > 0 {
                        let stages = n.div_ceil(p * dist).max(1);
                        d(
                            Level::Note,
                            "schedule-estimate",
                            ev.sink.span,
                            format!(
                                "minimum dependence distance {dist} on '{name}' ⇒ expect \
                                 ≈⌈n/(p·d)⌉ = ⌈{n}/({p}·{dist})⌉ = {stages}-stage R-LRPD \
                                 schedule at p = {p}"
                            ),
                            Some(dist),
                            ev.guarded,
                        );
                    }
                }
            }

            // Shadow prediction for instrumented arrays.
            if !matches!(c.class, Class::Untested) {
                if let Some(t) = c.touch {
                    d(
                        Level::Note,
                        "shadow-selection",
                        decl_span,
                        format!(
                            "array '{name}': predicted touch density {:.1}% ({} of {} \
                             elements) selects a {} shadow",
                            t.density * 100.0,
                            t.touched,
                            decl.size,
                            rlrpd_shadow::select::choose(decl.size, t.touched, None).describe(),
                        ),
                        None,
                        false,
                    );
                }
            }
        }
    }
    out.sort_by_key(|d| (d.loop_index, std::cmp::Reverse(d.level), d.span.line));
    out
}

/// Lints for hinted declarations: compare the hint against what the
/// analysis alone concludes.
fn lint_hint(
    c: &Classification,
    u: &Classification,
    name: &str,
    decl_span: Span,
    d: &mut impl FnMut(Level, &'static str, Span, String, Option<usize>, bool),
) {
    match (c.class, u.class) {
        (Class::Untested, Class::Tested) => {
            if let Some(ev) = u
                .evidence
                .as_ref()
                .filter(|e| e.certainty == Certainty::Must)
            {
                d(
                    Level::Error,
                    "unsound-hint",
                    ev.sink.span,
                    format!(
                        "array '{name}' is declared 'untested' but two iterations provably \
                         touch the same element: {} ({}) vs {} ({}){}; speculative runs \
                         would commit wrong values without the LRPD test",
                        ev.src.text,
                        ev.src.span,
                        ev.sink.text,
                        ev.sink.span,
                        match ev.distance {
                            Some(dist) => format!(", distance {dist}"),
                            None => String::new(),
                        }
                    ),
                    ev.distance,
                    ev.guarded,
                );
            } else {
                d(
                    Level::Warning,
                    "unverifiable-hint",
                    decl_span,
                    format!(
                        "array '{name}' is declared 'untested' but the analysis cannot \
                         prove it iteration-disjoint ({})",
                        u.rationale
                    ),
                    None,
                    false,
                );
            }
        }
        (Class::Tested, Class::Untested) => d(
            Level::Warning,
            "redundant-test-hint",
            decl_span,
            format!(
                "array '{name}' is declared 'tested' but provably iteration-disjoint; \
                 dropping the hint elides its shadow and marking entirely"
            ),
            None,
            false,
        ),
        (Class::Reduction(op), other) if !matches!(other, Class::Reduction(_)) => d(
            Level::Warning,
            "unverifiable-hint",
            decl_span,
            format!(
                "array '{name}' is declared 'reduction({})' but its references do not \
                 all match the 'x {}= expr' pattern ({})",
                op_str(op),
                op_str(op),
                u.rationale
            ),
            None,
            false,
        ),
        _ => {}
    }
}

fn op_str(op: UpdateOp) -> &'static str {
    match op {
        UpdateOp::Add => "+",
        UpdateOp::Mul => "*",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn lints(src: &str) -> Vec<Diagnostic> {
        lint(&parse(src).unwrap(), 4)
    }

    fn find<'d>(ds: &'d [Diagnostic], code: &str) -> &'d Diagnostic {
        ds.iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("no '{code}' in {ds:#?}"))
    }

    #[test]
    fn unsound_untested_hint_is_an_error() {
        let ds = lints("array A[101] : untested;\nfor i in 1..100 { A[i] = A[i - 1] + 1; }");
        let d = find(&ds, "unsound-hint");
        assert_eq!(d.level, Level::Error);
        assert_eq!(d.span.line, 2, "points at the conflicting reference");
        assert!(d.message.contains("distance 1"), "{}", d.message);
    }

    #[test]
    fn redundant_tested_hint_warns() {
        let ds = lints("array A[100] : tested;\nfor i in 0..100 { A[i] = i; }");
        let d = find(&ds, "redundant-test-hint");
        assert_eq!(d.level, Level::Warning);
        assert_eq!(d.span.line, 1, "points at the declaration");
    }

    #[test]
    fn guard_forced_test_points_at_the_guard() {
        let ds = lints(
            "array A[110];\nfor i in 0..100 { if i % 7 == 0 { A[i + 5] = 1; } A[i] = A[i] + 1; }",
        );
        let d = find(&ds, "guard-forced-test");
        assert_eq!(d.level, Level::Warning);
        assert_eq!(d.span.line, 2);
    }

    #[test]
    fn mixed_reduction_ops_warns_with_both_spans() {
        let ds = lints("array Y[10];\nfor i in 0..10 {\n  Y[0] += 1;\n  Y[1] *= 2;\n}");
        let d = find(&ds, "mixed-reduction-ops");
        assert!(
            d.message.contains("3:") && d.message.contains("4:"),
            "{}",
            d.message
        );
    }

    #[test]
    fn schedule_estimate_uses_distance_and_p() {
        // n = 92, d = 8, p = 4 -> ceil(92 / 32) = 3 stages.
        let ds = lints("array A[200];\nfor i in 8..100 { A[i] = A[i - 8] + 1; }");
        let d = find(&ds, "schedule-estimate");
        assert_eq!(d.level, Level::Note);
        assert!(d.message.contains("3-stage"), "{}", d.message);
    }

    #[test]
    fn clean_programs_lint_clean_modulo_notes() {
        let ds = lints("array A[100];\nfor i in 0..100 { A[i] = i; }");
        assert!(
            ds.iter().all(|d| d.level == Level::Note),
            "only notes: {ds:#?}"
        );
    }

    #[test]
    fn reduction_and_shadow_notes_fire() {
        let ds = lints("array Y[1000];\nfor i in 0..100 { Y[i % 16] += 1; }");
        assert_eq!(find(&ds, "reduction-detected").level, Level::Note);
        let s = find(&ds, "shadow-selection");
        assert!(s.message.contains("16 of 1000"), "{}", s.message);
    }

    #[test]
    fn unused_arrays_get_a_note() {
        let ds = lints("array A[8];\narray B[8];\nfor i in 0..8 { A[i] = i; }");
        let d = find(&ds, "unused-array");
        assert_eq!(d.array.as_deref(), Some("B"));
    }

    #[test]
    fn doacross_eligible_carries_distance_and_depth() {
        let ds = lints("array A[200];\nfor i in 8..100 { A[i] = A[i - 8] + 1; }");
        let d = find(&ds, "doacross-eligible");
        assert_eq!(d.level, Level::Note);
        assert_eq!(d.distance, Some(8));
        assert!(!d.guarded);
        // p = 4 < d = 8, so the projected pipeline depth is p.
        assert!(d.message.contains("min(8, 4) = 4"), "{}", d.message);
    }

    #[test]
    fn doacross_blocked_names_the_blocking_reference() {
        // The guarded write defeats the proof even though its geometry
        // is a clean distance-5 conflict.
        let ds = lints(
            "array A[110];\nfor i in 0..100 { if i % 2 == 0 { A[i + 5] = 1; } A[i] = A[i] + 2; }",
        );
        let d = find(&ds, "doacross-blocked");
        assert_eq!(d.level, Level::Note);
        assert_eq!(d.array.as_deref(), Some("A"));
        assert!(d.guarded, "the blocking reference sits under a guard");
        assert!(
            d.message.contains("A[(i + 5)]") && d.message.contains("guard"),
            "{}",
            d.message
        );
    }

    #[test]
    fn doacross_blocked_on_opaque_subscripts() {
        let ds = lints("array A[600];\nfor i in 0..512 { A[(i * 11) % 512] = A[i] + 1; }");
        let d = find(&ds, "doacross-blocked");
        assert!(d.message.contains("opaque"), "{}", d.message);
    }

    #[test]
    fn independent_loops_get_neither_doacross_code() {
        let ds = lints("array A[100];\nfor i in 0..100 { A[i] = i; }");
        assert!(
            !ds.iter().any(|d| d.code.starts_with("doacross-")),
            "doalls say loop-parallel, not doacross-*: {ds:#?}"
        );
        find(&ds, "loop-parallel");
    }

    #[test]
    fn guarded_may_evidence_carries_distance() {
        // Satellite fix: a guarded conflict with known geometry must
        // surface the distance (with guarded = true), not drop it. The
        // unguarded opaque write keeps the array Tested even without
        // the guard (so no guard-forced-test), and among the May
        // candidates the guarded distance-5 pair ranks first because
        // its geometry is known.
        let ds = lints(
            "array A[200];\nfor i in 0..100 { if i % 2 == 0 { A[i + 5] = 1; } A[(i * 3) % 150] = A[i] + 1; }",
        );
        let d = find(&ds, "data-dependent-subscript");
        assert_eq!(d.distance, Some(5), "geometry known despite May: {d:#?}");
        assert!(d.guarded);
        assert!(d.message.contains("distance 5"), "{}", d.message);
    }

    #[test]
    fn every_example_program_gets_a_doacross_verdict() {
        // Every shipped .rlp must produce, per loop, exactly one of:
        // doacross-eligible, doacross-blocked, or (for doalls) neither
        // plus a loop-parallel-compatible analysis — and the β deck
        // must be the one that is eligible.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/programs");
        let mut saw_eligible = false;
        let mut saw_blocked = false;
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("rlp") {
                continue;
            }
            let src = std::fs::read_to_string(&path).unwrap();
            let program = parse(&src).unwrap();
            let ds = lint(&program, 4);
            for k in 0..program.loops.len() {
                let eligible = ds
                    .iter()
                    .filter(|d| d.loop_index == k && d.code == "doacross-eligible")
                    .count();
                let blocked = ds
                    .iter()
                    .filter(|d| d.loop_index == k && d.code == "doacross-blocked")
                    .count();
                assert!(
                    eligible + blocked <= 1,
                    "{}: loop {k} got contradictory doacross verdicts",
                    path.display()
                );
                saw_eligible |= eligible == 1;
                saw_blocked |= blocked == 1;
                if eligible == 1 {
                    let d = ds
                        .iter()
                        .find(|d| d.loop_index == k && d.code == "doacross-eligible")
                        .unwrap();
                    assert!(
                        d.distance.is_some(),
                        "{}: eligible without distance",
                        path.display()
                    );
                }
            }
        }
        assert!(
            saw_eligible,
            "the β deck (beta_pipeline.rlp) must be eligible"
        );
        assert!(saw_blocked, "TRACK/NLFILT-style examples must be blocked");
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let ds = lints("array A[101] : untested;\nfor i in 1..100 { A[i] = A[i - 1] + 1; }");
        let text = format!("{}", find(&ds, "unsound-hint"));
        assert!(text.starts_with("error[unsound-hint]:"), "{text}");
        assert!(text.contains("--> 2:"), "{text}");
    }
}
