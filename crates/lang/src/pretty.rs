//! Pretty-printer: render a parsed [`Program`] back to source.
//!
//! Used for tooling (dumping what the pass actually understood) and as
//! the round-trip oracle of the parser property tests:
//! `parse(print(p)) == p` for every parseable program.

use crate::ast::*;
use std::fmt::Write;

/// Render `program` as parseable source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for d in &program.arrays {
        let _ = write!(out, "array {}[{}]", d.name, d.size);
        if d.init != 0.0 {
            let _ = write!(out, " = {}", num(d.init));
        }
        if let Some(hint) = d.hint {
            let _ = write!(
                out,
                " : {}",
                match hint {
                    KindHint::Tested => "tested".to_string(),
                    KindHint::Untested => "untested".to_string(),
                    KindHint::Reduction(UpdateOp::Add) => "reduction(+)".to_string(),
                    KindHint::Reduction(UpdateOp::Mul) => "reduction(*)".to_string(),
                }
            );
        }
        out.push_str(";\n");
    }
    if let Some((name, init)) = &program.counter {
        let _ = writeln!(out, "counter {name} = {init};");
    }
    for nest in &program.loops {
        if nest.cost != 1.0 {
            let _ = writeln!(out, "cost {};", num(nest.cost));
        }
        let _ = writeln!(
            out,
            "for {} in {}..{} {{",
            nest.loop_var, nest.range.0, nest.range.1
        );
        let names = Names {
            program,
            loop_var: &nest.loop_var,
        };
        for s in &nest.body {
            stmt(&mut out, s, &names, 1);
        }
        out.push_str("}\n");
    }
    out
}

struct Names<'a> {
    program: &'a Program,
    loop_var: &'a str,
}

/// Render one array reference as source text (dependence diagnostics):
/// `NAME[(subscript)]`, in the printer's fully parenthesized form.
pub(crate) fn subscript_to_string(
    program: &Program,
    array: usize,
    index: &Expr,
    loop_var: &str,
) -> String {
    let names = Names { program, loop_var };
    let mut out = String::new();
    let _ = write!(out, "{}[", names.array(array));
    expr_str(&mut out, index, &names);
    out.push(']');
    out
}

impl Names<'_> {
    fn array(&self, id: usize) -> &str {
        &self.program.arrays[id].name
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn num(v: f64) -> String {
    // Integral values print without a fraction so they re-parse as the
    // same literal.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn stmt(out: &mut String, s: &Stmt, names: &Names<'_>, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Let { slot, expr } => {
            let _ = write!(out, "let __l{slot} = ");
            expr_str(out, expr, names);
            out.push_str(";\n");
        }
        Stmt::Assign {
            array, index, expr, ..
        } => {
            let _ = write!(out, "{}[", names.array(*array));
            expr_str(out, index, names);
            out.push_str("] = ");
            expr_str(out, expr, names);
            out.push_str(";\n");
        }
        Stmt::Update {
            array,
            index,
            op,
            expr,
            ..
        } => {
            let _ = write!(out, "{}[", names.array(*array));
            expr_str(out, index, names);
            let _ = write!(out, "] {}= ", if *op == UpdateOp::Add { "+" } else { "*" });
            expr_str(out, expr, names);
            out.push_str(";\n");
        }
        Stmt::Bump => {
            let (name, _) = names
                .program
                .counter
                .as_ref()
                .expect("bump without counter");
            let _ = writeln!(out, "bump {name};");
        }
        Stmt::Break { cond } => {
            out.push_str("break if ");
            expr_str(out, cond, names);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            out.push_str("if ");
            expr_str(out, cond, names);
            out.push_str(" {\n");
            for t in then_body {
                stmt(out, t, names, depth + 1);
            }
            indent(out, depth);
            out.push('}');
            if !else_body.is_empty() {
                out.push_str(" else {\n");
                for t in else_body {
                    stmt(out, t, names, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
            out.push('\n');
        }
    }
}

fn expr_str(out: &mut String, e: &Expr, names: &Names<'_>) {
    match e {
        Expr::Num(v) => out.push_str(&num(*v)),
        Expr::LoopVar => out.push_str(names.loop_var),
        Expr::Counter => {
            let (name, _) = names.program.counter.as_ref().expect("counter expr");
            out.push_str(name);
        }
        Expr::Local(slot) => {
            let _ = write!(out, "__l{slot}");
        }
        Expr::Read { array, index, .. } => {
            let _ = write!(out, "{}[", names.array(*array));
            expr_str(out, index, names);
            out.push(']');
        }
        Expr::Neg(inner) => {
            out.push_str("(-");
            expr_str(out, inner, names);
            out.push(')');
        }
        Expr::Not(inner) => {
            out.push_str("(!");
            expr_str(out, inner, names);
            out.push(')');
        }
        Expr::Call { func, args } => {
            out.push_str(match func {
                Intrinsic::Min => "min",
                Intrinsic::Max => "max",
                Intrinsic::Abs => "abs",
                Intrinsic::Sqrt => "sqrt",
                Intrinsic::Floor => "floor",
            });
            out.push('(');
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                expr_str(out, a, names);
            }
            out.push(')');
        }
        Expr::Bin { op, lhs, rhs } => {
            out.push('(');
            expr_str(out, lhs, names);
            out.push_str(match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
                BinOp::Rem => " % ",
                BinOp::Eq => " == ",
                BinOp::Ne => " != ",
                BinOp::Lt => " < ",
                BinOp::Le => " <= ",
                BinOp::Gt => " > ",
                BinOp::Ge => " >= ",
                BinOp::And => " && ",
                BinOp::Or => " || ",
            });
            expr_str(out, rhs, names);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn normalize(p: &Program) -> Program {
        // Loop-var and local names are lost in printing (locals are
        // renamed __lN); re-parse normalizes, so compare the reprint.
        p.clone()
    }

    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reprint failed: {e}\n{printed}"));
        // Structural equality up to (stable) local slot numbering: the
        // printer names locals by slot, so a second print is a fixpoint.
        assert_eq!(
            print_program(&p2),
            printed,
            "printing is a fixpoint\n{printed}"
        );
        assert_eq!(normalize(&p2).arrays, p1.arrays);
        assert_eq!(p2.counter, p1.counter);
        assert_eq!(p2.loops.len(), p1.loops.len());
        for (a, b) in p1.loops.iter().zip(&p2.loops) {
            assert_eq!(a.range, b.range);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.body.len(), b.body.len());
        }
    }

    #[test]
    fn round_trips_a_kitchen_sink_program() {
        round_trip(
            "array A[64] = 1 : tested;\n\
             array Y[8] : reduction(+);\n\
             scalar s = -2;\n\
             cost 5;\n\
             for i in 0..64 {\n\
               let v = A[i] + min(i, 3);\n\
               if v > 2 && i != 5 { A[i] = -v; } else { A[i] = i % 7; }\n\
               Y[i % 8] += v * 2;\n\
               s = v;\n\
               break if i == 60;\n\
             }",
        );
    }

    #[test]
    fn round_trips_counter_programs() {
        round_trip("array T[100];\ncounter c = 10;\nfor i in 0..50 { T[c] = i; bump c; }");
    }

    #[test]
    fn round_trips_multi_loop_programs() {
        round_trip(
            "array A[16];\nfor i in 0..16 { A[i] = i; }\ncost 3;\nfor j in 0..16 { A[j] = A[j] * 2; }",
        );
    }

    #[test]
    fn classification_survives_the_round_trip() {
        // The printer may rename locals and normalize expression
        // nesting, but nothing it does is allowed to change what the
        // static analysis can prove: every array of every loop must
        // classify identically before and after a print/reparse cycle,
        // including the dependence evidence behind the class.
        for src in [
            // Affine strides, a guarded backward flow, a reduction.
            "array A[128] = 1;\narray H[8];\nfor i in 0..32 {\n  \
             let v = A[2 * i + 1];\n  \
             if i >= 9 { A[i] = A[i - 9] + v; }\n  \
             H[i % 8] += v;\n}",
            // Data-dependent subscript: must stay Tested.
            "array IDX[16] = 1;\narray A[32];\nfor i in 0..16 { A[IDX[i]] = i; }",
            // Provably disjoint writes: must stay Untested (elided).
            "array B[64];\nfor i in 0..32 { B[i + 4] = i; }",
            // Counter program under the induction scheme.
            "array T[100];\ncounter c = 10;\nfor i in 0..50 { T[c] = i; bump c; }",
        ] {
            let p1 = parse(src).unwrap();
            let printed = print_program(&p1);
            let p2 = parse(&printed).unwrap_or_else(|e| panic!("reprint failed: {e}\n{printed}"));
            let c1 = crate::classify_program(&p1);
            let c2 = crate::classify_program(&p2);
            assert_eq!(c1.len(), c2.len());
            for (k, (l1, l2)) in c1.iter().zip(&c2).enumerate() {
                for (j, (a, b)) in l1.iter().zip(l2).enumerate() {
                    assert_eq!(
                        a.class, b.class,
                        "loop {k}, array {}: class changed across round trip\n{printed}",
                        p1.arrays[j].name
                    );
                    assert_eq!(
                        a.evidence.as_ref().and_then(|e| e.first_sink),
                        b.evidence.as_ref().and_then(|e| e.first_sink),
                        "loop {k}, array {}: first sink changed across round trip",
                        p1.arrays[j].name
                    );
                    assert_eq!(
                        a.evidence.as_ref().and_then(|e| e.distance),
                        b.evidence.as_ref().and_then(|e| e.distance),
                        "loop {k}, array {}: distance changed across round trip",
                        p1.arrays[j].name
                    );
                }
            }
        }
    }

    #[test]
    fn semantics_survive_the_round_trip() {
        use rlrpd_core::RunConfig;
        let src = "array A[32] = 1;\nscalar t;\nfor i in 0..32 {\n  t = i * 2;\n  if i % 5 == 0 && i > 0 { A[i] = A[i - 3] + t; } else { A[i] = t; }\n}";
        let p1 = crate::CompiledProgram::compile(src).unwrap();
        let printed = print_program(p1.program());
        let p2 = crate::CompiledProgram::compile(&printed).unwrap();
        assert_eq!(
            p1.run(RunConfig::new(4)).arrays,
            p2.run(RunConfig::new(4)).arrays
        );
    }
}
