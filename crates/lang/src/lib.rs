//! # rlrpd-lang — the run-time pass as a library
//!
//! The paper's implementation is "mostly done by our run-time pass in
//! Polaris": a compiler pass that looks at a Fortran loop, decides
//! which arrays need the LRPD test, and emits the transformed loop with
//! marking code. This crate is that pass for a mini loop language:
//! write the loop as text, and [`compile`] parses it, **statically
//! classifies every array** (tested / untested / reduction — see
//! [`analyze`]) and produces a [`CompiledLoop`] that plugs into every
//! driver in `rlrpd-core` ([`rlrpd_core::SpecLoop`]).
//!
//! ```
//! use rlrpd_lang::compile;
//! use rlrpd_core::{run_sequential, run_speculative, RunConfig};
//!
//! let lp = compile(
//!     "array A[64];
//!      array B[64] = 1;
//!      for i in 0..64 {
//!          let src = (i * 7 + 3) % 64;   # input-dependent in spirit
//!          A[i] = A[src] + B[i];         # -> A is TESTED (non-affine read)
//!          B[i] = B[i] * 2;              # -> B is UNTESTED (disjoint affine)
//!      }",
//! )
//! .unwrap();
//!
//! let spec = run_speculative(&lp, RunConfig::new(4));
//! let (seq, _) = run_sequential(&lp);
//! assert_eq!(spec.array("A"), &seq[0].1[..]);
//! assert_eq!(spec.array("B"), &seq[1].1[..]);
//! ```
//!
//! The language: `array NAME[SIZE] (= INIT)? (: tested|untested|
//! reduction(+|*))?;` and `scalar NAME (= INIT)?;` declarations, then
//! one or more loops (each optionally preceded by a `cost N;`
//! directive): `for VAR in LO..HI { … }` with `let` bindings,
//! `A[e] = e;` assignments, `A[e] += e;` / `A[e] *= e;` updates,
//! scalar assignments, `if/else` blocks, `break if c;` premature
//! exits, and the `min/max/abs/sqrt/floor` intrinsics. Values are
//! `f64`; `#` starts a line comment. Scalars desugar to one-element
//! arrays, so write-first scalars privatize speculatively, `s += e`
//! scalars become parallel reductions, and loop-carried scalars
//! serialize correctly under the test. Multi-loop sources compile to
//! [`CompiledProgram`], single loops to [`CompiledLoop`].

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod bytecode;
pub mod depend;
pub mod error;
mod interp;
pub mod lint;
pub mod parse;
pub mod pretty;
pub mod token;
mod vm;

pub use analyze::{classify_loop, classify_loop_exact, classify_program, Class, Classification};
pub use depend::{doacross_plan, DoacrossBlock, DoacrossDep, DoacrossPlan, DoacrossVerdict};
pub use error::LangError;
pub use lint::{lint, Diagnostic, Level};
pub use parse::parse;
pub use pretty::print_program;

use ast::Program;
use bytecode::{lower_loop, LoopCode};
use interp::Eval;
use rlrpd_core::{
    ArrayDecl, IndCtx, InductionLoop, IterCtx, Reduction, RunConfig, RunReport, ShadowKind,
    SpecLoop,
};

/// Which execution tier runs the loop bodies.
///
/// Compilation always lowers to bytecode; the backend selects what the
/// engines actually execute per iteration. The tree-walk interpreter is
/// kept as the differential oracle (and `--no-compile` escape hatch) —
/// the two tiers are byte-identical by construction and by test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The register bytecode VM (default).
    Bytecode,
    /// The tree-walk AST interpreter (oracle / escape hatch).
    TreeWalk,
}

impl Backend {
    /// Human-readable backend name, as printed by the CLI.
    pub fn describe(self) -> &'static str {
        match self {
            Backend::Bytecode => "bytecode VM",
            Backend::TreeWalk => "tree-walk interpreter",
        }
    }
}

/// A compiled mini-language program: one or more loops, executed in
/// sequence over shared arrays, each with its own classification.
#[derive(Debug)]
pub struct CompiledProgram {
    program: Program,
    /// `classes[loop][array]`.
    classes: Vec<Vec<Classification>>,
    /// Plain per-loop class tables (`class_tables[loop][array]`),
    /// precomputed so the per-iteration body never rebuilds them.
    class_tables: Vec<Vec<Class>>,
    /// Leaked array names (`ArrayDecl` requires `&'static str`; one
    /// small leak per compilation, documented).
    names: Vec<&'static str>,
    /// When set, `Untested` verdicts are ignored at declaration time
    /// and every non-reduction array is fully instrumented — the
    /// baseline the shadow-elision tests compare against.
    ///
    /// The *bytecode* is unchanged by this flag: elided `Load`/`Store`
    /// ops still route through the context, which re-arms marking when
    /// the declaration is flipped back to `Tested`.
    full_instrumentation: bool,
    /// Per-loop lowered bytecode (`bytecode[loop]`), produced
    /// unconditionally at compile time.
    bytecode: Vec<LoopCode>,
    /// Which tier executes the loop bodies.
    backend: Backend,
    /// Shadow-memory budget (bytes) the static shadow selection must
    /// respect at loop entry: predicted-dense picks are clamped
    /// down-tier when the dense footprint would blow the cap. `None` =
    /// unlimited. The run-time accountant enforces the same cap against
    /// *observed* footprints; this only shapes the starting point.
    shadow_budget: Option<u64>,
}

/// One row of the observed-vs-predicted shadow audit
/// (`rlrpd analyze --audit`): what the static touch-density model
/// predicted for an array against the representation the run's
/// commit-point re-selection converged on.
#[derive(Clone, Debug)]
pub struct DensityAuditRow {
    /// Which loop the row concerns.
    pub loop_index: usize,
    /// Array name.
    pub array: String,
    /// Declared array size.
    pub size: usize,
    /// Statically predicted distinct elements touched.
    pub predicted_touched: usize,
    /// Representation the static selector chose from the prediction.
    pub predicted_repr: &'static str,
    /// Representation the run settled on after observing real touches.
    pub observed_repr: String,
}

impl DensityAuditRow {
    /// True when the prediction matched run-time behavior.
    pub fn agrees(&self) -> bool {
        self.predicted_repr == self.observed_repr
    }
}

/// Results of running a whole program speculatively.
#[derive(Clone, Debug)]
pub struct ProgramResult {
    /// Final contents of every declared array.
    pub arrays: Vec<(&'static str, Vec<f64>)>,
    /// One run report per loop, in program order.
    pub reports: Vec<RunReport>,
}

impl ProgramResult {
    /// The final contents of the array named `name`.
    pub fn array(&self, name: &str) -> &[f64] {
        &self
            .arrays
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no array named '{name}'"))
            .1
    }

    /// Aggregate virtual speedup over sequential execution of the whole
    /// program.
    pub fn speedup(&self) -> f64 {
        let work: f64 = self.reports.iter().map(|r| r.sequential_work).sum();
        let time: f64 = self.reports.iter().map(|r| r.virtual_time()).sum();
        work / time
    }
}

impl CompiledProgram {
    /// Parse and classify `src` (any number of loops).
    pub fn compile(src: &str) -> Result<Self, LangError> {
        let program = parse(src)?;
        if program.counter.is_some() {
            return Err(LangError::general(
                "programs with a counter use the induction scheme: CompiledInduction::compile",
            ));
        }
        let classes = classify_program(&program);
        let class_tables = classes
            .iter()
            .map(|loop_classes| loop_classes.iter().map(|c| c.class).collect())
            .collect();
        let names = program
            .arrays
            .iter()
            .map(|d| &*Box::leak(d.name.clone().into_boxed_str()))
            .collect();
        let bytecode = program
            .loops
            .iter()
            .zip(&class_tables)
            .map(|(nest, table): (_, &Vec<Class>)| lower_loop(nest, table))
            .collect();
        Ok(CompiledProgram {
            program,
            classes,
            class_tables,
            names,
            full_instrumentation: false,
            bytecode,
            backend: Backend::Bytecode,
            shadow_budget: None,
        })
    }

    /// Arm a shadow-memory budget: the entry shadow selection clamps
    /// dense picks down-tier so the predicted footprint fits `bytes`,
    /// and callers should arm the same cap on the run config so the
    /// run-time ladder takes over from there.
    pub fn with_shadow_budget(mut self, bytes: Option<u64>) -> Self {
        self.shadow_budget = bytes;
        self
    }

    /// Disable shadow elision: every non-reduction array is declared
    /// `Tested` with a dense shadow, regardless of the static verdict.
    /// Reductions keep their classification (their parallel fold is a
    /// different commit path, not an instrumentation level). This is
    /// the always-instrumented baseline the elision tests compare
    /// against — results must be byte-identical.
    pub fn with_full_instrumentation(mut self) -> Self {
        self.full_instrumentation = true;
        self
    }

    /// Execute loop bodies on the tree-walk interpreter instead of the
    /// bytecode VM — the differential oracle, exposed on the CLI as
    /// `--no-compile`.
    pub fn with_interpreter(mut self) -> Self {
        self.backend = Backend::TreeWalk;
        self
    }

    /// Which execution tier runs the loop bodies.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The lowered bytecode of loop `k`.
    pub fn loop_code(&self, k: usize) -> &LoopCode {
        &self.bytecode[k]
    }

    /// Human-readable disassembly of every loop's bytecode.
    pub fn disassembly(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, code) in self.bytecode.iter().enumerate() {
            let nest = &self.program.loops[k];
            let _ = writeln!(
                out,
                "loop {k} (for {} in {}..{}):",
                nest.loop_var, nest.range.0, nest.range.1
            );
            out.push_str(&code.disassemble(&self.names, &nest.loop_var));
        }
        out
    }

    /// Number of loops in the program.
    pub fn num_loops(&self) -> usize {
        self.program.loops.len()
    }

    /// The classifications of loop `k` (declaration order).
    pub fn classifications(&self, k: usize) -> &[Classification] {
        &self.classes[k]
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A [`SpecLoop`] view of loop `k`, starting from the given array
    /// contents (declaration order).
    pub fn loop_view(&self, k: usize, init: Vec<Vec<f64>>) -> ProgramLoop<'_> {
        assert_eq!(init.len(), self.program.arrays.len());
        ProgramLoop {
            prog: self,
            k,
            init,
            plain: false,
        }
    }

    /// A *plain* [`SpecLoop`] view of loop `k`: every array is declared
    /// untested regardless of the classifier's verdict, so the engine
    /// allocates no shadow memory and performs no marking. Only valid
    /// for execution tiers that never speculate — the DOACROSS tier,
    /// whose post/wait protocol makes cross-iteration order correct by
    /// construction, or plain sequential execution.
    pub fn loop_view_plain(&self, k: usize, init: Vec<Vec<f64>>) -> ProgramLoop<'_> {
        assert_eq!(init.len(), self.program.arrays.len());
        ProgramLoop {
            prog: self,
            k,
            init,
            plain: true,
        }
    }

    /// The DOACROSS eligibility proof for loop `k`: the uniform
    /// distance set, source/sink roles, and (when blocked) the
    /// reference that forced speculation. See [`depend::doacross_plan`].
    pub fn doacross_plan(&self, k: usize) -> DoacrossPlan {
        depend::doacross_plan(&self.program, k)
    }

    /// The proven distance vector of loop `k` packaged for
    /// [`rlrpd_core::Strategy::Doacross`] — `Some` exactly when the
    /// plan's verdict is `Eligible` (a proof, not a heuristic).
    pub fn doacross_config(&self, k: usize) -> Option<rlrpd_core::DoacrossConfig> {
        let plan = self.doacross_plan(k);
        if !plan.eligible() {
            return None;
        }
        rlrpd_core::DoacrossConfig::from_distances(&plan.distances())
    }

    /// Initial array contents from the declarations.
    fn initial_arrays(&self) -> Vec<Vec<f64>> {
        self.program
            .arrays
            .iter()
            .map(|d| vec![d.init; d.size])
            .collect()
    }

    /// The statically-predicted first dependence sink of loop `k`: the
    /// earliest iteration any Tested array's dependence evidence says
    /// can consume a cross-iteration value (`None` when the analysis
    /// found no dependence or could not bound the sink).
    pub fn predicted_first_dependence(&self, k: usize) -> Option<usize> {
        self.classes[k]
            .iter()
            .filter_map(|c| c.evidence.as_ref().and_then(|ev| ev.first_sink))
            .min()
    }

    /// Execute the whole program speculatively: each loop runs under
    /// its own speculative run, state flowing from one to the next.
    /// Each loop's config carries that loop's statically-predicted
    /// first dependence sink so the report can compare it with the
    /// observed one.
    pub fn run(&self, cfg: RunConfig) -> ProgramResult {
        let mut state = self.initial_arrays();
        let mut reports = Vec::new();
        for k in 0..self.num_loops() {
            let view = self.loop_view(k, state);
            let cfg = cfg.with_dependence_prediction(self.predicted_first_dependence(k));
            let res = rlrpd_core::run_speculative(&view, cfg);
            state = res.arrays.into_iter().map(|(_, data)| data).collect();
            reports.push(res.report);
        }
        ProgramResult {
            arrays: self.names.iter().copied().zip(state).collect(),
            reports,
        }
    }

    /// Execute the whole program with per-loop strategy auto-selection:
    /// loops the classifier *proves* regular (an [`DoacrossPlan`]
    /// eligibility verdict) run DOACROSS over a plain zero-shadow view
    /// — no speculation, no restarts — while `May`/opaque loops keep
    /// the speculative strategy of `cfg`. This is the degradation
    /// ladder of DESIGN.md §16, surfaced on the CLI as
    /// `--doacross auto`.
    pub fn run_auto(&self, cfg: RunConfig) -> ProgramResult {
        let mut state = self.initial_arrays();
        let mut reports = Vec::new();
        for k in 0..self.num_loops() {
            let cfg_k = cfg.with_dependence_prediction(self.predicted_first_dependence(k));
            let res = match self.doacross_config(k) {
                Some(proven) => {
                    let view = self.loop_view_plain(k, state);
                    rlrpd_core::run_speculative(&view, cfg_k.auto_strategy(Some(proven)))
                }
                None => {
                    let view = self.loop_view(k, state);
                    rlrpd_core::run_speculative(&view, cfg_k)
                }
            };
            state = res.arrays.into_iter().map(|(_, data)| data).collect();
            reports.push(res.report);
        }
        ProgramResult {
            arrays: self.names.iter().copied().zip(state).collect(),
            reports,
        }
    }

    /// Run the program speculatively and compare every instrumented
    /// array's statically predicted shadow representation against the
    /// one the run's commit-point re-selection settled on — the static
    /// touch-density model audited against observed marking behavior.
    pub fn density_audit(&self, cfg: RunConfig) -> Vec<DensityAuditRow> {
        let res = self.run(cfg);
        let mut rows = Vec::new();
        for (k, report) in res.reports.iter().enumerate() {
            for (decl, class) in self.program.arrays.iter().zip(&self.classes[k]) {
                let touched = class.touch.map_or(0, |t| t.touched);
                let predicted =
                    rlrpd_shadow::select::choose(decl.size, touched, self.shadow_budget).describe();
                // Only arrays the run actually instrumented appear on
                // the report (elided arrays have no shadow to audit).
                let Some((_, observed)) = report
                    .shadow_reprs
                    .iter()
                    .find(|(name, _)| name == &decl.name)
                else {
                    continue;
                };
                rows.push(DensityAuditRow {
                    loop_index: k,
                    array: decl.name.clone(),
                    size: decl.size,
                    predicted_touched: touched,
                    predicted_repr: predicted,
                    observed_repr: observed.clone(),
                });
            }
        }
        rows
    }

    /// Execute the whole program sequentially (ground truth).
    pub fn run_sequential(&self) -> Vec<(&'static str, Vec<f64>)> {
        let mut state = self.initial_arrays();
        for k in 0..self.num_loops() {
            let view = self.loop_view(k, state);
            let (arrays, _) = rlrpd_core::run_sequential(&view);
            state = arrays.into_iter().map(|(_, data)| data).collect();
        }
        self.names.iter().copied().zip(state).collect()
    }

    /// Pretty per-loop, per-array report of the pass's decisions.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, loop_classes) in self.classes.iter().enumerate() {
            if self.num_loops() > 1 {
                let nest = &self.program.loops[k];
                let _ = writeln!(
                    out,
                    "loop {k} (for {} in {}..{}):",
                    nest.loop_var, nest.range.0, nest.range.1
                );
            }
            for (decl, c) in self.program.arrays.iter().zip(loop_classes) {
                let kind = match c.class {
                    Class::Tested => "TESTED   ".to_string(),
                    Class::Untested => "UNTESTED ".to_string(),
                    Class::Reduction(op) => format!(
                        "REDUCTION({})",
                        match op {
                            ast::UpdateOp::Add => "+",
                            ast::UpdateOp::Mul => "*",
                        }
                    ),
                };
                let _ = writeln!(out, "{:<10} {} — {}", decl.name, kind, c.rationale);
            }
        }
        out
    }

    fn decls_for(&self, k: usize, init: &[Vec<f64>]) -> Vec<ArrayDecl<f64>> {
        self.program
            .arrays
            .iter()
            .zip(&self.classes[k])
            .zip(&self.names)
            .zip(init)
            .map(|(((decl, class), &name), data)| {
                // Shadow selection from the predicted touch density
                // (arrays the loop never references predict 0 touches).
                let touched = class.touch.map_or(0, |t| t.touched);
                let shadow =
                    match rlrpd_shadow::select::choose(decl.size, touched, self.shadow_budget) {
                        rlrpd_shadow::ShadowChoice::Dense => ShadowKind::Dense,
                        rlrpd_shadow::ShadowChoice::Packed => ShadowKind::DensePacked,
                        rlrpd_shadow::ShadowChoice::Sparse => ShadowKind::Sparse,
                    };
                match class.class {
                    Class::Tested => ArrayDecl::tested(name, data.clone(), shadow),
                    // Shadow elision: a statically safe array gets no
                    // shadow and no marking (unless the elision-check
                    // baseline asked for full instrumentation).
                    Class::Untested if !self.full_instrumentation => {
                        ArrayDecl::untested(name, data.clone())
                    }
                    Class::Untested => ArrayDecl::tested(name, data.clone(), shadow),
                    Class::Reduction(op) => ArrayDecl::reduction(
                        name,
                        data.clone(),
                        shadow,
                        match op {
                            ast::UpdateOp::Add => Reduction::sum(),
                            ast::UpdateOp::Mul => Reduction::product(),
                        },
                    ),
                }
            })
            .collect()
    }

    /// Declarations for a plain (zero-shadow) view: every array is
    /// untested, so the engine neither allocates shadow state nor marks
    /// accesses. The bytecode is unchanged — elided ops route through
    /// the context, which simply skips marking when no shadow exists.
    fn plain_decls_for(&self, init: &[Vec<f64>]) -> Vec<ArrayDecl<f64>> {
        self.program
            .arrays
            .iter()
            .zip(&self.names)
            .zip(init)
            .map(|((_, &name), data)| ArrayDecl::untested(name, data.clone()))
            .collect()
    }
}

/// One loop of a [`CompiledProgram`], viewed as a [`SpecLoop`] starting
/// from explicit array contents.
pub struct ProgramLoop<'a> {
    prog: &'a CompiledProgram,
    k: usize,
    init: Vec<Vec<f64>>,
    /// Zero-shadow view: declare every array untested (see
    /// [`CompiledProgram::loop_view_plain`]).
    plain: bool,
}

impl SpecLoop<f64> for ProgramLoop<'_> {
    fn num_iters(&self) -> usize {
        let (lo, hi) = self.prog.program.loops[self.k].range;
        hi - lo
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        if self.plain {
            self.prog.plain_decls_for(&self.init)
        } else {
            self.prog.decls_for(self.k, &self.init)
        }
    }

    fn body(&self, iter: usize, ctx: &mut IterCtx<'_, f64>) {
        let nest = &self.prog.program.loops[self.k];
        let i = (nest.range.0 + iter) as f64;
        match self.prog.backend {
            Backend::Bytecode => vm::iterate(&self.prog.bytecode[self.k], i, ctx),
            Backend::TreeWalk => interp::with_locals(nest.num_locals, |locals| {
                let mut eval = Eval {
                    i,
                    locals,
                    classes: &self.prog.class_tables[self.k],
                    ctx,
                };
                let _ = eval.stmts(&nest.body);
            }),
        }
    }

    fn cost(&self, _iter: usize) -> f64 {
        self.prog.program.loops[self.k].cost
    }

    fn backend(&self) -> &'static str {
        self.prog.backend.describe()
    }
}

/// A compiled single-loop program — the common case, implementing
/// [`SpecLoop`] directly so it plugs into every driver.
#[derive(Debug)]
pub struct CompiledLoop {
    inner: CompiledProgram,
}

impl CompiledLoop {
    /// Parse and classify `src`, which must contain exactly one loop
    /// (use [`CompiledProgram`] for multi-loop sources).
    pub fn compile(src: &str) -> Result<Self, LangError> {
        let inner = CompiledProgram::compile(src)?;
        if inner.num_loops() != 1 {
            return Err(LangError::general(format!(
                "expected exactly one loop, found {} (use CompiledProgram)",
                inner.num_loops()
            )));
        }
        Ok(CompiledLoop { inner })
    }

    /// The classification the pass chose for each array, with
    /// rationales (declaration order).
    pub fn classifications(&self) -> &[Classification] {
        self.inner.classifications(0)
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        self.inner.program()
    }

    /// The underlying single-loop program.
    pub fn as_program(&self) -> &CompiledProgram {
        &self.inner
    }

    /// Execute the body on the tree-walk interpreter instead of the
    /// bytecode VM (the `--no-compile` escape hatch).
    pub fn with_interpreter(mut self) -> Self {
        self.inner = self.inner.with_interpreter();
        self
    }

    /// Which execution tier runs the loop body.
    pub fn backend(&self) -> Backend {
        self.inner.backend()
    }

    /// Human-readable disassembly of the loop's bytecode.
    pub fn disassembly(&self) -> String {
        self.inner.disassembly()
    }

    /// Pretty one-line-per-array report of the pass's decisions.
    pub fn report(&self) -> String {
        self.inner.report()
    }
}

impl SpecLoop<f64> for CompiledLoop {
    fn num_iters(&self) -> usize {
        let (lo, hi) = self.inner.program.loops[0].range;
        hi - lo
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        self.inner.decls_for(0, &self.inner.initial_arrays())
    }

    fn body(&self, iter: usize, ctx: &mut IterCtx<'_, f64>) {
        let nest = &self.inner.program.loops[0];
        let i = (nest.range.0 + iter) as f64;
        match self.inner.backend {
            Backend::Bytecode => vm::iterate(&self.inner.bytecode[0], i, ctx),
            Backend::TreeWalk => interp::with_locals(nest.num_locals, |locals| {
                let mut eval = Eval {
                    i,
                    locals,
                    classes: &self.inner.class_tables[0],
                    ctx,
                };
                let _ = eval.stmts(&nest.body);
            }),
        }
    }

    fn cost(&self, _iter: usize) -> f64 {
        self.inner.program.loops[0].cost
    }

    fn backend(&self) -> &'static str {
        self.inner.backend.describe()
    }
}

/// Compile `src` into a speculative loop (see the crate docs for the
/// grammar).
pub fn compile(src: &str) -> Result<CompiledLoop, LangError> {
    CompiledLoop::compile(src)
}

/// A compiled induction-pattern loop (a `counter` declaration): runs
/// under the EXTEND two-pass scheme
/// ([`rlrpd_core::run_induction`]) — first doall from zero offsets
/// collecting bump counts and reference ranges, prefix sum, range
/// test, second doall with exact offsets.
#[derive(Debug)]
pub struct CompiledInduction {
    program: Program,
    names: Vec<&'static str>,
    /// Real classifier verdicts with `Reduction` demoted to `Tested`:
    /// the induction context has no reduction path
    /// ([`IndCtx::reduce`] panics), so `⊕=` must route as plain
    /// read-modify-write — but every other verdict comes from the same
    /// static analysis as parsed [`CompiledProgram`]s.
    classes: Vec<Class>,
    /// The lowered bytecode of the (single) loop. Lowered from the
    /// demoted class table, so no `Reduce` instruction is ever emitted
    /// (`IndCtx` has no reduction path).
    code: LoopCode,
    /// Which tier executes the loop body.
    backend: Backend,
}

impl CompiledInduction {
    /// Parse `src`, which must declare a `counter` and contain exactly
    /// one loop.
    pub fn compile(src: &str) -> Result<Self, LangError> {
        let program = parse(src)?;
        if program.counter.is_none() {
            return Err(LangError::general(
                "induction compilation requires a counter",
            ));
        }
        if program.loops.len() != 1 {
            return Err(LangError::general(
                "induction programs have exactly one loop",
            ));
        }
        let classes: Vec<Class> = classify_loop(&program, 0)
            .into_iter()
            .map(|c| match c.class {
                Class::Reduction(_) => Class::Tested,
                other => other,
            })
            .collect();
        let names = program
            .arrays
            .iter()
            .map(|d| &*Box::leak(d.name.clone().into_boxed_str()))
            .collect();
        let code = lower_loop(&program.loops[0], &classes);
        Ok(CompiledInduction {
            program,
            names,
            classes,
            code,
            backend: Backend::Bytecode,
        })
    }

    /// The counter's name and initial value.
    pub fn counter(&self) -> (&str, usize) {
        let (name, init) = self.program.counter.as_ref().expect("checked at compile");
        (name, *init)
    }

    /// Execute the body on the tree-walk interpreter instead of the
    /// bytecode VM (the `--no-compile` escape hatch).
    pub fn with_interpreter(mut self) -> Self {
        self.backend = Backend::TreeWalk;
        self
    }

    /// Which execution tier runs the loop body.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Human-readable disassembly of the loop's bytecode.
    pub fn disassembly(&self) -> String {
        use std::fmt::Write;
        let nest = &self.program.loops[0];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loop 0 (for {} in {}..{}):",
            nest.loop_var, nest.range.0, nest.range.1
        );
        out.push_str(&self.code.disassemble(&self.names, &nest.loop_var));
        out
    }
}

impl InductionLoop<f64> for CompiledInduction {
    fn num_iters(&self) -> usize {
        let (lo, hi) = self.program.loops[0].range;
        hi - lo
    }

    fn initial_counter(&self) -> usize {
        self.program.counter.as_ref().expect("checked").1
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        // The induction runtime range-tests every array itself; the
        // declared kinds are ignored (ArrayDecl::tested as carrier).
        self.program
            .arrays
            .iter()
            .zip(&self.names)
            .map(|(decl, &name)| {
                ArrayDecl::tested(name, vec![decl.init; decl.size], ShadowKind::Sparse)
            })
            .collect()
    }

    fn body(&self, iter: usize, ctx: &mut IndCtx<'_, f64>) {
        let nest = &self.program.loops[0];
        let i = (nest.range.0 + iter) as f64;
        match self.backend {
            Backend::Bytecode => vm::iterate(&self.code, i, ctx),
            Backend::TreeWalk => interp::with_locals(nest.num_locals, |locals| {
                let mut eval = Eval {
                    i,
                    locals,
                    classes: &self.classes,
                    ctx,
                };
                let _ = eval.stmts(&nest.body);
            }),
        }
    }

    fn cost(&self, _iter: usize) -> f64 {
        self.program.loops[0].cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_sequential, run_speculative, RunConfig, Strategy, WindowConfig};

    fn check(src: &str, p: usize) -> rlrpd_core::RunResult<f64> {
        let lp = compile(src).unwrap();
        let (seq, _) = run_sequential(&lp);
        for strategy in [
            Strategy::Nrd,
            Strategy::Rd,
            Strategy::SlidingWindow(WindowConfig::fixed(4)),
        ] {
            let spec = run_speculative(&lp, RunConfig::new(p).with_strategy(strategy));
            for ((sn, sv), (rn, rv)) in seq.iter().zip(&spec.arrays) {
                assert_eq!(sn, rn);
                assert_eq!(sv, rv, "array {sn} under {strategy:?}");
            }
        }
        run_speculative(&lp, RunConfig::new(p))
    }

    #[test]
    fn doacross_config_is_some_exactly_for_proven_loops() {
        let prog = CompiledProgram::compile(
            "array A[256] = 1;\nfor i in 4..256 { A[i] = A[i - 4] * 0.5 + 1; }",
        )
        .unwrap();
        let cfg = prog.doacross_config(0).expect("uniform distance 4 proven");
        assert_eq!(cfg.min_distance(), 4);

        // Guarded conflict: the proof must refuse.
        let prog = CompiledProgram::compile(
            "array A[300];\nfor i in 0..256 { if i % 3 == 0 { A[i + 7] = 1; } A[i] = i; }",
        )
        .unwrap();
        assert!(prog.doacross_config(0).is_none());

        // Opaque subscript: refuse.
        let prog = CompiledProgram::compile(
            "array A[300];\nfor i in 0..256 { A[(i * 7) % 200] = A[i] + 1; }",
        )
        .unwrap();
        assert!(prog.doacross_config(0).is_none());

        // Doall: Independent, not Eligible — no synchronization plan.
        let prog = CompiledProgram::compile("array A[64];\nfor i in 0..64 { A[i] = i; }").unwrap();
        assert!(prog.doacross_config(0).is_none());
    }

    #[test]
    fn run_auto_is_byte_identical_and_shadow_free_on_the_beta_deck() {
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/programs/beta_pipeline.rlp"
        ))
        .unwrap();
        let prog = CompiledProgram::compile(&src).unwrap();
        // Ground truth: sequential execution, state flowing loop to loop.
        let mut state: Vec<Vec<f64>> = prog
            .program()
            .arrays
            .iter()
            .map(|d| vec![d.init; d.size])
            .collect();
        for k in 0..prog.num_loops() {
            let (seq, _) = run_sequential(&prog.loop_view(k, state));
            state = seq.into_iter().map(|(_, data)| data).collect();
        }

        for p in [1usize, 2, 4, 8] {
            let res = prog.run_auto(RunConfig::new(p));
            for ((name, want), (rn, got)) in prog.names.iter().zip(&state).zip(&res.arrays) {
                assert_eq!(name, rn);
                let want: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
                let got: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                assert_eq!(want, got, "array {name} at p = {p}");
            }
            for (k, report) in res.reports.iter().enumerate() {
                assert_eq!(report.shadow_bytes_peak(), 0, "loop {k}: no shadow");
                assert_eq!(report.restarts, 0, "loop {k}: no restarts");
                assert_eq!(report.stages.len(), 1, "loop {k}: one pipelined stage");
            }
        }
    }

    #[test]
    fn run_auto_still_speculates_on_may_loops() {
        // Opaque scatter: the proof refuses, so run_auto must fall back
        // to the speculative tier (shadow memory present) and still
        // match plain run().
        let src = "array STATE[600] = 1;\narray W[128];\nfor i in 0..128 {\n  let s = (i * 11 + 3) % 128;\n  W[i] = STATE[s] * 0.5 + i;\n  STATE[(s * 3) % 400] = W[i];\n}";
        let prog = CompiledProgram::compile(src).unwrap();
        assert!(prog.doacross_config(0).is_none(), "May loop must not prove");
        let auto = prog.run_auto(RunConfig::new(4));
        let spec = prog.run(RunConfig::new(4));
        assert_eq!(auto.arrays, spec.arrays);
        assert!(
            auto.reports[0].shadow_bytes_peak() > 0,
            "the fallback really is the instrumented R-LRPD tier"
        );
    }

    #[test]
    fn fully_parallel_program_runs_in_one_stage() {
        let res = check(
            "array A[64];\narray B[64] = 2;\nfor i in 0..64 { A[i] = B[i] * i; }",
            4,
        );
        assert_eq!(res.report.stages.len(), 1);
    }

    #[test]
    fn backward_dependence_program_is_partially_parallel_but_correct() {
        let res = check(
            "array A[64] = 1;\nfor i in 0..64 {\n  if i % 17 == 0 && i > 0 { A[i] = A[i - 9] + 1; } else { A[i] = i; }\n}",
            4,
        );
        assert!(res.report.restarts > 0);
    }

    #[test]
    fn reduction_program_validates_in_one_stage() {
        let lp = compile(
            "array HIST[8];\narray V[256];\nfor i in 0..256 { V[i] = i; HIST[V[i] % 8] += 1; }",
        )
        .unwrap();
        assert!(matches!(lp.classifications()[0].class, Class::Reduction(_)));
        let spec = run_speculative(&lp, RunConfig::new(8));
        assert_eq!(spec.report.stages.len(), 1, "reductions never conflict");
        // Each of 8 buckets gets 256/8 = 32 hits.
        assert!(spec.array("HIST").iter().all(|&v| v == 32.0));
    }

    #[test]
    fn update_on_tested_array_desugars_correctly() {
        // Y is also plainly assigned, so it is NOT a reduction; `+=`
        // must behave as read-modify-write.
        let res = check(
            "array Y[16] = 1;\nfor i in 0..16 { Y[i] += 2; if i == 7 { Y[0] = 100; } }",
            4,
        );
        assert_eq!(res.array("Y")[1], 3.0);
        assert_eq!(res.array("Y")[0], 100.0);
    }

    #[test]
    fn locals_and_control_flow_evaluate() {
        let res = check(
            "array A[32];\nfor i in 0..32 {\n  let x = i * 2;\n  let y = x + 1;\n  if y % 3 == 0 { A[i] = y; } else { A[i] = -y; }\n}",
            4,
        );
        // i = 1: y = 3 -> A[1] = 3; i = 2: y = 5 -> A[2] = -5.
        assert_eq!(res.array("A")[1], 3.0);
        assert_eq!(res.array("A")[2], -5.0);
    }

    #[test]
    fn cost_directive_feeds_the_simulator() {
        let lp = compile("array A[8];\ncost 40;\nfor i in 0..8 { A[i] = i; }").unwrap();
        assert_eq!(lp.cost(3), 40.0);
        let spec = run_speculative(&lp, RunConfig::new(4));
        assert_eq!(spec.report.sequential_work, 8.0 * 40.0);
    }

    #[test]
    fn report_names_every_array() {
        let lp =
            compile("array A[8];\narray Y[4];\nfor i in 0..8 { A[i] = i; Y[0] += i; }").unwrap();
        let report = lp.report();
        assert!(report.contains("A"), "{report}");
        assert!(report.contains("UNTESTED"), "{report}");
        assert!(report.contains("REDUCTION(+)"), "{report}");
    }

    #[test]
    #[should_panic(expected = "subscript")]
    fn negative_subscript_panics_at_runtime() {
        let lp = compile("array A[8];\nfor i in 0..8 { A[i - 5] = 1.0; }").unwrap();
        let _ = run_sequential(&lp);
    }

    #[test]
    fn break_if_exits_prematurely_and_matches_sequential() {
        // The DCDCMP-70 pattern: fully parallel work with a premature
        // exit at iteration 40.
        let src = "array A[100];\nfor i in 0..100 {\n  A[i] = i + 1;\n  break if i == 40;\n}";
        let res = check(src, 8);
        assert_eq!(res.report.exited_at, Some(40));
        assert_eq!(res.array("A")[40], 41.0, "the exiting iteration completes");
        assert_eq!(res.array("A")[41], 0.0, "iterations past the exit are dead");
        // One speculative stage suffices: the exit block commits and
        // everything later is discarded.
        assert_eq!(res.report.stages.len(), 1);
    }

    #[test]
    fn break_condition_reading_stale_data_is_retested() {
        // The exit condition depends on values produced by earlier
        // iterations: a block deciding to exit on stale data must not
        // be trusted. Correctness = same result as sequential.
        let src = "array A[64] = 1;\nfor i in 0..64 {\n  A[i] = A[max(i - 9, 0)] + 1;\n  break if A[i] > 5;\n}";
        let res = check(src, 8);
        let (seq, _) = run_sequential(&compile(src).unwrap());
        // `check` already asserted array equality; additionally the exit
        // point must match sequential semantics.
        let lp = compile(src).unwrap();
        let seq_exit = {
            // Recompute the sequential exit point by scanning the array:
            // iterations past it are untouched (still the declared 0.0
            // ... but A was initialized to 1.0 and only written up to
            // the exit).
            seq[0].1.iter().rposition(|&v| v != 1.0).unwrap()
        };
        assert_eq!(res.report.exited_at, Some(seq_exit));
        let _ = lp;
    }

    #[test]
    fn intrinsics_evaluate() {
        let res = check(
            "array A[6];\nfor i in 0..6 {\n  A[i] = min(i, 3) + max(i, 3) * 10 + abs(0 - i) * 100 + floor(sqrt(i * i)) * 1000;\n}",
            2,
        );
        // i = 2: min=2, max=3, abs=2, floor(sqrt(4))=2 -> 2 + 30 + 200 + 2000.
        assert_eq!(res.array("A")[2], 2232.0);
    }

    #[test]
    fn unknown_function_is_a_parse_error() {
        let err = compile("array A[4];\nfor i in 0..4 { A[i] = sin(i); }").unwrap_err();
        assert!(err.message.contains("unknown function"), "{err}");
    }

    #[test]
    fn wrong_arity_is_a_parse_error() {
        let err = compile("array A[4];\nfor i in 0..4 { A[i] = min(i); }").unwrap_err();
        assert!(err.message.contains("argument"), "{err}");
    }

    #[test]
    fn privatizable_scalar_runs_in_one_stage() {
        // `t` is written before read in every iteration: the
        // speculative privatization validates it with zero restarts,
        // and last-value commit leaves the final iteration's value.
        let src = "array A[64];\nscalar t;\nfor i in 0..64 {\n  t = i * 2;\n  A[i] = t + 1;\n}";
        let res = check(src, 8);
        assert_eq!(res.report.stages.len(), 1, "write-first scalar privatizes");
        assert_eq!(res.array("t"), &[126.0], "last value committed");
    }

    #[test]
    fn reduction_scalar_parallelizes() {
        let src = "array A[64];\nscalar total;\nfor i in 0..64 {\n  A[i] = i;\n  total += i;\n}";
        let lp = compile(src).unwrap();
        assert!(
            matches!(lp.classifications()[1].class, Class::Reduction(_)),
            "{}",
            lp.report()
        );
        let res = check(src, 8);
        assert_eq!(res.report.stages.len(), 1);
        assert_eq!(res.array("total"), &[2016.0]); // 63*64/2
    }

    #[test]
    fn loop_carried_scalar_serializes_but_stays_correct() {
        // s = s * 0.9 + i: read-before-write every iteration — a true
        // recurrence. The R-LRPD test degenerates to p stages (NRD) but
        // the result is exact.
        let src =
            "scalar s = 1;\narray OUT[32];\nfor i in 0..32 {\n  s = s * 0.5 + i;\n  OUT[i] = s;\n}";
        let res = check(src, 4);
        assert!(res.report.restarts > 0, "a recurrence must serialize");
        // Spot value: s after 2 iterations = (1*0.5 + 0)*0.5 + 1 = 1.25.
        assert_eq!(res.array("OUT")[1], 1.25);
    }

    #[test]
    fn shadow_elision_is_byte_identical_on_the_examples() {
        use rlrpd_core::{Strategy, WindowConfig};
        // Skipping shadow allocation for statically-safe arrays must
        // never change results: the fully-instrumented baseline (every
        // untested array promoted to tested) and the elided compile
        // must agree to the bit, under every strategy.
        let sources = [
            include_str!("../../../examples/programs/tracking.rlp"),
            include_str!("../../../examples/programs/lu_sparse.rlp"),
            include_str!("../../../examples/programs/premature_exit.rlp"),
            include_str!("../../../examples/programs/two_phase.rlp"),
        ];
        let strategies = [
            Strategy::Nrd,
            Strategy::Rd,
            Strategy::SlidingWindow(WindowConfig::fixed(16)),
        ];
        for src in sources {
            let elided = CompiledProgram::compile(src).unwrap();
            let full = CompiledProgram::compile(src)
                .unwrap()
                .with_full_instrumentation();
            for strategy in strategies {
                let cfg = RunConfig::new(4).with_strategy(strategy);
                let a = elided.run(cfg);
                let b = full.run(cfg);
                for ((name, x), (name2, y)) in a.arrays.iter().zip(&b.arrays) {
                    assert_eq!(name, name2);
                    let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb, "{name} diverged under {strategy:?}");
                }
            }
        }
    }

    #[test]
    fn run_reports_predicted_and_observed_first_dependence() {
        // A[i] = A[i-8]: Must-dependence with distance 8, first sink 8.
        let src = "array A[64] = 1;\nfor i in 0..64 { if i >= 8 { A[i] = A[i - 8] + 1; } }";
        let prog = CompiledProgram::compile(src).unwrap();
        assert_eq!(prog.predicted_first_dependence(0), Some(8));
        let spec = prog.run(RunConfig::new(8));
        let report = &spec.reports[0];
        assert_eq!(report.predicted_first_dependence, Some(8));
        if report.restarts > 0 {
            let observed = report
                .observed_first_dependence
                .expect("a restarted run records its first observed violation");
            assert!(observed >= 8, "no sink can precede the static minimum");
        }
        // An independent loop predicts (and observes) no dependence.
        let free = CompiledProgram::compile("array B[32];\nfor i in 0..32 { B[i] = i; }").unwrap();
        assert_eq!(free.predicted_first_dependence(0), None);
        let run = free.run(RunConfig::new(4));
        assert_eq!(run.reports[0].predicted_first_dependence, None);
        assert_eq!(run.reports[0].observed_first_dependence, None);
    }

    #[test]
    fn multi_loop_programs_flow_state_between_loops() {
        // Loop 1 builds a table (fully parallel); loop 2 consumes it
        // through indirection (tested); loop 3 reduces it.
        let src = "
            array T[64];
            array OUT[64];
            scalar sum;
            for i in 0..64 { T[i] = (i * 29 + 7) % 64; }
            for j in 0..64 { OUT[j] = T[(j * 3) % 64] + 1; }
            for k in 0..64 { sum += OUT[k]; }
        ";
        let prog = CompiledProgram::compile(src).unwrap();
        assert_eq!(prog.num_loops(), 3);
        let spec = prog.run(RunConfig::new(4));
        let seq = prog.run_sequential();
        assert_eq!(spec.arrays, seq);
        assert_eq!(spec.reports.len(), 3);
        // The reduction loop runs in one stage.
        assert_eq!(spec.reports[2].stages.len(), 1);
        // sum = Σ (T[...] + 1): check against a direct recomputation.
        let t: Vec<f64> = (0..64).map(|i| ((i * 29 + 7) % 64) as f64).collect();
        let expect: f64 = (0..64).map(|j| t[(j * 3) % 64] + 1.0).sum();
        assert_eq!(spec.array("sum"), &[expect]);
    }

    #[test]
    fn per_loop_classification_differs() {
        // A is written disjointly in loop 0 (untested) but through
        // data-dependent subscripts in loop 1 (tested).
        let src = "
            array A[32];
            array IDX[32];
            for i in 0..32 { A[i] = i; IDX[i] = (i * 5) % 32; }
            for j in 0..32 { A[IDX[j]] = A[IDX[j]] * 2; }
        ";
        let prog = CompiledProgram::compile(src).unwrap();
        assert_eq!(prog.classifications(0)[0].class, Class::Untested);
        assert_eq!(prog.classifications(1)[0].class, Class::Tested);
        let spec = prog.run(RunConfig::new(4));
        let seq = prog.run_sequential();
        assert_eq!(spec.arrays, seq);
    }

    #[test]
    fn compiled_loop_rejects_multi_loop_sources() {
        let err = CompiledLoop::compile(
            "array A[4];\nfor i in 0..4 { A[i] = 1; }\nfor j in 0..4 { A[j] = 2; }",
        )
        .unwrap_err();
        assert!(err.message.contains("exactly one loop"), "{err}");
    }

    #[test]
    fn per_loop_cost_directives_apply() {
        let src = "array A[8];\ncost 10;\nfor i in 0..8 { A[i] = i; }\ncost 30;\nfor j in 0..8 { A[j] = j; }";
        let prog = CompiledProgram::compile(src).unwrap();
        let spec = prog.run(RunConfig::new(2));
        assert_eq!(spec.reports[0].sequential_work, 80.0);
        assert_eq!(spec.reports[1].sequential_work, 240.0);
    }

    #[test]
    fn counter_programs_run_under_the_extend_scheme() {
        use rlrpd_core::{run_induction, CostModel, ExecMode};
        // The EXTEND pattern written in source: reads from the
        // read-only prefix, a temporary extension at the counter, a
        // conditional bump.
        let src = "
            array TRACK[700];
            counter lsttrk = 100;
            for i in 0..500 {
                let a = TRACK[i % 100];
                TRACK[lsttrk] = a * 0.5 + i;
                if i % 3 == 0 { bump lsttrk; }
            }
        ";
        let lp = CompiledInduction::compile(src).unwrap();
        assert_eq!(lp.counter(), ("lsttrk", 100));
        let res = run_induction(&lp, 8, ExecMode::Simulated, CostModel::default());
        assert!(
            res.test_passed,
            "range test passes: reads stay in the prefix"
        );
        assert_eq!(
            res.final_counter,
            100 + 167,
            "167 bumps (i % 3 == 0, i < 500)"
        );
        assert_eq!(res.report.stages.len(), 2, "two doalls");

        // Ground truth by hand.
        let mut track = vec![0.0f64; 700];
        let mut c = 100usize;
        for i in 0..500usize {
            let a = track[i % 100];
            track[c] = a * 0.5 + i as f64;
            if i % 3 == 0 {
                c += 1;
            }
        }
        assert_eq!(res.arrays[0].1, track);
    }

    #[test]
    fn counter_program_with_wild_reads_falls_back() {
        use rlrpd_core::{run_induction, CostModel, ExecMode};
        // Reading at the counter's current position-1 (the written
        // region) trips the range test; the fallback is sequential and
        // exact.
        let src = "
            array T[600];
            counter c = 50;
            for i in 0..200 {
                let prev = T[c - 1];
                T[c] = prev + i;
                bump c;
            }
        ";
        let lp = CompiledInduction::compile(src).unwrap();
        let res = run_induction(&lp, 4, ExecMode::Simulated, CostModel::default());
        assert!(!res.test_passed, "reads intersect writes");
        assert_eq!(res.final_counter, 250);
        // Ground truth: a running chain starting from T[49] = 0.
        let mut t = vec![0.0f64; 600];
        for (c, i) in (50usize..).zip(0..200usize) {
            t[c] = t[c - 1] + i as f64;
        }
        assert_eq!(res.arrays[0].1, t);
    }

    #[test]
    fn counter_misuse_is_rejected() {
        // Counter in a SpecLoop program.
        let err = CompiledProgram::compile("array A[4];\ncounter c;\nfor i in 0..4 { A[i] = c; }")
            .unwrap_err();
        assert!(err.message.contains("induction"), "{err}");
        // Induction compile without a counter.
        let err =
            CompiledInduction::compile("array A[4];\nfor i in 0..4 { A[i] = 1; }").unwrap_err();
        assert!(err.message.contains("requires a counter"), "{err}");
        // Bumping a non-counter name.
        let err = CompiledInduction::compile("array A[4];\ncounter c;\nfor i in 0..4 { bump A; }")
            .unwrap_err();
        assert!(err.message.contains("not the declared counter"), "{err}");
    }

    #[test]
    fn scalar_and_array_namespaces_are_shared() {
        let err = compile("array X[4];\nscalar X;\nfor i in 0..4 { X[i] = 1; }").unwrap_err();
        assert!(err.message.contains("declared twice"), "{err}");
    }

    #[test]
    fn nonzero_range_start_maps_iterations() {
        let res = check("array A[20];\nfor i in 10..20 { A[i] = i; }", 4);
        assert_eq!(res.array("A")[10], 10.0);
        assert_eq!(res.array("A")[0], 0.0);
    }
}
