//! The register VM: executes lowered [`LoopCode`] one iteration at a
//! time against the engine's instrumented context.
//!
//! This is the hot path of the compiled tier — one flat dispatch loop
//! per iteration, no AST walks, no per-iteration allocation. The
//! register file lives in a per-thread scratch that is *bound* to a
//! loop: binding (sizing the file and materializing the constant pool
//! into the constant registers) happens only when the thread switches
//! loops, so across the millions of iterations of a block the
//! per-iteration work is exactly: write the loop register, dispatch.
//!
//! Register and instruction fetches are unchecked; the lowering
//! verifier (`bytecode::verify`) established the bounds at compile
//! time. Panics out of the VM are *program* faults (bad subscript,
//! modulo by zero) and carry the same messages as the tree-walk
//! interpreter — plus the source span the bytecode's side table
//! preserved — so fault-containment tests observe identical behavior
//! on either backend.

use crate::ast::Span;
use crate::bytecode::{Insn, LoopCode, REG_I};
use crate::interp::DataCtx;
use std::cell::RefCell;

/// Per-thread register file, bound to the loop whose constants it
/// currently holds.
struct Scratch {
    regs: Vec<f64>,
    /// [`LoopCode::uid`] of the bound loop (0 = unbound; uids start
    /// at 1).
    bound: u64,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            regs: Vec::new(),
            bound: 0,
        })
    };
}

/// Execute one iteration of `code` with the loop variable at `i`.
#[inline]
pub(crate) fn iterate<C: DataCtx>(code: &LoopCode, i: f64, ctx: &mut C) {
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.bound != code.uid {
            bind(&mut scratch, code);
        }
        run(code, i, &mut scratch.regs, ctx);
    });
}

/// (Re)bind the scratch to `code`: size the register file and
/// materialize the constant pool. Paid once per `(thread, loop)`, not
/// per iteration — cold so the binding code stays off the hot path.
#[cold]
fn bind(scratch: &mut Scratch, code: &LoopCode) {
    scratch.regs.clear();
    scratch.regs.resize(code.num_regs as usize, 0.0);
    let cb = code.const_base();
    scratch.regs[cb..cb + code.consts.len()].copy_from_slice(&code.consts);
    scratch.bound = code.uid;
}

/// Evaluate a subscript value into an element index — same contract and
/// message as the interpreter's, extended with the source span the
/// instruction carries.
///
/// # Panics
/// Panics on negative or non-integral subscripts (a bug in the source
/// program).
#[inline]
fn subscript(v: f64, span: Span) -> usize {
    let r = crate::interp::round_i64(v);
    assert!(
        (v - r as f64).abs() < 1e-9 && r >= 0,
        "subscript {v} is not a non-negative integer (at {span})"
    );
    r as usize
}

/// Resolve a subscript register value to an element index. A `trusted`
/// subscript was proven non-negative-integral at lowering
/// (`bytecode`'s `is_nni`), so the cast is exact on the proven domain
/// and validation is skipped; array bounds are still enforced by the
/// access itself. Untrusted subscripts take the checked path with its
/// source-span diagnostic.
#[inline(always)]
fn index(v: f64, trusted: bool, code: &LoopCode, pc: usize) -> usize {
    if trusted {
        v as usize
    } else {
        subscript(v, code.span_of(pc - 1))
    }
}

#[inline]
fn bool_val(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

fn run<C: DataCtx>(code: &LoopCode, i: f64, regs: &mut [f64], ctx: &mut C) {
    debug_assert_eq!(regs.len(), code.num_regs as usize);
    regs[REG_I as usize] = i;
    // Local slots are *not* re-zeroed between iterations: the parser
    // allocates a fresh, lexically scoped slot per `let`, so every
    // local is written before it can be read and a previous
    // iteration's values are unreachable. (`bind` zeroes the file
    // once; the differential proptest guards the claim.)

    let insns = code.code.as_slice();
    let mut pc = 0usize;
    // SAFETY (all unchecked accesses below): `bytecode::verify` proved
    // at lowering time that every register operand is < num_regs ==
    // regs.len(), every jump target is < insns.len(), and the body ends
    // in a terminator, so `pc` never runs past the end.
    macro_rules! get {
        ($r:expr) => {
            unsafe { *regs.get_unchecked($r as usize) }
        };
    }
    macro_rules! set {
        ($r:expr, $v:expr) => {{
            // Evaluate the value outside the unsafe block so `get!`
            // expansions in `$v` aren't silently nested inside it.
            let v = $v;
            unsafe { *regs.get_unchecked_mut($r as usize) = v }
        }};
    }
    loop {
        let insn = unsafe { *insns.get_unchecked(pc) };
        pc += 1;
        match insn {
            Insn::Move { dst, src } => set!(dst, get!(src)),
            Insn::Counter { dst } => set!(dst, ctx.counter() as f64),
            Insn::Add { dst, a, b } => set!(dst, get!(a) + get!(b)),
            Insn::Sub { dst, a, b } => set!(dst, get!(a) - get!(b)),
            Insn::Mul { dst, a, b } => set!(dst, get!(a) * get!(b)),
            Insn::Div { dst, a, b } => set!(dst, get!(a) / get!(b)),
            Insn::Rem { dst, a, b } => {
                set!(dst, crate::interp::rem_value(get!(a), get!(b)));
            }
            Insn::RemPow2 { dst, a, mask } => {
                // Exactly `rem_value(a, mask + 1)`: Euclidean remainder
                // by a power of two is a mask in two's complement.
                set!(
                    dst,
                    (crate::interp::round_i64(get!(a)) & mask as i64) as f64
                );
            }
            Insn::MulAdd { dst, a, b, c } => set!(dst, get!(a) * get!(b) + get!(c)),
            Insn::DualMulAdd { dst, a, b, c, d } => {
                set!(dst, get!(a) * get!(b) + get!(c) * get!(d));
            }
            Insn::MulSub { dst, a, b, c } => set!(dst, get!(a) * get!(b) - get!(c)),
            Insn::MulRSub { dst, a, b, c } => set!(dst, get!(c) - get!(a) * get!(b)),
            Insn::CmpEq { dst, a, b } => set!(dst, bool_val(get!(a) == get!(b))),
            Insn::CmpNe { dst, a, b } => set!(dst, bool_val(get!(a) != get!(b))),
            Insn::CmpLt { dst, a, b } => set!(dst, bool_val(get!(a) < get!(b))),
            Insn::CmpLe { dst, a, b } => set!(dst, bool_val(get!(a) <= get!(b))),
            Insn::CmpGt { dst, a, b } => set!(dst, bool_val(get!(a) > get!(b))),
            Insn::CmpGe { dst, a, b } => set!(dst, bool_val(get!(a) >= get!(b))),
            Insn::Neg { dst, a } => set!(dst, -get!(a)),
            Insn::Not { dst, a } => set!(dst, bool_val(get!(a) == 0.0)),
            Insn::Min { dst, a, b } => set!(dst, get!(a).min(get!(b))),
            Insn::Max { dst, a, b } => set!(dst, get!(a).max(get!(b))),
            Insn::Abs { dst, a } => set!(dst, get!(a).abs()),
            Insn::Sqrt { dst, a } => set!(dst, get!(a).sqrt()),
            Insn::Floor { dst, a } => set!(dst, get!(a).floor()),
            // Marked and unmarked addressing modes both go through the
            // context: routing there decides whether the access is
            // direct or marks the shadow, so the same bytecode runs
            // correctly when `with_full_instrumentation` re-arms an
            // elided array's shadow at declaration time.
            Insn::Load {
                dst,
                arr,
                idx,
                trusted,
            }
            | Insn::LoadMarked {
                dst,
                arr,
                idx,
                trusted,
            } => {
                let j = index(get!(idx), trusted, code, pc);
                set!(dst, ctx.read(arr as usize, j));
            }
            Insn::Store {
                arr,
                idx,
                src,
                trusted,
            }
            | Insn::StoreMarked {
                arr,
                idx,
                src,
                trusted,
            } => {
                let j = index(get!(idx), trusted, code, pc);
                ctx.write(arr as usize, j, get!(src));
            }
            Insn::Reduce {
                arr,
                idx,
                src,
                trusted,
            } => {
                let j = index(get!(idx), trusted, code, pc);
                ctx.reduce(arr as usize, j, get!(src));
            }
            Insn::Jump { target } => pc = target as usize,
            Insn::JumpIfZero { cond, target } => {
                if get!(cond) == 0.0 {
                    pc = target as usize;
                }
            }
            Insn::JumpUnless { pred, a, b, target } => {
                if !pred.eval(get!(a), get!(b)) {
                    pc = target as usize;
                }
            }
            Insn::Bump => ctx.bump(),
            Insn::Exit => {
                ctx.exit();
                return;
            }
            Insn::Halt => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::classify_loop;
    use crate::bytecode::lower_loop;
    use crate::parse;
    use std::collections::BTreeMap;

    /// A direct-memory context recording which accesses were made —
    /// enough to test VM semantics without an engine.
    struct MemCtx {
        arrays: Vec<Vec<f64>>,
        reads: BTreeMap<(usize, usize), usize>,
        writes: BTreeMap<(usize, usize), usize>,
        exited: bool,
    }

    impl DataCtx for MemCtx {
        fn read(&mut self, a: usize, i: usize) -> f64 {
            *self.reads.entry((a, i)).or_insert(0) += 1;
            self.arrays[a][i]
        }
        fn write(&mut self, a: usize, i: usize, v: f64) {
            *self.writes.entry((a, i)).or_insert(0) += 1;
            self.arrays[a][i] = v;
        }
        fn reduce(&mut self, a: usize, i: usize, v: f64) {
            self.arrays[a][i] += v;
        }
        fn exit(&mut self) {
            self.exited = true;
        }
    }

    fn run_both(src: &str, iters: std::ops::Range<usize>) -> (MemCtx, MemCtx) {
        let prog = parse(src).unwrap();
        let classes: Vec<_> = classify_loop(&prog, 0)
            .into_iter()
            .map(|c| c.class)
            .collect();
        let code = lower_loop(&prog.loops[0], &classes);
        let init: Vec<Vec<f64>> = prog.arrays.iter().map(|d| vec![d.init; d.size]).collect();
        let mk = || MemCtx {
            arrays: init.clone(),
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
            exited: false,
        };
        let mut vm_ctx = mk();
        let mut tw_ctx = mk();
        for it in iters {
            let i = (prog.loops[0].range.0 + it) as f64;
            if !vm_ctx.exited {
                iterate(&code, i, &mut vm_ctx);
            }
            if !tw_ctx.exited {
                let mut locals = vec![0.0; prog.loops[0].num_locals];
                let mut eval = crate::interp::Eval {
                    i,
                    locals: &mut locals,
                    classes: &classes,
                    ctx: &mut tw_ctx,
                };
                let _ = eval.stmts(&prog.loops[0].body);
            }
        }
        (vm_ctx, tw_ctx)
    }

    fn assert_identical(src: &str, n: usize) {
        let (vm, tw) = run_both(src, 0..n);
        for (a, (va, ta)) in vm.arrays.iter().zip(&tw.arrays).enumerate() {
            for (i, (v, t)) in va.iter().zip(ta).enumerate() {
                assert_eq!(v.to_bits(), t.to_bits(), "array {a} index {i}: {v} vs {t}");
            }
        }
        assert_eq!(vm.reads, tw.reads, "read access pattern diverged");
        assert_eq!(vm.writes, tw.writes, "write access pattern diverged");
        assert_eq!(vm.exited, tw.exited);
    }

    #[test]
    fn arithmetic_and_intrinsics_match_the_interpreter() {
        assert_identical(
            "array A[64] = 2;\narray B[64];\nfor i in 0..64 {\n  let v = sqrt(A[i]) + abs(0 - i) * 0.25;\n  B[i] = max(v, floor(v)) + min(i, 3) / 7;\n}",
            64,
        );
    }

    #[test]
    fn guards_and_short_circuit_match_the_interpreter() {
        // The rhs of && / || has a marking side effect (an array read),
        // so evaluation order is observable in the access pattern.
        assert_identical(
            "array A[64] = 1;\narray B[64];\nfor i in 0..64 {\n  if i > 2 && A[i - 3] > 0 { B[i] = 1; } else { B[i] = 2; }\n  if i == 0 || A[i - 1] > 0 { B[i] = B[i] + 10; }\n}",
            64,
        );
    }

    #[test]
    fn update_and_reduction_routing_match_the_interpreter() {
        assert_identical(
            "array A[16] = 1;\narray Y[4] : reduction(+);\nfor i in 0..32 {\n  A[i % 16] *= 1.5;\n  Y[i % 4] += i * 0.5;\n}",
            32,
        );
    }

    #[test]
    fn premature_exit_stops_the_iteration_body() {
        let (vm, tw) = run_both(
            "array A[32];\nfor i in 0..32 {\n  break if i == 5;\n  A[i] = i;\n}",
            0..32,
        );
        assert!(vm.exited && tw.exited);
        assert_eq!(vm.arrays, tw.arrays);
        // Iterations 0..5 wrote; 5 broke before its store.
        assert_eq!(vm.arrays[0][4], 4.0);
        assert_eq!(vm.arrays[0][5], 0.0);
    }

    #[test]
    fn vm_subscript_fault_carries_the_source_span() {
        let err = std::panic::catch_unwind(|| {
            run_both("array A[8];\nfor i in 0..8 {\n  A[i - 4] = 1;\n}", 0..8);
        })
        .expect_err("negative subscript must panic");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("subscript"), "{msg}");
        assert!(msg.contains("3:3"), "span missing: {msg}");
    }

    #[test]
    fn scratch_rebinds_when_the_thread_switches_loops() {
        // Two different loops executed interleaved on one thread: the
        // constant registers must rebind each switch.
        let mk = |src: &str| {
            let prog = parse(src).unwrap();
            let classes: Vec<_> = classify_loop(&prog, 0)
                .into_iter()
                .map(|c| c.class)
                .collect();
            (lower_loop(&prog.loops[0], &classes), prog)
        };
        let (code_a, _) = mk("array A[4];\nfor i in 0..4 { A[i] = 111; }");
        let (code_b, _) = mk("array B[4];\nfor i in 0..4 { B[i] = 222; }");
        let mut ctx = MemCtx {
            arrays: vec![vec![0.0; 4]],
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
            exited: false,
        };
        for i in 0..4 {
            iterate(&code_a, i as f64, &mut ctx);
            iterate(&code_b, i as f64, &mut ctx);
        }
        assert_eq!(ctx.arrays[0], vec![222.0; 4]);
    }
}
