//! Systematic semantics tests for the mini language: every operator,
//! precedence and associativity, short-circuit evaluation, scalars in
//! branches, counter arithmetic, and error positions.

use rlrpd_core::{run_sequential, RunConfig};
use rlrpd_lang::{compile, CompiledProgram, LangError};

/// Evaluate a single expression by storing it into A[0] and reading it
/// back from a sequential run.
fn eval(expr: &str) -> f64 {
    let src = format!("array A[1];\nfor i in 3..4 {{ A[0] = {expr}; }}");
    let lp = compile(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
    let (arrays, _) = run_sequential(&lp);
    arrays[0].1[0]
}

#[test]
fn arithmetic_operators() {
    assert_eq!(eval("1 + 2"), 3.0);
    assert_eq!(eval("7 - 10"), -3.0);
    assert_eq!(eval("6 * 7"), 42.0);
    assert_eq!(eval("7 / 2"), 3.5);
    assert_eq!(eval("17 % 5"), 2.0);
    assert_eq!(eval("-i"), -3.0, "the loop variable is 3");
}

#[test]
fn rem_is_euclidean_on_negatives() {
    // The language promises a non-negative result for subscript use.
    assert_eq!(eval("(0 - 7) % 5"), 3.0);
}

#[test]
fn comparisons_yield_zero_or_one() {
    assert_eq!(eval("2 == 2"), 1.0);
    assert_eq!(eval("2 != 2"), 0.0);
    assert_eq!(eval("1 < 2"), 1.0);
    assert_eq!(eval("2 <= 1"), 0.0);
    assert_eq!(eval("3 > 2"), 1.0);
    assert_eq!(eval("3 >= 4"), 0.0);
}

#[test]
fn logic_operators_and_not() {
    assert_eq!(eval("1 && 2"), 1.0);
    assert_eq!(eval("1 && 0"), 0.0);
    assert_eq!(eval("0 || 3"), 1.0);
    assert_eq!(eval("0 || 0"), 0.0);
    assert_eq!(eval("!0"), 1.0);
    assert_eq!(eval("!5"), 0.0);
}

#[test]
fn precedence_and_associativity() {
    assert_eq!(eval("2 + 3 * 4"), 14.0);
    assert_eq!(eval("(2 + 3) * 4"), 20.0);
    assert_eq!(eval("10 - 4 - 3"), 3.0, "left associative");
    assert_eq!(eval("8 / 4 / 2"), 1.0, "left associative");
    assert_eq!(eval("1 + 2 < 4"), 1.0, "comparison binds looser than +");
    assert_eq!(eval("1 < 2 && 3 < 4"), 1.0, "&& binds looser than <");
    assert_eq!(eval("0 && 1 || 1"), 1.0, "|| binds loosest");
}

#[test]
fn intrinsics() {
    assert_eq!(eval("min(3, 7)"), 3.0);
    assert_eq!(eval("max(3, 7)"), 7.0);
    assert_eq!(eval("abs(0 - 9)"), 9.0);
    assert_eq!(eval("sqrt(49)"), 7.0);
    assert_eq!(eval("floor(3.9)"), 3.0);
    assert_eq!(eval("min(max(i, 2), 10)"), 3.0, "nested calls");
}

#[test]
fn short_circuit_evaluation_protects_subscripts() {
    // The RHS of && must not evaluate when the LHS is false —
    // otherwise A[i - 1] would panic at i = 0.
    let src = "array A[8] = 1;\narray B[8];\nfor i in 0..8 {\n  if i > 0 && A[i - 1] > 0 { B[i] = 1; } else { B[i] = 2; }\n}";
    let lp = compile(src).unwrap();
    let (arrays, _) = run_sequential(&lp);
    assert_eq!(arrays[1].1[0], 2.0);
    assert_eq!(arrays[1].1[1], 1.0);
}

#[test]
fn scalars_written_in_branches_behave_sequentially() {
    let src = "scalar s;\narray OUT[6];\nfor i in 0..6 {\n  if i % 2 == 0 { s = i; } else { s = s * 10; }\n  OUT[i] = s;\n}";
    let prog = CompiledProgram::compile(src).unwrap();
    let seq = prog.run_sequential();
    // s: 0, 0, 2, 20, 4, 40.
    assert_eq!(seq[1].1, vec![0.0, 0.0, 2.0, 20.0, 4.0, 40.0]);
    // And the speculative run (which must serialize this recurrence)
    // agrees.
    let spec = prog.run(RunConfig::new(4));
    assert_eq!(spec.arrays, seq);
}

#[test]
fn locals_shadow_outer_locals() {
    let src = "array A[4];\nfor i in 0..4 {\n  let v = 1;\n  if i == 2 { let v = 100; A[i] = v; } else { A[i] = v; }\n}";
    let lp = compile(src).unwrap();
    let (arrays, _) = run_sequential(&lp);
    assert_eq!(arrays[0].1, vec![1.0, 1.0, 100.0, 1.0]);
}

#[test]
fn counter_value_is_readable_in_expressions() {
    use rlrpd_core::{run_induction, CostModel, ExecMode};
    let src = "array A[40];\ncounter c = 5;\nfor i in 0..10 {\n  A[c] = c * 10 + i;\n  bump c;\n}";
    let ind = rlrpd_lang::CompiledInduction::compile(src).unwrap();
    let res = run_induction(&ind, 4, ExecMode::Simulated, CostModel::default());
    assert!(res.test_passed);
    // A[5] = 50, A[6] = 61, …
    assert_eq!(res.arrays[0].1[5], 50.0);
    assert_eq!(res.arrays[0].1[6], 61.0);
    assert_eq!(res.final_counter, 15);
}

#[test]
fn error_positions_point_at_the_problem() {
    let check = |src: &str, line: u32, needle: &str| {
        let err: LangError = compile(src).unwrap_err();
        assert_eq!(err.line, line, "{err}");
        assert!(err.message.contains(needle), "{err}");
    };
    check(
        "array A[4];\nfor i in 0..4 { A[i] = x; }",
        2,
        "unknown name 'x'",
    );
    check(
        "array A[4];\nfor i in 0..4 { B[i] = 1; }",
        2,
        "not a declared array",
    );
    check(
        "array A[4];\nfor i in 0..4 {\n  A[i] = ;\n}",
        3,
        "expected an expression",
    );
    check(
        "array A[4];\nfor i in 4..0 { A[0] = 1; }",
        2,
        "inverted range",
    );
}

#[test]
fn division_produces_fractions_subscripts_reject_them() {
    assert_eq!(eval("1 / 4"), 0.25);
    let src = "array A[8];\nfor i in 1..2 { A[i / 2] = 1; }";
    let lp = compile(src).unwrap();
    let panicked = std::panic::catch_unwind(|| run_sequential(&lp)).is_err();
    assert!(
        panicked,
        "fractional subscript must panic with a clear message"
    );
}

#[test]
fn deeply_nested_expressions_and_blocks() {
    let src = "array A[4];\nfor i in 0..4 {\n  if i > 0 { if i > 1 { if i > 2 { A[i] = ((1 + 2) * (3 + 4)); } } }\n}";
    let lp = compile(src).unwrap();
    let (arrays, _) = run_sequential(&lp);
    assert_eq!(arrays[0].1, vec![0.0, 0.0, 0.0, 21.0]);
}
