//! Differential testing of the bytecode VM against the tree-walk
//! interpreter over randomly generated affine/guarded programs.
//!
//! The tree-walk interpreter is the oracle: the VM's lowering
//! (register allocation, constant pooling/folding, short-circuit jump
//! threading, fused marking ops, elision-as-codegen) must be
//! observationally invisible. Three observations per generated
//! program:
//!
//! 1. **Final arrays, byte-identical** (`f64::to_bits`) after a full
//!    speculative run — in the default elided mode *and* under
//!    `with_full_instrumentation` (which re-arms marking on the same
//!    bytecode via the declaration table);
//! 2. **Run shape**: stage count, restarts, and premature-exit point
//!    must match, or the two tiers scheduled different work;
//! 3. **Shadow mark state**: the dependence arcs the sliding-window
//!    test derives from the marks (flow/anti/output edge sets of the
//!    extracted DDG) must be set-identical — marks drive restarts, so
//!    any divergence in marking shows up here even when final values
//!    happen to agree.

use proptest::prelude::*;
use rlrpd_core::{extract_ddg, RunConfig, WindowConfig};
use rlrpd_lang::CompiledProgram;

/// Build a random guarded/affine program over A (strided + backward
/// refs), B (disjoint rows — elision candidates), and H (modulo
/// reduction). Subscripts stay in bounds by construction (sizes leave
/// `3n + 40` headroom). Templates deliberately cover every lowering
/// path: arithmetic, intrinsics, `&&`/`||` short-circuits whose rhs
/// has a marking side effect, nested ifs, non-reduction `⊕=`
/// read-modify-writes, and `break if`.
fn program(n: usize, stmts: &[(u8, usize, usize, usize)]) -> String {
    let sz = 3 * n + 40;
    let mut body = String::new();
    for &(kind, a, b, k) in stmts {
        let a = (a % 3) + 1; // stride 1..=3
        let b = b % 8; // offset 0..8
        let k = (k % (n / 4).max(1)) + 1; // backward distance 1..=n/4
        match kind % 10 {
            0 => body.push_str(&format!("  A[{a} * i + {b}] = i * 0.5 + {b};\n")),
            1 => body.push_str(&format!("  if i >= {k} {{ A[i] = A[i - {k}] + 1; }}\n")),
            2 => body.push_str(&format!("  B[i] = A[{a} * i + {b}] * 0.5;\n")),
            3 => body.push_str("  H[i % 8] += sqrt(i + 1);\n"),
            // Short-circuit guards whose rhs reads (marks) an array:
            // evaluation order is observable in the mark state.
            4 => body.push_str(&format!(
                "  if i >= {k} && A[i - {k}] > 0.5 {{ B[i] = max(A[i], {b}); }}\n"
            )),
            5 => body.push_str(&format!(
                "  if i % 5 == 0 || B[i] > 10 {{ A[i] = abs(B[i] - {b}) + floor(i * 0.5); }}\n"
            )),
            6 => body.push_str("  let v = A[i] + 1;\n  A[i] = min(v, 99);\n"),
            // Non-reduction compound update: lowers to the fused
            // load/op/store triple, not a Reduce.
            7 => body.push_str("  A[i] *= 1.0 + 1 / (i + 2);\n"),
            8 => body.push_str(&format!(
                "  if i > {k} {{\n    if B[i - 1] < 2 {{ B[i] = B[i] + {a}; }} \
                 else {{ B[i] = i; }}\n  }}\n"
            )),
            // Rare premature exit, far enough in that work happens.
            _ => body.push_str(&format!("  break if i == {n} - 2 + {b};\n")),
        }
    }
    format!("array A[{sz}] = 1;\narray B[{sz}] = 2;\narray H[8];\nfor i in 0..{n} {{\n{body}}}")
}

/// Run `prog` speculatively and return what the differential test
/// observes: final arrays, run shape, and (from a separate
/// sliding-window extraction) the mark-derived dependence edge sets.
#[allow(clippy::type_complexity)]
fn observe(
    prog: &CompiledProgram,
) -> (
    Vec<(&'static str, Vec<u64>)>,
    (usize, usize, Option<usize>),
    (Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<(u32, u32)>),
) {
    let res = prog.run(RunConfig::new(8));
    let arrays = res
        .arrays
        .iter()
        .map(|(name, data)| (*name, data.iter().map(|v| v.to_bits()).collect()))
        .collect();
    let report = &res.reports[0];
    let shape = (report.stages.len(), report.restarts, report.exited_at);
    let init = prog
        .program()
        .arrays
        .iter()
        .map(|d| vec![d.init; d.size])
        .collect();
    let lp = prog.loop_view(0, init);
    let ddg = extract_ddg(&lp, &RunConfig::new(8), WindowConfig::fixed(16));
    let mut edges = (ddg.graph.flow, ddg.graph.anti, ddg.graph.output);
    edges.0.sort_unstable();
    edges.1.sort_unstable();
    edges.2.sort_unstable();
    (arrays, shape, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// VM and tree-walk runs are byte-identical on final arrays, run
    /// shape, and shadow mark state — with elision on (default) and
    /// off (`with_full_instrumentation`).
    #[test]
    fn vm_is_byte_identical_to_the_tree_walk_oracle(
        n in 16usize..48,
        stmts in prop::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<usize>()),
            1..5,
        ),
    ) {
        let src = program(n, &stmts);
        for full_instrumentation in [false, true] {
            let build = |interp: bool| {
                let mut p = CompiledProgram::compile(&src)
                    .unwrap_or_else(|e| panic!("{src}\n{e}"));
                if full_instrumentation {
                    p = p.with_full_instrumentation();
                }
                if interp {
                    p = p.with_interpreter();
                }
                p
            };
            let (vm_arrays, vm_shape, vm_marks) = observe(&build(false));
            let (tw_arrays, tw_shape, tw_marks) = observe(&build(true));
            prop_assert_eq!(
                &vm_arrays, &tw_arrays,
                "final arrays diverged (full_instrumentation={}) on:\n{}",
                full_instrumentation, src
            );
            prop_assert_eq!(
                vm_shape, tw_shape,
                "run shape diverged (full_instrumentation={}) on:\n{}",
                full_instrumentation, src
            );
            prop_assert_eq!(
                &vm_marks, &tw_marks,
                "shadow mark state diverged (full_instrumentation={}) on:\n{}",
                full_instrumentation, src
            );
        }
    }
}
