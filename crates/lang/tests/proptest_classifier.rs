//! The symbolic dependence classifier (GCD test + Banerjee-style bound
//! intersection + interval analysis, `depend.rs`) against the exact
//! enumeration oracle (`classify_loop_exact`), over randomly generated
//! affine loops.
//!
//! The oracle evaluates every subscript of every iteration concretely —
//! the brute-force ground truth the paper-era compiler would never
//! afford at run time. The symbolic classifier must reach the *same*
//! class for every array without touching the iteration space. On the
//! affine fragment generated here (literal coefficients and offsets,
//! `i >= k` guards, `%`-subscripted reductions) the GCD/Banerjee
//! machinery is exact, so agreement is equality, not one-sided
//! soundness.

use proptest::prelude::*;
use rlrpd_lang::{classify_loop_exact, classify_program, parse};

/// Build a random affine loop over A (strided/backward refs), B
/// (disjoint writes and reads of A), and H (modulo reduction).
///
/// Every template keeps its subscripts in bounds by construction:
/// coefficients are at most 3, offsets at most 8, and the array sizes
/// leave headroom (`3n + 24`).
fn program(n: usize, stmts: &[(u8, usize, usize, usize)]) -> String {
    let sz = 3 * n + 24;
    let mut body = String::new();
    for &(kind, a, b, k) in stmts {
        let a = (a % 3) + 1; // stride 1..=3
        let b = b % 8; // offset 0..8
        let k = (k % (n / 4).max(1)) + 1; // backward distance 1..=n/4
        match kind % 6 {
            // Strided write: conflicts with any read/write that can
            // land on the same residue class.
            0 => body.push_str(&format!("  A[{a} * i + {b}] = i + {b};\n")),
            // Guarded backward read at literal distance k: a Must
            // dependence with distance k (demoted to May by the guard).
            1 => body.push_str(&format!("  if i >= {k} {{ A[i] = A[i - {k}] + 1; }}\n")),
            // Read A through an affine subscript, write B disjointly.
            2 => body.push_str(&format!("  B[i] = A[{a} * i + {b}] * 0.5;\n")),
            // Modulo-subscripted reduction: interval analysis gives the
            // subscript an opaque-but-finite range; the update-only
            // reference pattern classifies it as a reduction.
            3 => body.push_str("  H[i % 8] += 1;\n"),
            // Shifted write to B: write-write dependence at distance b
            // against template 2's B[i] when both are present.
            4 => body.push_str(&format!("  B[i + {b}] = i;\n")),
            // Same-iteration read-modify-write: no cross-iteration pair.
            _ => body.push_str("  let v = A[i] + 1;\n  A[i] = v;\n"),
        }
    }
    format!("array A[{sz}] = 1;\narray B[{sz}] = 2;\narray H[8];\nfor i in 0..{n} {{\n{body}}}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// The symbolic classifier's class equals the oracle's class for
    /// every array of every generated affine loop.
    #[test]
    fn symbolic_classifier_agrees_with_exact_oracle(
        n in 16usize..64,
        stmts in prop::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<usize>()),
            1..5,
        ),
    ) {
        let src = program(n, &stmts);
        let prog = parse(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let symbolic = classify_program(&prog);
        let exact = classify_loop_exact(&prog, 0);
        for (j, (s, e)) in symbolic[0].iter().zip(&exact).enumerate() {
            prop_assert_eq!(
                &s.class,
                e,
                "array {} of:\n{}\nsymbolic rationale: {}",
                prog.arrays[j].name,
                src,
                s.rationale
            );
        }
    }
}
