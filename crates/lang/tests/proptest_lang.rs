//! Property tests for the mini-language pass: generated programs run
//! identically under speculation and sequential execution, and the
//! static classifier is *semantics-preserving* — forcing every array
//! through the LRPD test (maximally conservative) must give the same
//! final state as the classifier's choices.

use proptest::prelude::*;
use rlrpd_core::{run_sequential, run_speculative, RunConfig, Strategy, WindowConfig};
use rlrpd_lang::compile;

/// A random but always-valid program over arrays A (size n), B (size
/// n), and H (size 8): a list of statement templates instantiated with
/// random constants.
fn program(n: usize, stmts: Vec<(u8, usize, usize)>) -> String {
    let mut body = String::new();
    for (kind, x, y) in stmts {
        let x = x % n;
        let y = (y % 20) + 1;
        match kind % 6 {
            // Affine self-update (statically safe).
            0 => body.push_str("  B[i] = B[i] + 1;\n"),
            // Backward read at data-independent but non-affine distance.
            1 => body.push_str(&format!(
                "  if i >= {y} {{ A[i] = A[i - {y}] * 0.5 + 1; }} else {{ A[i] = i; }}\n"
            )),
            // Scattered write under a guard.
            2 => body.push_str(&format!(
                "  if i % {} == 0 {{ A[(i * 7 + {x}) % {n}] = i; }}\n",
                (y % 7) + 2
            )),
            // Histogram reduction.
            3 => body.push_str(&format!("  H[(i + {x}) % 8] += 1;\n")),
            // Local computation feeding a write.
            4 => body.push_str(&format!(
                "  let v = A[(i + {x}) % {n}] + B[i];\n  A[i] = v * 0.25;\n"
            )),
            // Min/max intrinsics.
            _ => body.push_str(&format!("  B[i] = min(B[i], {y}) + max(i, {x});\n")),
        }
    }
    format!("array A[{n}] = 1;\narray B[{n}] = 2;\narray H[8];\nfor i in 0..{n} {{\n{body}}}")
}

fn stmt_vec() -> impl proptest::strategy::Strategy<Value = Vec<(u8, usize, usize)>> {
    prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Speculative execution of any generated program equals sequential
    /// execution, under every strategy.
    #[test]
    fn speculative_equals_sequential(
        n in 16usize..96,
        stmts in stmt_vec(),
        p in 1usize..9,
    ) {
        let src = program(n, stmts);
        let lp = compile(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let (seq, _) = run_sequential(&lp);
        for strategy in [
            Strategy::Nrd,
            Strategy::Rd,
            Strategy::SlidingWindow(WindowConfig::fixed(4)),
        ] {
            let spec = run_speculative(&lp, RunConfig::new(p).with_strategy(strategy));
            for ((sn, sv), (_, rv)) in seq.iter().zip(&spec.arrays) {
                for (a, b) in sv.iter().zip(rv) {
                    prop_assert!(
                        (a - b).abs() < 1e-9,
                        "array {sn} differs under {strategy:?}\n{src}"
                    );
                }
            }
        }
    }

    /// Classifier soundness: forcing EVERY array through the LRPD test
    /// (the maximally conservative classification) produces the same
    /// final state as the classifier's automatic choices — i.e. no
    /// array the classifier marked `untested`/`reduction` ever needed
    /// the test for correctness.
    #[test]
    fn classification_is_semantics_preserving(
        n in 16usize..64,
        stmts in stmt_vec(),
        p in 2usize..9,
    ) {
        let auto_src = program(n, stmts);
        // Force-hint every array as tested.
        let forced_src = auto_src
            .replace(&format!("array A[{n}] = 1;"), &format!("array A[{n}] = 1 : tested;"))
            .replace(&format!("array B[{n}] = 2;"), &format!("array B[{n}] = 2 : tested;"))
            .replace("array H[8];", "array H[8] : tested;");
        let auto_lp = compile(&auto_src).unwrap();
        let forced_lp = compile(&forced_src).unwrap();
        let a = run_speculative(&auto_lp, RunConfig::new(p));
        let f = run_speculative(&forced_lp, RunConfig::new(p));
        for ((an, av), (_, fv)) in a.arrays.iter().zip(&f.arrays) {
            for (x, y) in av.iter().zip(fv) {
                prop_assert!((x - y).abs() < 1e-9, "array {an} differs\n{auto_src}");
            }
        }
    }

    /// Parsing is total on generated sources, and classification is
    /// deterministic.
    #[test]
    fn compilation_is_deterministic(n in 16usize..64, stmts in stmt_vec()) {
        let src = program(n, stmts);
        let a = compile(&src).unwrap();
        let b = compile(&src).unwrap();
        let ca: Vec<_> = a.classifications().iter().map(|c| c.class).collect();
        let cb: Vec<_> = b.classifications().iter().map(|c| c.class).collect();
        prop_assert_eq!(ca, cb);
    }

    /// Pretty-print round trip: printing a parsed program and
    /// re-compiling it yields identical semantics and a printing
    /// fixpoint.
    #[test]
    fn pretty_print_round_trip(n in 16usize..64, stmts in stmt_vec()) {
        use rlrpd_lang::{print_program, CompiledProgram};
        let src = program(n, stmts);
        let p1 = CompiledProgram::compile(&src).unwrap();
        let printed = print_program(p1.program());
        let p2 = CompiledProgram::compile(&printed)
            .unwrap_or_else(|e| panic!("reprint failed: {e}\n{printed}"));
        prop_assert_eq!(
            print_program(p2.program()),
            printed.clone(),
            "printing must be a fixpoint"
        );
        let r1 = p1.run(RunConfig::new(4));
        let r2 = p2.run(RunConfig::new(4));
        for ((name, a), (_, b)) in r1.arrays.iter().zip(&r2.arrays) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-9, "array {name} differs\n{printed}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics: arbitrary input yields Ok or a
    /// positioned error, nothing else.
    #[test]
    fn parser_is_panic_free_on_arbitrary_input(src in "[ -~\\n]{0,200}") {
        let _ = rlrpd_lang::parse(&src);
    }

    /// Ditto for structured-looking garbage assembled from the
    /// language's own token vocabulary.
    #[test]
    fn parser_is_panic_free_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("array"), Just("scalar"), Just("counter"), Just("for"),
                Just("in"), Just("if"), Just("else"), Just("let"), Just("break"),
                Just("bump"), Just("cost"), Just("A"), Just("i"), Just("1"),
                Just("0.5"), Just("["), Just("]"), Just("{"), Just("}"),
                Just("("), Just(")"), Just(";"), Just(".."), Just("+"),
                Just("="), Just("+="), Just("&&"), Just("%"), Just("min"),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = rlrpd_lang::parse(&src);
    }
}
