//! DSL-source versions of the paper's kernels: TRACK, SPICE, and
//! NLFILT loop bodies written in the mini loop language, parameterized
//! by size.
//!
//! The hand-written Rust kernels in this crate (e.g. [`crate::nlfilt`])
//! are the *native* tier: full-speed closures the engines call
//! directly. These generators produce the same memory-reference
//! structure as loop-language source, so the compiled tiers —
//! tree-walk interpreter and register-bytecode VM — can be measured and
//! differentially tested on workloads with the paper's reference
//! shapes rather than toy bodies. `BENCH_compile.json` runs all three
//! tiers over exactly these sources.
//!
//! The sources are deterministic pure functions of `n`, so the
//! supervisor and a worker fleet (or two test backends) independently
//! regenerate identical programs.

/// TRACK-flavoured tracking-filter step (the `examples/programs/
/// tracking.rlp` shape, scaled to `n` work items): one full
/// predict/innovate/gate/update filter step per target — a scattered
/// state gather the compiler cannot analyze, a provably-disjoint work
/// array (shadow elided), a guarded scatter back into the state, and
/// an energy-histogram reduction. The body is arithmetic-dense on
/// purpose: FPTRAK is a floating-point filter, and the mul-add chains
/// are exactly what the bytecode tier's fused superinstructions
/// target.
pub fn track_dsl(n: usize) -> String {
    assert!(n >= 64, "TRACK deck needs at least 64 work items");
    format!(
        "array STATE[{state}] = 1;\n\
         array WORK[{n}];\n\
         array ENERGY[16];\n\
         \n\
         cost 25;\n\
         \n\
         for i in 0..{n} {{\n\
         \x20   let src = (i * 11 + 3) % {n};\n\
         \x20   let z = STATE[src];\n\
         \x20   let pr = z * 0.975 + i * 0.001;\n\
         \x20   let rs = z - pr * 0.955;\n\
         \x20   let w = abs(rs) * 0.25 + 0.125;\n\
         \x20   let g = min(w * 0.5 + 0.0625, 0.9);\n\
         \x20   let up = pr + g * rs;\n\
         \x20   let vel = z * 0.03 + pr * 0.01;\n\
         \x20   let acc = rs * 0.005 + vel * 0.875;\n\
         \x20   let p2 = up * 1.01 + vel * 0.125;\n\
         \x20   let bias = p2 * 0.0625 + acc * 0.25;\n\
         \x20   let damp = max(bias * 0.5 + acc * 0.125, 0.0375);\n\
         \x20   let e2 = rs * rs * 0.5 + up * up * 0.0225;\n\
         \x20   let sc = abs(up) * 0.0125 + w * 0.75;\n\
         \x20   let q = sqrt(e2 + 1);\n\
         \x20   let nv = up * 0.96875 + q * 0.03125;\n\
         \x20   let jr = acc * 0.375 + bias * 0.0125;\n\
         \x20   let fl = damp * 0.8125 + jr * 0.1875;\n\
         \x20   let d2 = vel * 0.4375 + acc * 0.5625;\n\
         \x20   let g2 = g * 0.96875 + w * 0.03125;\n\
         \x20   let h2 = d2 * g2 + fl * 0.375;\n\
         \x20   let en = e2 * 0.9375 + h2 * h2;\n\
         \x20   let mx = sc * 0.5625 + en * 0.0625;\n\
         \x20   let t2 = h2 * 0.5 + mx * 0.25;\n\
         \x20   WORK[i] = nv * 0.875 + t2 * 0.125;\n\
         \x20   if i % 32 == 0 {{\n\
         \x20       STATE[src + 40] = nv * 0.5 + z * 0.5;\n\
         \x20   }}\n\
         \x20   ENERGY[i % 16] += en * 0.5 + damp * damp;\n\
         }}\n",
        state = n + 88,
    )
}

/// SPICE-flavoured sparse-LU elimination (the DCDCMP_15 shape): each
/// unknown combines a handful of earlier unknowns through a fixed
/// stencil — heavily partially parallel, flow dependences at short
/// distances.
pub fn spice_dsl(n: usize) -> String {
    assert!(n >= 32, "SPICE deck needs at least 32 unknowns");
    format!(
        "array X[{n}] = 2;\n\
         \n\
         cost 10;\n\
         \n\
         for i in 0..{n} {{\n\
         \x20   if i >= 16 {{\n\
         \x20       let a = X[i - 16];\n\
         \x20       let b = X[i - (i % 7) - 1];\n\
         \x20       X[i] = X[i] - (a * 0.125 + b * 0.0625);\n\
         \x20   }} else {{\n\
         \x20       X[i] = X[i] + i;\n\
         \x20   }}\n\
         }}\n"
    )
}

/// NLFILT-flavoured guarded filter sweep (the NLFILT_300 shape):
/// a large state read through a pseudo-random permutation, rare
/// short-distance writes behind a data-dependent guard, and a
/// privatizable output row.
pub fn nlfilt_dsl(n: usize) -> String {
    assert!(n >= 64, "NLFILT deck needs at least 64 points");
    format!(
        "array NUSED[{state}] = 3;\n\
         array OUT[{n}];\n\
         \n\
         cost 40;\n\
         \n\
         for i in 0..{n} {{\n\
         \x20   let p = (i * 17 + 5) % {n};\n\
         \x20   let u = NUSED[p] * 0.25 + sqrt(i + 1);\n\
         \x20   OUT[i] = u;\n\
         \x20   if u - floor(u) < 0.02 {{\n\
         \x20       NUSED[p + 7] = u;\n\
         \x20   }}\n\
         }}\n",
        state = n + 16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_lang::CompiledProgram;

    #[test]
    fn all_decks_compile_at_reference_sizes() {
        for src in [track_dsl(512), spice_dsl(400), nlfilt_dsl(512)] {
            let prog = CompiledProgram::compile(&src).expect(&src);
            assert_eq!(prog.num_loops(), 1);
        }
    }

    #[test]
    fn decks_scale_and_stay_deterministic() {
        assert_eq!(track_dsl(4096), track_dsl(4096));
        for n in [64, 1024, 16384] {
            CompiledProgram::compile(&track_dsl(n)).unwrap();
            CompiledProgram::compile(&nlfilt_dsl(n)).unwrap();
        }
        for n in [32, 400, 4096] {
            CompiledProgram::compile(&spice_dsl(n)).unwrap();
        }
    }

    #[test]
    fn track_deck_exercises_elision_and_marking() {
        // The compiled tier must see both addressing modes: WORK is
        // provably disjoint (elided), STATE is under the test.
        let prog = CompiledProgram::compile(&track_dsl(512)).unwrap();
        let dis = prog.disassembly();
        assert!(dis.contains("st.mark"), "{dis}");
        assert!(dis.contains("ld.mark"), "{dis}");
        assert!(dis.contains("unmarked"), "{dis}");
        assert!(dis.contains("red.mark"), "{dis}");
    }
}
