//! TRACK, loop NLFILT_300.
//!
//! The paper: *"The compiler un-analyzable array that can cause
//! dependences (mostly short distances) is NUSED. Its write reference
//! is guarded by a loop variant condition."* The loop also carries a
//! large modified state (per-track filter state), which is why
//! on-demand checkpointing is its single most important optimization
//! (Fig. 12a), and its iteration costs are irregular, which is why
//! feedback-guided load balancing matters.
//!
//! The kernel: iteration `i` processes one track/observation pair —
//!
//! * reads `NUSED` at a handful of nearby slots (tested array),
//! * under an input-dependent guard, *writes* `NUSED` at a slot a short
//!   distance ahead of a later iteration's read — the short-distance
//!   flow dependences the paper describes,
//! * updates its own rows of the big filter `STATE` (untested,
//!   checkpointed),
//! * costs a track-dependent amount of work (heavy tails for FGLB).
//!
//! Input decks are modeled by [`NlfiltInput`]: the paper's "16-400" /
//! "15-250" labels become (tracks, iterations, guard rate, dependence
//! distance) tuples with seeded deterministic guard decisions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, ArrayId, IterCtx, ShadowKind, SpecLoop};

const NUSED: ArrayId = ArrayId(0);
const STATE: ArrayId = ArrayId(1);

/// Width of one iteration's STATE stripe.
const STATE_STRIDE: usize = 16;

/// An input deck for NLFILT_300.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NlfiltInput {
    /// Label used in reports ("16-400" etc.).
    pub name: &'static str,
    /// Iterations of the loop (observations × tracks).
    pub n: usize,
    /// Size of the NUSED array (number of track slots).
    pub slots: usize,
    /// Probability that an iteration's guarded NUSED write fires.
    pub write_rate: f64,
    /// Maximum forward distance (in iterations) at which a guarded
    /// write collides with a later read — "mostly short distances".
    pub max_distance: usize,
    /// RNG seed standing in for the rest of the deck.
    pub seed: u64,
}

impl NlfiltInput {
    /// The paper's largest input: many tracks, moderately frequent
    /// guarded writes.
    pub fn i16_400() -> Self {
        NlfiltInput {
            name: "16-400",
            n: 6400,
            slots: 6400,
            write_rate: 0.012,
            max_distance: 24,
            seed: 0x16_0400,
        }
    }

    /// The paper's second input: fewer tracks, denser dependences.
    pub fn i15_250() -> Self {
        NlfiltInput {
            name: "15-250",
            n: 3750,
            slots: 3750,
            write_rate: 0.010,
            max_distance: 50,
            seed: 0x15_0250,
        }
    }

    /// A small, mostly parallel deck.
    pub fn i8_100() -> Self {
        NlfiltInput {
            name: "8-100",
            n: 800,
            slots: 800,
            write_rate: 0.004,
            max_distance: 12,
            seed: 0x08_0100,
        }
    }

    /// A dense, heavily dependent deck.
    pub fn i4_50() -> Self {
        NlfiltInput {
            name: "4-50",
            n: 200,
            slots: 200,
            write_rate: 0.05,
            max_distance: 20,
            seed: 0x04_0050,
        }
    }

    /// All decks used by the figure benches.
    pub fn all() -> Vec<NlfiltInput> {
        vec![
            Self::i16_400(),
            Self::i15_250(),
            Self::i8_100(),
            Self::i4_50(),
        ]
    }
}

/// One iteration's precomputed reference plan (the deck decides it; the
/// body replays it deterministically).
#[derive(Clone, Debug)]
struct IterPlan {
    /// NUSED slots read by the filter update.
    reads: Vec<usize>,
    /// Guarded NUSED write target, when the guard fires.
    write: Option<usize>,
    /// Work of this iteration (irregular; heavy when the track gate
    /// opens).
    cost: f64,
}

/// The NLFILT_300 kernel.
#[derive(Clone, Debug)]
pub struct NlfiltLoop {
    input: NlfiltInput,
    plans: Vec<IterPlan>,
    state_size: usize,
}

impl NlfiltLoop {
    /// Instantiate the kernel for one input deck.
    pub fn new(input: NlfiltInput) -> Self {
        let mut rng = StdRng::seed_from_u64(input.seed);
        let slot_of = |i: usize, slots: usize| i % slots;
        let plans = (0..input.n)
            .map(|i| {
                let base = slot_of(i, input.slots);
                // The filter reads its own slot and two neighbours.
                let reads = vec![
                    base,
                    (base + 1) % input.slots,
                    (base + input.slots - 1) % input.slots,
                ];
                // Guarded write: fires rarely, targets the slot a later
                // iteration (i + d) will read as ITS base slot — a
                // short-distance cross-iteration flow dependence.
                let write = if rng.random_bool(input.write_rate) {
                    let d = rng.random_range(1..=input.max_distance);
                    if i + d < input.n {
                        Some(slot_of(i + d, input.slots))
                    } else {
                        None
                    }
                } else {
                    None
                };
                // Irregular work: most iterations are cheap, some open
                // the full nonlinear-filter gate.
                let cost = if rng.random_bool(0.2) {
                    rng.random_range(4.0..12.0)
                } else {
                    rng.random_range(0.5..2.0)
                };
                IterPlan { reads, write, cost }
            })
            .collect();
        NlfiltLoop {
            input,
            plans,
            state_size: input.n * STATE_STRIDE,
        }
    }

    /// The input deck.
    pub fn input(&self) -> &NlfiltInput {
        &self.input
    }

    /// Number of planted guarded writes (diagnostics).
    pub fn num_guarded_writes(&self) -> usize {
        self.plans.iter().filter(|p| p.write.is_some()).count()
    }
}

impl SpecLoop for NlfiltLoop {
    fn num_iters(&self) -> usize {
        self.input.n
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![
            ArrayDecl::tested("NUSED", vec![1.0; self.input.slots], ShadowKind::Dense),
            // The big modified filter state: statically analyzable
            // (iteration i owns stripe i) but needing checkpoints.
            ArrayDecl::untested("STATE", vec![0.0; self.state_size]),
        ]
    }

    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        let plan = &self.plans[i];
        let mut acc = 0.0;
        for &r in &plan.reads {
            acc += ctx.read(NUSED, r);
        }
        if let Some(w) = plan.write {
            // The loop-variant guard fired: extend/overwrite the slot.
            ctx.write(NUSED, w, acc * 0.5 + i as f64);
        }
        // Update this iteration's stripe of the filter state.
        let base = i * STATE_STRIDE;
        for k in 0..STATE_STRIDE {
            let old = ctx.read(STATE, base + k);
            ctx.write(STATE, base + k, old + acc + k as f64);
        }
    }

    fn cost(&self, i: usize) -> f64 {
        self.plans[i].cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_sequential, run_speculative, CheckpointPolicy, RunConfig, Strategy};

    #[test]
    fn decks_are_deterministic() {
        let a = NlfiltLoop::new(NlfiltInput::i15_250());
        let b = NlfiltLoop::new(NlfiltInput::i15_250());
        assert_eq!(a.num_guarded_writes(), b.num_guarded_writes());
    }

    #[test]
    fn all_decks_have_guarded_writes() {
        for input in NlfiltInput::all() {
            let lp = NlfiltLoop::new(input);
            assert!(
                lp.num_guarded_writes() > 0,
                "{} has no dependences",
                input.name
            );
        }
    }

    #[test]
    fn matches_sequential_under_both_checkpoint_policies() {
        let lp = NlfiltLoop::new(NlfiltInput::i4_50());
        let (seq, _) = run_sequential(&lp);
        for ckpt in [CheckpointPolicy::OnDemand, CheckpointPolicy::Eager] {
            let spec = run_speculative(
                &lp,
                RunConfig::new(4)
                    .with_strategy(Strategy::Rd)
                    .with_checkpoint(ckpt),
            );
            assert_eq!(spec.array("NUSED"), seq[0].1.as_slice(), "{ckpt:?}");
            assert_eq!(spec.array("STATE"), seq[1].1.as_slice(), "{ckpt:?}");
        }
    }

    #[test]
    fn dense_deck_restarts_more_than_sparse_deck() {
        let sparse = run_speculative(
            &NlfiltLoop::new(NlfiltInput::i8_100()),
            RunConfig::new(8).with_strategy(Strategy::Rd),
        );
        let dense = run_speculative(
            &NlfiltLoop::new(NlfiltInput::i4_50()),
            RunConfig::new(8).with_strategy(Strategy::Rd),
        );
        assert!(
            dense.report.restarts >= sparse.report.restarts,
            "dense {} vs sparse {}",
            dense.report.restarts,
            sparse.report.restarts
        );
    }

    #[test]
    fn pr_degrades_with_processor_count() {
        // Only inter-processor dependences trigger restarts, so more
        // processors can only uncover more of them (Fig. 7a's shape).
        let lp = NlfiltLoop::new(NlfiltInput::i15_250());
        let pr_at = |p| {
            run_speculative(&lp, RunConfig::new(p).with_strategy(Strategy::Nrd))
                .report
                .pr()
        };
        let pr2 = pr_at(2);
        let pr16 = pr_at(16);
        assert!(pr16 <= pr2, "PR(16)={pr16} should not exceed PR(2)={pr2}");
    }
}
