//! The SPICE analysis harness: Newton iterations over one circuit,
//! amortizing the DDG extraction.
//!
//! SPICE re-solves the same sparse system every Newton iteration of
//! every timepoint: the circuit *topology* — and therefore DCDCMP's
//! dependence structure — is fixed, only the numeric values change.
//! That is exactly why the paper extracts the DDG **once** with the
//! sparse sliding-window R-LRPD test and generates a wavefront schedule
//! "which can then be reused throughout the remainder of the program
//! execution". This harness reproduces the workflow:
//!
//! * iteration 0 pays the speculative extraction (and is itself a
//!   correct execution of the loop);
//! * iterations 1..N replay the cached [`WavefrontSchedule`];
//! * BJT model evaluation (speculative sparse reductions) and the
//!   premature-exit check loop run every iteration;
//! * the report separates the one-time extraction cost from the
//!   steady-state per-iteration time, showing the amortization.

use crate::spice::{BjtLoop, Dcdcmp15Loop, Dcdcmp70Loop};
use rlrpd_core::{
    execute_wavefronts, extract_ddg, run_speculative, CostModel, ExecMode, RunConfig, Strategy,
    WavefrontSchedule, WindowConfig,
};

/// One circuit's analysis state with the cached wavefront schedule.
pub struct SpiceProgram {
    lu: Dcdcmp15Loop,
    bjt: BjtLoop,
    check: Dcdcmp70Loop,
    /// Extracted on the first Newton iteration, reused afterwards.
    schedule: Option<WavefrontSchedule>,
}

/// Per-iteration timing split.
#[derive(Clone, Debug)]
pub struct NewtonReport {
    /// Virtual time of the one-time DDG extraction (iteration 0 only).
    pub extraction_time: f64,
    /// Virtual time of one steady-state Newton iteration (LU wavefront
    /// + BJT + check loop).
    pub steady_state_time: f64,
    /// Sequential virtual work of one Newton iteration.
    pub sequential_work: f64,
    /// Newton iterations executed.
    pub iterations: usize,
    /// Flow critical path of the extracted DDG.
    pub critical_path: usize,
}

impl NewtonReport {
    /// Steady-state speedup (schedule cost amortized away).
    pub fn steady_state_speedup(&self) -> f64 {
        self.sequential_work / self.steady_state_time
    }

    /// End-to-end speedup including the one-time extraction.
    pub fn total_speedup(&self) -> f64 {
        let total = self.extraction_time + self.steady_state_time * self.iterations as f64;
        (self.sequential_work * self.iterations as f64) / total
    }
}

impl SpiceProgram {
    /// A small synthetic circuit (for tests and quick runs).
    pub fn small(seed: u64) -> Self {
        SpiceProgram {
            lu: Dcdcmp15Loop::small(seed),
            bjt: BjtLoop::new(400, 64, seed),
            check: Dcdcmp70Loop::new(600, 599),
            schedule: None,
        }
    }

    /// The adder.128-shaped deck (14337 unknowns, CP 334).
    pub fn adder128() -> Self {
        SpiceProgram {
            lu: Dcdcmp15Loop::adder128(),
            bjt: BjtLoop::adder128(),
            check: Dcdcmp70Loop::new(12000, 11999),
            schedule: None,
        }
    }

    /// Run `iterations` Newton iterations on `p` processors.
    pub fn run(&mut self, iterations: usize, p: usize, cost: CostModel) -> NewtonReport {
        assert!(iterations >= 1);
        let cfg = RunConfig::new(p).with_cost(cost);

        // One-time: extract the DDG speculatively (a correct execution)
        // and build the reusable schedule.
        let mut extraction_time = 0.0;
        if self.schedule.is_none() {
            let ddg = extract_ddg(&self.lu, &cfg, WindowConfig::fixed(64));
            extraction_time = ddg.run.report.virtual_time();
            self.schedule = Some(WavefrontSchedule::from_graph(&ddg.graph));
        }
        let schedule = self.schedule.as_ref().expect("cached above");

        // Steady state: wavefront LU + speculative BJT + check loop.
        let (_, lu_report) = execute_wavefronts(&self.lu, schedule, p, ExecMode::Simulated, cost);
        let bjt = run_speculative(
            &self.bjt,
            RunConfig::new(p)
                .with_strategy(Strategy::Nrd)
                .with_cost(cost),
        );
        let check = run_speculative(
            &self.check,
            RunConfig::new(p)
                .with_strategy(Strategy::Nrd)
                .with_cost(cost),
        );

        NewtonReport {
            extraction_time,
            steady_state_time: lu_report.virtual_time
                + bjt.report.virtual_time()
                + check.report.virtual_time(),
            sequential_work: lu_report.sequential_work
                + bjt.report.sequential_work
                + check.report.sequential_work,
            iterations,
            critical_path: schedule.depth(),
        }
    }

    /// The cached schedule, if extracted (e.g. to persist with
    /// [`WavefrontSchedule::to_bytes`]).
    pub fn schedule(&self) -> Option<&WavefrontSchedule> {
        self.schedule.as_ref()
    }

    /// Install a previously persisted schedule, skipping extraction.
    ///
    /// # Panics
    /// Panics if the schedule does not cover the LU loop.
    pub fn install_schedule(&mut self, schedule: WavefrontSchedule) {
        use rlrpd_core::SpecLoop;
        assert_eq!(
            schedule.num_iters(),
            self.lu.num_iters(),
            "schedule/deck mismatch"
        );
        self.schedule = Some(schedule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_happens_once_and_amortizes() {
        let mut prog = SpiceProgram::small(5);
        let first = prog.run(10, 8, CostModel::default());
        assert!(first.extraction_time > 0.0);
        assert!(
            first.total_speedup() < first.steady_state_speedup(),
            "extraction must cost something"
        );
        // Second call reuses the cached schedule: no extraction cost.
        let second = prog.run(10, 8, CostModel::default());
        assert_eq!(second.extraction_time, 0.0);
        assert_eq!(second.steady_state_time, first.steady_state_time);
    }

    #[test]
    fn amortization_improves_with_iteration_count() {
        let report = |iters| {
            let mut prog = SpiceProgram::small(5);
            prog.run(iters, 8, CostModel::default()).total_speedup()
        };
        let short = report(1);
        let long = report(50);
        assert!(
            long > short,
            "more Newton iterations amortize the extraction: {short} vs {long}"
        );
    }

    #[test]
    fn persisted_schedule_round_trips_through_install() {
        let mut a = SpiceProgram::small(9);
        let r1 = a.run(2, 4, CostModel::default());
        let bytes = a.schedule().unwrap().to_bytes();

        let mut b = SpiceProgram::small(9);
        b.install_schedule(WavefrontSchedule::from_bytes(&bytes).unwrap());
        let r2 = b.run(2, 4, CostModel::default());
        assert_eq!(
            r2.extraction_time, 0.0,
            "no extraction with an installed schedule"
        );
        assert_eq!(r1.steady_state_time, r2.steady_state_time);
        assert_eq!(r1.critical_path, r2.critical_path);
    }

    #[test]
    #[should_panic(expected = "schedule/deck mismatch")]
    fn mismatched_schedule_is_rejected() {
        let mut a = SpiceProgram::small(9);
        a.run(1, 4, CostModel::default());
        let bytes = a.schedule().unwrap().to_bytes();
        let mut other = SpiceProgram::adder128();
        other.install_schedule(WavefrontSchedule::from_bytes(&bytes).unwrap());
    }
}
