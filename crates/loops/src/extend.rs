//! TRACK, loop EXTEND_400.
//!
//! The paper: *"This loop reads data from a read-only part of an array
//! and always writes at the end of the same arrays that are being
//! extended at every iteration. It first extends them in a temporary
//! manner by one slot. If some loop variant condition does not
//! materialize then the newly created slot (track) is re-used
//! (overwritten) in the next iteration. … These arrays are indexed by a
//! counter (LSTTRK) that is incremented conditionally and whose values
//! cannot be precomputed."*
//!
//! The kernel implements exactly that pattern against
//! [`rlrpd_core::InductionLoop`]: iteration `i` reads a few slots of
//! the read-only prefix (the existing tracks), writes a candidate track
//! into the slot at the current counter (the temporary extension), and
//! — when the input-dependent gate fires — bumps LSTTRK to make the
//! extension permanent. Unbumped slots are overwritten by the next
//! iteration; the one-slot overlap between consecutive processors is
//! resolved by the last-value commit of the two-pass scheme.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, IndCtx, InductionLoop, ShadowKind};

/// Declaration index of the TRACK array.
const TRACK: usize = 0;

/// An input deck for EXTEND_400.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtendInput {
    /// Label used in reports.
    pub name: &'static str,
    /// Iterations (candidate observations).
    pub n: usize,
    /// Existing tracks at loop entry (the read-only prefix, and the
    /// initial LSTTRK).
    pub initial_tracks: usize,
    /// Probability an iteration's extension becomes permanent.
    pub accept_rate: f64,
    /// Probability a probe wildly targets the *extension* region
    /// (indices at/above the initial counter). Any such probe makes the
    /// range test fail and forces the sequential fallback — the restart
    /// that pushes PR below 1 on contended decks.
    pub wild_probe_rate: f64,
    /// RNG seed standing in for the deck.
    pub seed: u64,
}

impl ExtendInput {
    /// Dense acceptance (many new tracks).
    pub fn dense() -> Self {
        ExtendInput {
            name: "dense",
            n: 4000,
            initial_tracks: 600,
            accept_rate: 0.35,
            wild_probe_rate: 0.0,
            seed: 0xE1,
        }
    }

    /// Sparse acceptance (few new tracks).
    pub fn sparse() -> Self {
        ExtendInput {
            name: "sparse",
            n: 4000,
            initial_tracks: 600,
            accept_rate: 0.05,
            wild_probe_rate: 0.0,
            seed: 0xE2,
        }
    }

    /// A deck whose observations occasionally correlate against the
    /// extension region itself: the range test fails and the loop falls
    /// back to sequential execution.
    pub fn contended() -> Self {
        ExtendInput {
            name: "contended",
            n: 4000,
            initial_tracks: 600,
            accept_rate: 0.2,
            wild_probe_rate: 0.001,
            seed: 0xE3,
        }
    }

    /// All decks used by the figure benches.
    pub fn all() -> Vec<ExtendInput> {
        vec![Self::dense(), Self::sparse(), Self::contended()]
    }
}

/// The EXTEND_400 kernel.
#[derive(Clone, Debug)]
pub struct ExtendLoop {
    input: ExtendInput,
    /// Per-iteration accept decision (input-dependent gate).
    accept: Vec<bool>,
    /// Per-iteration read targets in the read-only prefix.
    probes: Vec<[usize; 2]>,
    capacity: usize,
}

impl ExtendLoop {
    /// Instantiate the kernel for one input deck.
    pub fn new(input: ExtendInput) -> Self {
        let mut rng = StdRng::seed_from_u64(input.seed);
        let accept = (0..input.n)
            .map(|_| rng.random_bool(input.accept_rate))
            .collect();
        let probes = (0..input.n)
            .map(|i| {
                let wild = input.wild_probe_rate > 0.0 && rng.random_bool(input.wild_probe_rate);
                let a = if wild {
                    // Correlate against a recently extended track: lands
                    // in the written region, tripping the range test.
                    input.initial_tracks + i / 2
                } else {
                    rng.random_range(0..input.initial_tracks)
                };
                [a, rng.random_range(0..input.initial_tracks)]
            })
            .collect();
        ExtendLoop {
            input,
            accept,
            probes,
            // Room for every extension plus the final temporary slot.
            capacity: input.initial_tracks + input.n + 1,
        }
    }

    /// The input deck.
    pub fn input(&self) -> &ExtendInput {
        &self.input
    }

    /// How many extensions the deck accepts (== final LSTTRK − initial).
    pub fn expected_accepts(&self) -> usize {
        self.accept.iter().filter(|&&a| a).count()
    }
}

impl InductionLoop for ExtendLoop {
    fn num_iters(&self) -> usize {
        self.input.n
    }

    fn initial_counter(&self) -> usize {
        self.input.initial_tracks
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        let mut init = vec![0.0; self.capacity];
        for (k, v) in init.iter_mut().enumerate().take(self.input.initial_tracks) {
            *v = 1.0 + k as f64; // the existing tracks
        }
        vec![ArrayDecl::tested("TRACK", init, ShadowKind::Sparse)]
    }

    fn body(&self, i: usize, ctx: &mut IndCtx<'_, f64>) {
        // Correlate the observation against existing tracks (read-only
        // prefix: indices < initial LSTTRK, offset-independent).
        let a = ctx.read(TRACK, self.probes[i][0]);
        let b = ctx.read(TRACK, self.probes[i][1]);
        // Temporarily extend by one slot at the current counter.
        let slot = ctx.counter();
        ctx.write(TRACK, slot, a * 0.5 + b * 0.25 + i as f64);
        if self.accept[i] {
            // The loop-variant condition materialized: keep the slot.
            ctx.bump();
        }
        // Otherwise the slot is re-used (overwritten) by the next
        // iteration.
    }

    fn cost(&self, _i: usize) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_induction, CostModel, ExecMode};

    /// Ground truth: run the extend pattern sequentially by hand.
    fn sequential_extend(lp: &ExtendLoop) -> (Vec<f64>, usize) {
        let mut track = match lp.arrays().pop() {
            Some(d) => d.init,
            None => unreachable!(),
        };
        let mut counter = lp.input.initial_tracks;
        for i in 0..lp.input.n {
            let a = track[lp.probes[i][0]];
            let b = track[lp.probes[i][1]];
            track[counter] = a * 0.5 + b * 0.25 + i as f64;
            if lp.accept[i] {
                counter += 1;
            }
        }
        (track, counter)
    }

    #[test]
    fn two_pass_scheme_matches_sequential() {
        for input in ExtendInput::all() {
            let lp = ExtendLoop::new(input);
            let (expect, final_counter) = sequential_extend(&lp);
            let res = run_induction(&lp, 8, ExecMode::Simulated, CostModel::default());
            let should_pass = input.wild_probe_rate == 0.0;
            assert_eq!(
                res.test_passed, should_pass,
                "{}: range test outcome",
                input.name
            );
            // Pass or fall back — the result is always correct.
            assert_eq!(res.final_counter, final_counter, "{}", input.name);
            assert_eq!(res.arrays[0].1, expect, "{}", input.name);
            if should_pass {
                assert_eq!(res.report.stages.len(), 2, "two doalls");
                assert_eq!(res.report.restarts, 0);
            } else {
                assert_eq!(res.report.restarts, 1, "sequential fallback");
            }
        }
    }

    #[test]
    fn contended_deck_fails_range_test_but_stays_correct() {
        let lp = ExtendLoop::new(ExtendInput::contended());
        let (expect, _) = sequential_extend(&lp);
        let res = run_induction(&lp, 8, ExecMode::Simulated, CostModel::default());
        assert!(!res.test_passed);
        assert_eq!(res.arrays[0].1, expect);
        assert!(res.report.pr() < 1.0);
    }

    #[test]
    fn final_counter_counts_accepts() {
        let lp = ExtendLoop::new(ExtendInput::sparse());
        let res = run_induction(&lp, 4, ExecMode::Simulated, CostModel::default());
        assert_eq!(
            res.final_counter,
            lp.input.initial_tracks + lp.expected_accepts()
        );
    }

    #[test]
    fn works_on_one_processor() {
        let lp = ExtendLoop::new(ExtendInput::dense());
        let (expect, _) = sequential_extend(&lp);
        let res = run_induction(&lp, 1, ExecMode::Simulated, CostModel::default());
        assert!(res.test_passed);
        assert_eq!(res.arrays[0].1, expect);
    }
}
