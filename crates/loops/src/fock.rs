//! A GAUSSIAN-style Fock-matrix construction kernel.
//!
//! The paper's introduction lists GAUSSIAN among the complex
//! simulations static analysis cannot handle. Its hot loop runs over
//! the non-negligible two-electron integrals `(ij|kl)` — an
//! input-dependent, screened list of index quadruples — and scatters
//! each integral's contributions into up to six Fock-matrix entries
//! selected by the quadruple's symmetry: a textbook irregular
//! *reduction* through four-way indirection, with the screening making
//! the reference pattern undecidable at compile time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, ArrayId, IterCtx, Reduction, ShadowKind, SpecLoop};

const FOCK: ArrayId = ArrayId(0);
const DENSITY: ArrayId = ArrayId(1);

/// One screened two-electron integral and its basis-function indices.
#[derive(Clone, Copy, Debug)]
struct Quartet {
    i: u32,
    j: u32,
    k: u32,
    l: u32,
    value: f64,
}

/// The Fock-build loop: one iteration per surviving integral quartet.
#[derive(Clone, Debug)]
pub struct FockBuildLoop {
    basis: usize,
    quartets: Vec<Quartet>,
}

impl FockBuildLoop {
    /// A synthetic screened integral list over `basis` functions with
    /// `quartets` surviving integrals, deterministic in `seed`.
    pub fn new(basis: usize, quartets: usize, seed: u64) -> Self {
        assert!(basis >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let quartets = (0..quartets)
            .map(|_| {
                // Screening keeps mostly near-diagonal quartets.
                let i = rng.random_range(0..basis as u32);
                let near = |c: u32, rng: &mut StdRng| {
                    let lo = c.saturating_sub(8);
                    let hi = (c + 8).min(basis as u32 - 1);
                    rng.random_range(lo..=hi)
                };
                let j = near(i, &mut rng);
                let k = rng.random_range(0..basis as u32);
                let l = near(k, &mut rng);
                Quartet {
                    i,
                    j,
                    k,
                    l,
                    value: rng.random_range(-1.0..1.0),
                }
            })
            .collect();
        FockBuildLoop { basis, quartets }
    }

    /// A deck comparable to a small molecule run.
    pub fn reference() -> Self {
        Self::new(160, 6000, 0x6A55)
    }

    #[inline]
    fn idx(&self, a: u32, b: u32) -> usize {
        a as usize * self.basis + b as usize
    }
}

impl SpecLoop for FockBuildLoop {
    fn num_iters(&self) -> usize {
        self.quartets.len()
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![
            ArrayDecl::reduction(
                "FOCK",
                vec![0.0; self.basis * self.basis],
                ShadowKind::Sparse,
                Reduction::sum(),
            ),
            // The density matrix is read-only during the Fock build.
            ArrayDecl::untested(
                "DENSITY",
                (0..self.basis * self.basis)
                    .map(|k| ((k % 23) as f64 - 11.0) * 0.05)
                    .collect(),
            ),
        ]
    }

    fn body(&self, q: usize, ctx: &mut IterCtx<'_, f64>) {
        let Quartet { i, j, k, l, value } = self.quartets[q];
        // Coulomb terms: J_ij += (ij|kl) D_kl ; J_kl += (ij|kl) D_ij.
        let d_kl = ctx.read(DENSITY, self.idx(k, l));
        let d_ij = ctx.read(DENSITY, self.idx(i, j));
        ctx.reduce(FOCK, self.idx(i, j), value * d_kl);
        ctx.reduce(FOCK, self.idx(k, l), value * d_ij);
        // Exchange terms: K_ik -= ½ (ij|kl) D_jl ; K_jl -= ½ (ij|kl) D_ik.
        let d_jl = ctx.read(DENSITY, self.idx(j, l));
        let d_ik = ctx.read(DENSITY, self.idx(i, k));
        ctx.reduce(FOCK, self.idx(i, k), -0.5 * value * d_jl);
        ctx.reduce(FOCK, self.idx(j, l), -0.5 * value * d_ik);
    }

    fn cost(&self, _q: usize) -> f64 {
        6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_sequential, run_speculative, RunConfig, Strategy};

    #[test]
    fn fock_build_validates_as_reductions_in_one_stage() {
        let lp = FockBuildLoop::new(40, 800, 3);
        for strategy in [Strategy::Nrd, Strategy::Rd] {
            let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(strategy));
            assert_eq!(
                spec.report.stages.len(),
                1,
                "scattered reductions never conflict ({strategy:?})"
            );
            assert_eq!(spec.report.pr(), 1.0);
        }
    }

    #[test]
    fn fock_matches_sequential_within_rounding() {
        let lp = FockBuildLoop::new(32, 500, 9);
        let (seq, _) = run_sequential(&lp);
        let spec = run_speculative(&lp, RunConfig::new(4));
        for (a, b) in spec.array("FOCK").iter().zip(&seq[0].1) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(
            spec.array("DENSITY"),
            seq[1].1.as_slice(),
            "density untouched"
        );
    }

    #[test]
    fn screening_is_deterministic() {
        let a = FockBuildLoop::new(64, 300, 5);
        let b = FockBuildLoop::new(64, 300, 5);
        let ka: Vec<u32> = a.quartets.iter().map(|q| q.i).collect();
        let kb: Vec<u32> = b.quartets.iter().map(|q| q.i).collect();
        assert_eq!(ka, kb);
    }
}
