//! Synthetic loops with engineered dependence structure.
//!
//! These drive the analytical-model validation (the paper's Fig. 4 runs
//! a synthetic α = 1/2 loop on 8 processors), the strategy/window
//! benches, and the property tests. Each loop writes `A[i]` at every
//! iteration and plants *flow-dependence sinks* — iterations that first
//! read an element a strictly earlier iteration wrote — at engineered
//! positions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, ArrayId, IterCtx, ShadowKind, SpecLoop};

const A: ArrayId = ArrayId(0);

fn decls(n: usize) -> Vec<ArrayDecl<f64>> {
    vec![ArrayDecl::tested("A", vec![0.0; n], ShadowKind::Dense)]
}

/// Body shared by the planted-sink loops: every iteration writes its
/// own element; sink iterations first read the element their source
/// wrote.
fn planted_body(i: usize, src_of: Option<usize>, ctx: &mut IterCtx<'_, f64>) {
    let v = match src_of {
        Some(src) => ctx.read(A, src) + 1.0,
        None => i as f64,
    };
    ctx.write(A, i, v);
}

/// A geometric (α) loop: under redistribution into even blocks, each
/// speculative stage completes a fraction `1 − α` of the *remaining*
/// iterations.
///
/// Construction: dependence sinks at `s_j = ⌈n·(1 − α^j)⌉`, each
/// reading the element written by iteration `s_j − 1`. Stage `j`'s
/// earliest sink is `s_j`, so the remainder after stage `j` is
/// `n − s_j = n·α^j`.
#[derive(Clone, Debug)]
pub struct AlphaLoop {
    n: usize,
    omega: f64,
    /// `src_of[i]` = the source iteration sink `i` reads from.
    src_of: Vec<Option<usize>>,
    /// The planted sink positions, ascending.
    pub sinks: Vec<usize>,
}

impl AlphaLoop {
    /// An α-loop of `n` iterations with `omega` work per iteration.
    pub fn new(n: usize, alpha: f64, omega: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha));
        let mut src_of = vec![None; n];
        let mut sinks = Vec::new();
        if alpha > 0.0 {
            let mut frac = 1.0;
            loop {
                frac *= alpha;
                let s = ((n as f64) * (1.0 - frac)).ceil() as usize;
                if s == 0 || s >= n {
                    break;
                }
                if src_of[s].is_none() {
                    src_of[s] = Some(s - 1);
                    sinks.push(s);
                }
            }
        }
        AlphaLoop {
            n,
            omega,
            src_of,
            sinks,
        }
    }
}

impl SpecLoop for AlphaLoop {
    fn num_iters(&self) -> usize {
        self.n
    }
    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        decls(self.n)
    }
    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        planted_body(i, self.src_of[i], ctx);
    }
    fn cost(&self, _i: usize) -> f64 {
        self.omega
    }
}

/// A linear (β) loop: a constant fraction `1 − β` of the *original*
/// iterations completes per NRD stage — i.e. a constant number of
/// processors succeeds each time.
///
/// Construction for `p` processors with `c` blocks completing per
/// stage: every `c`-th block boundary is a sink reading the previous
/// iteration. β = (p − c)/p.
#[derive(Clone, Debug)]
pub struct BetaLoop {
    n: usize,
    omega: f64,
    src_of: Vec<Option<usize>>,
}

impl BetaLoop {
    /// A β-loop for `p` even blocks with `blocks_per_stage` of them
    /// completing per stage.
    pub fn new(n: usize, p: usize, blocks_per_stage: usize, omega: f64) -> Self {
        assert!(p > 0 && blocks_per_stage > 0);
        let mut src_of = vec![None; n];
        let base = n / p;
        let extra = n % p;
        let block_start = |k: usize| k * base + k.min(extra);
        let mut k = blocks_per_stage;
        while k < p {
            let s = block_start(k);
            if s > 0 && s < n {
                src_of[s] = Some(s - 1);
            }
            k += blocks_per_stage;
        }
        BetaLoop { n, omega, src_of }
    }
}

impl SpecLoop for BetaLoop {
    fn num_iters(&self) -> usize {
        self.n
    }
    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        decls(self.n)
    }
    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        planted_body(i, self.src_of[i], ctx);
    }
    fn cost(&self, _i: usize) -> f64 {
        self.omega
    }
}

/// A fully parallel loop (β = 0): disjoint writes, reads of the
/// read-only initial state only. One speculative stage, PR = 1.
#[derive(Clone, Debug)]
pub struct FullyParallelLoop {
    n: usize,
    omega: f64,
}

impl FullyParallelLoop {
    /// `n` iterations of `omega` work each.
    pub fn new(n: usize, omega: f64) -> Self {
        FullyParallelLoop { n, omega }
    }
}

impl SpecLoop for FullyParallelLoop {
    fn num_iters(&self) -> usize {
        self.n
    }
    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        decls(self.n)
    }
    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        planted_body(i, None, ctx);
    }
    fn cost(&self, _i: usize) -> f64 {
        self.omega
    }
}

/// A fully sequential chain: every iteration reads its predecessor's
/// element. Under NRD exactly one block completes per stage (the
/// paper's worst case: sequential time plus test overhead).
#[derive(Clone, Debug)]
pub struct SequentialChainLoop {
    n: usize,
    omega: f64,
}

impl SequentialChainLoop {
    /// `n` chained iterations of `omega` work each.
    pub fn new(n: usize, omega: f64) -> Self {
        SequentialChainLoop { n, omega }
    }
}

impl SpecLoop for SequentialChainLoop {
    fn num_iters(&self) -> usize {
        self.n
    }
    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        decls(self.n)
    }
    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        planted_body(i, if i > 0 { Some(i - 1) } else { None }, ctx);
    }
    fn cost(&self, _i: usize) -> f64 {
        self.omega
    }
}

/// A loop with randomly planted flow dependences of bounded distance —
/// the knob set that stands in for "input decks" in the window-size
/// studies, and the fuzz target of the property tests.
#[derive(Clone, Debug)]
pub struct RandomDepLoop {
    n: usize,
    omega: f64,
    src_of: Vec<Option<usize>>,
}

impl RandomDepLoop {
    /// `n` iterations; each becomes a sink with probability `density`,
    /// reading a source `1..=max_distance` iterations back. Fully
    /// deterministic in `seed`.
    pub fn new(n: usize, density: f64, max_distance: usize, seed: u64, omega: f64) -> Self {
        assert!((0.0..=1.0).contains(&density));
        assert!(max_distance >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let src_of = (0..n)
            .map(|i| {
                if i > 0 && rng.random_bool(density) {
                    let d = rng.random_range(1..=max_distance.min(i));
                    Some(i - d)
                } else {
                    None
                }
            })
            .collect();
        RandomDepLoop { n, omega, src_of }
    }

    /// The planted `(src, sink)` pairs, ascending by sink.
    pub fn planted_deps(&self) -> Vec<(usize, usize)> {
        self.src_of
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|src| (src, i)))
            .collect()
    }
}

impl SpecLoop for RandomDepLoop {
    fn num_iters(&self) -> usize {
        self.n
    }
    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        decls(self.n)
    }
    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        planted_body(i, self.src_of[i], ctx);
    }
    fn cost(&self, _i: usize) -> f64 {
        self.omega
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_sequential, run_speculative, RunConfig, Strategy};

    fn check_matches_sequential(lp: &dyn SpecLoop, cfg: RunConfig) -> rlrpd_core::RunReport {
        let spec = run_speculative(lp, cfg);
        let (seq, _) = run_sequential(lp);
        assert_eq!(
            spec.array("A"),
            &seq[0].1[..],
            "speculative result must equal sequential"
        );
        spec.report
    }

    #[test]
    fn alpha_loop_halves_remaining_per_stage() {
        let lp = AlphaLoop::new(1024, 0.5, 1.0);
        assert_eq!(
            lp.sinks,
            vec![512, 768, 896, 960, 992, 1008, 1016, 1020, 1022, 1023]
        );
        let report = check_matches_sequential(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
        // Remaining sequence 1024, 512, 256 ... : sinks past the point
        // where a block holds a single iteration stop failing.
        assert!(report.restarts >= 3, "restarts = {}", report.restarts);
    }

    #[test]
    fn beta_loop_completes_fixed_blocks_per_stage_under_nrd() {
        let p = 8;
        let lp = BetaLoop::new(800, p, 2, 1.0);
        let report = check_matches_sequential(&lp, RunConfig::new(p).with_strategy(Strategy::Nrd));
        // 2 of 8 blocks complete per stage -> 4 stages, 3 restarts.
        assert_eq!(report.stages.len(), 4);
        assert_eq!(report.restarts, 3);
    }

    #[test]
    fn fully_parallel_loop_runs_in_one_stage() {
        let lp = FullyParallelLoop::new(256, 1.0);
        for strat in [Strategy::Nrd, Strategy::Rd] {
            let report = check_matches_sequential(&lp, RunConfig::new(8).with_strategy(strat));
            assert_eq!(report.stages.len(), 1);
            assert_eq!(report.pr(), 1.0);
        }
    }

    #[test]
    fn sequential_chain_takes_p_stages_under_nrd() {
        let p = 4;
        let lp = SequentialChainLoop::new(64, 1.0);
        let report = check_matches_sequential(&lp, RunConfig::new(p).with_strategy(Strategy::Nrd));
        assert_eq!(report.stages.len(), p, "one block commits per stage");
        assert_eq!(report.restarts, p - 1);
    }

    #[test]
    fn random_loop_is_deterministic_in_seed() {
        let a = RandomDepLoop::new(200, 0.1, 10, 42, 1.0);
        let b = RandomDepLoop::new(200, 0.1, 10, 42, 1.0);
        assert_eq!(a.planted_deps(), b.planted_deps());
        let c = RandomDepLoop::new(200, 0.1, 10, 43, 1.0);
        assert_ne!(a.planted_deps(), c.planted_deps());
    }

    #[test]
    fn random_loop_correct_under_every_strategy() {
        use rlrpd_core::WindowConfig;
        let lp = RandomDepLoop::new(300, 0.05, 20, 7, 1.0);
        for strat in [
            Strategy::Nrd,
            Strategy::Rd,
            Strategy::SlidingWindow(WindowConfig::fixed(8)),
        ] {
            check_matches_sequential(&lp, RunConfig::new(4).with_strategy(strat));
        }
    }
}
