//! FMA3D's `Quad` loop (Fig. 5).
//!
//! The paper: the loop accounts for 56% of sequential execution time,
//! references stress and state arrays *through indirection* with a call
//! graph several levels deep — statically un-analyzable in practice,
//! although "theoretically this loop can be statically parallelized
//! because it is input independent". At run time it is fully parallel:
//! the R-LRPD test has exactly one stage and the whole overhead is the
//! test itself.
//!
//! Because the connectivity is input-independent, this is also the one
//! evaluation loop that honestly admits a *proper inspector* — so
//! [`QuadLoop`] implements [`rlrpd_core::Inspectable`] and doubles as
//! the comparison point for the inspector/executor baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{AccessTrace, ArrayDecl, ArrayId, Inspectable, IterCtx, ShadowKind, SpecLoop};

const COORD: ArrayId = ArrayId(0);
const STRESS: ArrayId = ArrayId(1);
const STATE: ArrayId = ArrayId(2);

/// Stress components per element.
const NSTR: usize = 4;

/// The `Quad` (4-node shell element) kernel: `elements` elements over
/// `nodes` mesh nodes.
#[derive(Clone, Debug)]
pub struct QuadLoop {
    elements: usize,
    nodes: usize,
    /// Connectivity: the 4 nodes of each element (indirection array).
    conn: Vec<[u32; 4]>,
}

impl QuadLoop {
    /// A synthetic quadrilateral mesh.
    pub fn new(elements: usize, nodes: usize, seed: u64) -> Self {
        assert!(nodes >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let conn = (0..elements)
            .map(|_| {
                [
                    rng.random_range(0..nodes) as u32,
                    rng.random_range(0..nodes) as u32,
                    rng.random_range(0..nodes) as u32,
                    rng.random_range(0..nodes) as u32,
                ]
            })
            .collect();
        QuadLoop {
            elements,
            nodes,
            conn,
        }
    }

    /// A default mesh comparable to the SPEC reference size's shape.
    pub fn reference() -> Self {
        Self::new(8000, 2500, 0xF3A3D)
    }
}

impl SpecLoop for QuadLoop {
    fn num_iters(&self) -> usize {
        self.elements
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![
            // Nodal coordinates: read-only through indirection.
            ArrayDecl::tested(
                "COORD",
                (0..self.nodes).map(|k| (k % 13) as f64 * 0.25).collect(),
                ShadowKind::Dense,
            ),
            // Per-element stress: written at element-disjoint slots.
            ArrayDecl::tested("STRESS", vec![0.0; self.elements * NSTR], ShadowKind::Dense),
            // Per-element material state: read-modify-write, disjoint.
            ArrayDecl::tested("STATE", vec![1.0; self.elements], ShadowKind::Dense),
        ]
    }

    fn body(&self, e: usize, ctx: &mut IterCtx<'_, f64>) {
        // Gather nodal data through the indirection.
        let c = self.conn[e];
        let mut g = 0.0;
        for &node in &c {
            g += ctx.read(COORD, node as usize);
        }
        // Element-local state update (read before write — but the slot
        // is element-disjoint, so the exposed read can never be a
        // cross-processor sink).
        let s = ctx.read(STATE, e);
        ctx.write(STATE, e, s * 0.99 + g * 0.01);
        // Scatter the stress components to this element's slots.
        for k in 0..NSTR {
            ctx.write(STRESS, e * NSTR + k, g * (k + 1) as f64 + s);
        }
    }

    fn cost(&self, _e: usize) -> f64 {
        5.0
    }
}

impl Inspectable<f64> for QuadLoop {
    fn inspect(&self, e: usize) -> AccessTrace {
        // The connectivity is input-independent, so the trace is
        // computable without side effects — the "proper inspector" the
        // paper's SPICE loops lack.
        let c = self.conn[e];
        AccessTrace {
            reads: c
                .iter()
                .map(|&n| (COORD, n as usize))
                .chain(std::iter::once((STATE, e)))
                .collect(),
            writes: std::iter::once((STATE, e))
                .chain((0..NSTR).map(|k| (STRESS, e * NSTR + k)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{
        run_inspector_executor, run_sequential, run_speculative, CostModel, ExecMode, RunConfig,
        Strategy,
    };

    #[test]
    fn quad_loop_is_fully_parallel_one_stage() {
        let lp = QuadLoop::new(500, 200, 1);
        for strat in [Strategy::Nrd, Strategy::Rd] {
            let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(strat));
            assert_eq!(
                spec.report.stages.len(),
                1,
                "the R-LRPD test has only one stage"
            );
            assert_eq!(spec.report.pr(), 1.0);
            let (seq, _) = run_sequential(&lp);
            assert_eq!(spec.array("STRESS"), seq[1].1.as_slice());
            assert_eq!(spec.array("STATE"), seq[2].1.as_slice());
        }
    }

    #[test]
    fn inspector_executor_agrees_with_speculation() {
        let lp = QuadLoop::new(300, 100, 2);
        let insp = run_inspector_executor(&lp, 4, ExecMode::Simulated, CostModel::default());
        let (seq, _) = run_sequential(&lp);
        assert_eq!(insp.arrays[1].1, seq[1].1, "STRESS");
        assert_eq!(insp.arrays[2].1, seq[2].1, "STATE");
        // Input-independent connectivity: no flow dependences at all.
        assert!(insp.graph.flow.is_empty());
        assert_eq!(insp.schedule.depth(), 1, "fully parallel wavefront");
    }

    #[test]
    fn mesh_is_deterministic() {
        let a = QuadLoop::new(100, 50, 7);
        let b = QuadLoop::new(100, 50, 7);
        assert_eq!(a.conn, b.conn);
    }
}
