//! SPICE2G6 kernels (Fig. 6).
//!
//! SPICE's arrays are all equivalenced to one large workspace (`VALUE`)
//! and referenced through multiple levels of indirection — "a 'total'
//! workspace aliasing problem" — so none of them are compiler
//! analyzable, and because addresses depend on data the loops produce,
//! no proper inspector exists either. The paper parallelizes three
//! loops:
//!
//! * **DCDCMP loop 15** (sparse LU decomposition,
//!   [`Dcdcmp15Loop`]) — partially parallel with a dependence structure
//!   given by the circuit topology. The paper extracts the DDG with the
//!   sparse sliding-window R-LRPD test and generates a reusable
//!   wavefront schedule (14337 iterations, critical path 334 for the
//!   `adder.128` deck).
//! * **DCDCMP loop 70** ([`Dcdcmp70Loop`]) — fully parallel with a
//!   premature exit.
//! * **BJT model evaluation** ([`BjtLoop`]) — devices update the sparse
//!   Y matrix through reductions; validated with the sparse LRPD test
//!   plus sparse reduction parallelization. The linked-list traversal
//!   order is pre-distributed (the paper's speculative list-traversal
//!   technique), modeled here as a precomputed device permutation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, ArrayId, IterCtx, Reduction, ShadowKind, SpecLoop};

/// Sparse-LU kernel: DCDCMP loop 15.
///
/// The synthetic "circuit": iteration `j` eliminates unknown `j`,
/// reading the already-eliminated unknowns it is coupled to (its
/// *parents* in the factorization DAG) and writing slot `j`. The
/// generator shapes the DAG into `target_cp` topological levels so the
/// extracted wavefront schedule lands near the paper's adder.128
/// numbers (n = 14337, CP = 334) by default.
#[derive(Clone, Debug)]
pub struct Dcdcmp15Loop {
    n: usize,
    parents: Vec<Vec<u32>>,
}

const X: ArrayId = ArrayId(0);

impl Dcdcmp15Loop {
    /// A synthetic deck with `n` unknowns shaped into `target_cp`
    /// elimination levels.
    pub fn new(n: usize, target_cp: usize, seed: u64) -> Self {
        assert!(target_cp >= 1 && target_cp <= n.max(1));
        let mut rng = StdRng::seed_from_u64(seed);
        let per_level = n.div_ceil(target_cp);
        let parents = (0..n)
            .map(|j| {
                let level = j / per_level;
                if level == 0 {
                    return Vec::new();
                }
                let prev = (level - 1) * per_level..(level * per_level).min(n);
                let fanin = rng.random_range(1..=3usize);
                let mut ps: Vec<u32> = (0..fanin)
                    .map(|_| rng.random_range(prev.clone()) as u32)
                    .collect();
                ps.sort_unstable();
                ps.dedup();
                ps
            })
            .collect();
        Dcdcmp15Loop { n, parents }
    }

    /// The paper's adder.128 deck shape: 14337 iterations, critical
    /// path 334.
    pub fn adder128() -> Self {
        Self::new(14337, 334, 0xADDE128)
    }

    /// A small deck for tests.
    pub fn small(seed: u64) -> Self {
        Self::new(600, 30, seed)
    }

    /// The generator's intended critical path (levels).
    pub fn intended_cp(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            let per_level = self
                .parents
                .iter()
                .position(|p| !p.is_empty())
                .unwrap_or(self.n);
            self.n.div_ceil(per_level.max(1))
        }
    }
}

impl SpecLoop for Dcdcmp15Loop {
    fn num_iters(&self) -> usize {
        self.n
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        // The workspace slice: huge and sparsely touched per window —
        // the sparse LRPD test's home turf.
        vec![ArrayDecl::tested(
            "X",
            (0..self.n).map(|k| 1.0 + (k % 7) as f64).collect(),
            ShadowKind::Sparse,
        )]
    }

    fn body(&self, j: usize, ctx: &mut IterCtx<'_, f64>) {
        let mut acc = 1.0;
        for &p in &self.parents[j] {
            acc += 0.5 * ctx.read(X, p as usize);
        }
        let diag = ctx.read(X, j);
        ctx.write(X, j, diag - acc * 0.125);
    }

    fn cost(&self, j: usize) -> f64 {
        1.0 + self.parents[j].len() as f64 * 0.5
    }
}

/// DCDCMP loop 70: fully parallel with a premature exit.
///
/// The exit condition — a singular-pivot check in the original —
/// dynamically fires at iteration `exit_at`: that iteration completes
/// and requests the exit ([`IterCtx::exit`]); every later iteration's
/// speculative work is discarded by the engine. The loop is otherwise
/// fully parallel, so a single stage commits the live prefix.
#[derive(Clone, Debug)]
pub struct Dcdcmp70Loop {
    n: usize,
    exit_at: usize,
}

impl Dcdcmp70Loop {
    /// `n` iterations; the pivot check fires at iteration `exit_at`
    /// (the last one executed).
    pub fn new(n: usize, exit_at: usize) -> Self {
        assert!(exit_at < n);
        Dcdcmp70Loop { n, exit_at }
    }
}

impl SpecLoop for Dcdcmp70Loop {
    fn num_iters(&self) -> usize {
        self.n
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![ArrayDecl::tested(
            "D",
            vec![0.5; self.n],
            ShadowKind::Sparse,
        )]
    }

    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        let v = ctx.read(D, i);
        ctx.write(D, i, v * 2.0 + 1.0);
        if i == self.exit_at {
            // Singular pivot discovered: the loop terminates here.
            ctx.exit();
        }
    }

    fn cost(&self, _i: usize) -> f64 {
        1.0
    }
}

const D: ArrayId = ArrayId(0);

/// BJT model evaluation: sparse reductions into the Y matrix.
///
/// Device `d` (visited in the pre-distributed linked-list order) reads
/// its read-only model parameters and *reduces* its stamp into the
/// 4 Y-matrix entries of its terminal nodes. Different devices sharing
/// a node collide across processors — harmless under speculative
/// reduction parallelization, which is the point: the loop runs in one
/// stage with PR = 1.
#[derive(Clone, Debug)]
pub struct BjtLoop {
    devices: usize,
    nodes: usize,
    /// Linked-list traversal order (pre-distributed).
    order: Vec<u32>,
    /// Terminal nodes of each device (by device id).
    terminals: Vec<[u32; 4]>,
}

const Y: ArrayId = ArrayId(0);
const PARAM: ArrayId = ArrayId(1);

impl BjtLoop {
    /// A synthetic circuit of `devices` BJTs over `nodes` nodes.
    pub fn new(devices: usize, nodes: usize, seed: u64) -> Self {
        assert!(nodes >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        // The traversal order of the device list: a permutation, as the
        // list was built by netlist insertion order.
        let mut order: Vec<u32> = (0..devices as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let terminals = (0..devices)
            .map(|_| {
                [
                    rng.random_range(0..nodes) as u32,
                    rng.random_range(0..nodes) as u32,
                    rng.random_range(0..nodes) as u32,
                    rng.random_range(0..nodes) as u32,
                ]
            })
            .collect();
        BjtLoop {
            devices,
            nodes,
            order,
            terminals,
        }
    }

    /// A deck shaped like the paper's 128-bit adder in BJT technology.
    pub fn adder128() -> Self {
        Self::new(3000, 900, 0xB17)
    }
}

impl SpecLoop for BjtLoop {
    fn num_iters(&self) -> usize {
        self.devices
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![
            ArrayDecl::reduction(
                "Y",
                vec![0.0; self.nodes],
                ShadowKind::Sparse,
                Reduction::sum(),
            ),
            ArrayDecl::untested("PARAM", (0..self.devices).map(|d| 0.1 + d as f64).collect()),
        ]
    }

    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        let dev = self.order[i] as usize;
        // Read-only model parameters (untested array, never written).
        let p = ctx.read(PARAM, dev);
        let gm = 1.0 / (1.0 + p);
        // Stamp the device into the Y matrix: pure sparse reductions.
        let t = self.terminals[dev];
        ctx.reduce(Y, t[0] as usize, gm);
        ctx.reduce(Y, t[1] as usize, -gm);
        ctx.reduce(Y, t[2] as usize, gm * 0.5);
        ctx.reduce(Y, t[3] as usize, -gm * 0.5);
    }

    fn cost(&self, _i: usize) -> f64 {
        3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{
        extract_ddg, run_sequential, run_speculative, RunConfig, Strategy, WindowConfig,
    };

    #[test]
    fn dcdcmp15_ddg_recovers_intended_critical_path() {
        let lp = Dcdcmp15Loop::small(3);
        let cfg = RunConfig::new(4);
        let ddg = extract_ddg(&lp, &cfg, WindowConfig::fixed(16));
        // The generator shapes ~30 levels; the flow critical path must
        // land exactly there (each level depends on the previous one).
        assert_eq!(ddg.graph.flow_critical_path(), 30);
        // Extraction executed the loop correctly as a side effect.
        let (seq, _) = run_sequential(&lp);
        assert_eq!(ddg.run.array("X"), seq[0].1.as_slice());
    }

    #[test]
    fn dcdcmp15_is_heavily_partially_parallel() {
        let lp = Dcdcmp15Loop::small(5);
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("X"), seq[0].1.as_slice());
        assert!(spec.report.restarts > 0);
    }

    #[test]
    fn dcdcmp70_exits_prematurely_in_one_stage() {
        let lp = Dcdcmp70Loop::new(2000, 1499);
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Nrd));
        assert_eq!(spec.report.stages.len(), 1, "fully parallel prefix");
        assert_eq!(spec.report.pr(), 1.0);
        assert_eq!(spec.report.exited_at, Some(1499));
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("D"), seq[0].1.as_slice());
        // Iterations past the exit never executed: original value.
        assert_eq!(spec.array("D")[1500], 0.5);
        assert_eq!(
            spec.array("D")[1499],
            2.0,
            "the exiting iteration completed"
        );
    }

    #[test]
    fn dcdcmp70_exit_respected_by_the_window_strategy() {
        use rlrpd_core::WindowConfig;
        let lp = Dcdcmp70Loop::new(400, 123);
        let spec = run_speculative(
            &lp,
            RunConfig::new(4).with_strategy(Strategy::SlidingWindow(WindowConfig::fixed(16))),
        );
        assert_eq!(spec.report.exited_at, Some(123));
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("D"), seq[0].1.as_slice());
    }

    #[test]
    fn bjt_reductions_validate_in_one_stage() {
        let lp = BjtLoop::new(400, 64, 9);
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
        assert_eq!(
            spec.report.stages.len(),
            1,
            "pure reductions never conflict"
        );
        let (seq, _) = run_sequential(&lp);
        let spec_y = spec.array("Y");
        let seq_y = &seq[0].1;
        for (a, b) in spec_y.iter().zip(seq_y) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn bjt_traversal_order_is_a_permutation() {
        let lp = BjtLoop::new(100, 16, 1);
        let mut seen = lp.order.clone();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(seen, expect);
    }
}
