//! The TRACK program harness: many timesteps, each instantiating the
//! three measured loops.
//!
//! The paper reports TRACK results "over the life of the program": the
//! parallelism ratio `PR = #instantiations / (#restarts +
//! #instantiations)` accumulates across instantiations, feedback-guided
//! load balancing learns from one timestep to the next, and Fig. 12(b)
//! combines the loops — ≈95% of sequential time — into a program
//! speedup. This harness reproduces that structure: per timestep the
//! radar picture changes slightly (varying seeds/densities), NLFILT and
//! FPTRAK run under stateful [`rlrpd_core::Runner`]s (optionally the
//! history-based [`rlrpd_core::PredictiveRunner`]), and EXTEND runs the
//! two-pass induction scheme.

use crate::extend::{ExtendInput, ExtendLoop};
use crate::fptrak::{FptrakInput, FptrakLoop};
use crate::nlfilt::{NlfiltInput, NlfiltLoop};
use rlrpd_core::{
    run_induction, BalancePolicy, CheckpointPolicy, CostModel, ExecMode, PrAccumulator,
    PredictiveRunner, RunConfig, Runner,
};

/// Fraction of TRACK's sequential time outside the three loops
/// (the paper: the loops cover ≈95%).
const SERIAL_SHARE: f64 = 0.05;

/// Accumulated results of one loop over the program's life.
#[derive(Clone, Debug)]
pub struct LoopSummary {
    /// Loop name.
    pub name: &'static str,
    /// Program-lifetime parallelism ratio.
    pub pr: f64,
    /// Σ useful work across instantiations.
    pub sequential_work: f64,
    /// Σ virtual time across instantiations.
    pub virtual_time: f64,
}

impl LoopSummary {
    /// Aggregate speedup of this loop over the program's life.
    pub fn speedup(&self) -> f64 {
        self.sequential_work / self.virtual_time
    }
}

/// Whole-program results.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Per-loop summaries (NLFILT, EXTEND, FPTRAK).
    pub loops: Vec<LoopSummary>,
    /// Whole-program speedup including the serial share.
    pub program_speedup: f64,
}

/// Scheduling mode for the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramMode {
    /// Fixed configuration from [`RunConfig`] for every instantiation.
    Fixed,
    /// History-based strategy prediction per loop
    /// ([`PredictiveRunner`]).
    Predictive,
}

/// The TRACK program: `timesteps` radar frames.
#[derive(Clone, Debug)]
pub struct TrackProgram {
    timesteps: usize,
    base_seed: u64,
}

impl TrackProgram {
    /// A program of `timesteps` frames with deck variation derived from
    /// `base_seed`.
    pub fn new(timesteps: usize, base_seed: u64) -> Self {
        assert!(timesteps > 0);
        TrackProgram {
            timesteps,
            base_seed,
        }
    }

    fn nlfilt_at(&self, t: usize) -> NlfiltLoop {
        // The picture drifts: density wiggles with the frame.
        let mut input = NlfiltInput::i8_100();
        input.seed = self.base_seed ^ (t as u64).wrapping_mul(0x9e37);
        input.write_rate = 0.004 + 0.002 * ((t % 3) as f64);
        NlfiltLoop::new(input)
    }

    fn extend_at(&self, t: usize) -> ExtendLoop {
        let mut input = ExtendInput::dense();
        input.n = 1200;
        input.seed = self.base_seed ^ (t as u64).wrapping_mul(0xabcd);
        input.accept_rate = 0.25 + 0.05 * ((t % 4) as f64 / 4.0);
        ExtendLoop::new(input)
    }

    fn fptrak_at(&self, t: usize) -> FptrakLoop {
        let mut input = FptrakInput::chained();
        input.n = 1000;
        input.seed = self.base_seed ^ (t as u64).wrapping_mul(0x5a5a);
        FptrakLoop::new(input)
    }

    /// Run the whole program on `p` processors.
    pub fn run(&self, p: usize, cost: CostModel, mode: ProgramMode) -> ProgramReport {
        let cfg = RunConfig::new(p)
            .with_checkpoint(CheckpointPolicy::OnDemand)
            .with_balance(BalancePolicy::FeedbackGuided)
            .with_cost(cost);

        enum Driver {
            Fixed(Box<Runner>),
            Predictive(Box<PredictiveRunner>),
        }
        impl Driver {
            fn run(&mut self, lp: &dyn rlrpd_core::SpecLoop<f64>) -> rlrpd_core::RunResult<f64> {
                match self {
                    Driver::Fixed(r) => r.run(lp),
                    Driver::Predictive(r) => r.run(lp),
                }
            }
            fn pr(&self) -> f64 {
                match self {
                    Driver::Fixed(r) => r.pr.pr(),
                    Driver::Predictive(r) => r.pr(),
                }
            }
        }
        let make = || match mode {
            ProgramMode::Fixed => Driver::Fixed(Box::new(Runner::new(cfg))),
            ProgramMode::Predictive => Driver::Predictive(Box::new(PredictiveRunner::new(cfg))),
        };
        let mut nlfilt_driver = make();
        let mut fptrak_driver = make();
        let mut extend_pr = PrAccumulator::default();

        let mut nl = ("NLFILT_300", 0.0f64, 0.0f64);
        let mut ex = ("EXTEND_400", 0.0f64, 0.0f64);
        let mut fp = ("FPTRAK_300", 0.0f64, 0.0f64);

        for t in 0..self.timesteps {
            let lp = self.nlfilt_at(t);
            let res = nlfilt_driver.run(&lp);
            nl.1 += res.report.sequential_work;
            nl.2 += res.report.virtual_time();

            let lp = self.extend_at(t);
            let res = run_induction(&lp, p, ExecMode::Simulated, cost);
            extend_pr.add(&res.report);
            ex.1 += res.report.sequential_work;
            ex.2 += res.report.virtual_time();

            let lp = self.fptrak_at(t);
            let res = fptrak_driver.run(&lp);
            fp.1 += res.report.sequential_work;
            fp.2 += res.report.virtual_time();
        }

        let loops = vec![
            LoopSummary {
                name: nl.0,
                pr: nlfilt_driver.pr(),
                sequential_work: nl.1,
                virtual_time: nl.2,
            },
            LoopSummary {
                name: ex.0,
                pr: extend_pr.pr(),
                sequential_work: ex.1,
                virtual_time: ex.2,
            },
            LoopSummary {
                name: fp.0,
                pr: fptrak_driver.pr(),
                sequential_work: fp.1,
                virtual_time: fp.2,
            },
        ];

        // Whole program: the loops are 95% of sequential time; the rest
        // runs serially in both versions.
        let loops_seq: f64 = loops.iter().map(|l| l.sequential_work).sum();
        let loops_par: f64 = loops.iter().map(|l| l.virtual_time).sum();
        let serial = loops_seq / (1.0 - SERIAL_SHARE) * SERIAL_SHARE;
        let program_speedup = (loops_seq + serial) / (loops_par + serial);

        ProgramReport {
            loops,
            program_speedup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_runs_and_reports_all_loops() {
        let prog = TrackProgram::new(4, 42);
        let report = prog.run(8, CostModel::default(), ProgramMode::Fixed);
        assert_eq!(report.loops.len(), 3);
        for l in &report.loops {
            assert!(l.pr > 0.0 && l.pr <= 1.0, "{}: PR = {}", l.name, l.pr);
            assert!(l.virtual_time > 0.0);
            assert!(l.sequential_work > 0.0);
        }
        assert!(report.program_speedup > 0.0);
    }

    #[test]
    fn program_speedup_grows_with_processors() {
        let prog = TrackProgram::new(3, 7);
        let s2 = prog
            .run(2, CostModel::default(), ProgramMode::Fixed)
            .program_speedup;
        let s16 = prog
            .run(16, CostModel::default(), ProgramMode::Fixed)
            .program_speedup;
        assert!(s16 > s2, "p=16 ({s16}) must beat p=2 ({s2})");
    }

    #[test]
    fn predictive_mode_is_at_least_competitive_eventually() {
        // Over enough timesteps the predictor should not lose badly to
        // the fixed default configuration.
        let prog = TrackProgram::new(12, 99);
        let fixed = prog.run(8, CostModel::default(), ProgramMode::Fixed);
        let pred = prog.run(8, CostModel::default(), ProgramMode::Predictive);
        assert!(
            pred.program_speedup > 0.6 * fixed.program_speedup,
            "predictive {} vs fixed {}",
            pred.program_speedup,
            fixed.program_speedup
        );
    }

    #[test]
    fn deck_variation_is_deterministic() {
        let a = TrackProgram::new(3, 1).run(4, CostModel::default(), ProgramMode::Fixed);
        let b = TrackProgram::new(3, 1).run(4, CostModel::default(), ProgramMode::Fixed);
        assert_eq!(a.program_speedup, b.program_speedup);
    }
}
