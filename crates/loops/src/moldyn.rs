//! A CHARMM-style non-bonded force kernel.
//!
//! The paper's introduction names CHARMM among the "complex
//! simulations" whose loops resist static analysis. The classic
//! offender is the non-bonded force loop: it walks a *neighbor list*
//! (pairs of atoms within a cutoff, recomputed every few timesteps) and
//! scatters force contributions to both atoms of each pair — an
//! irregular reduction through double indirection that no compiler can
//! prove independent, yet is dynamically a pure sum reduction. The
//! companion *integration* loop is per-atom disjoint (untested), and an
//! optional *bond-constraint sweep* introduces genuine short-distance
//! dependences for partially-parallel experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, ArrayId, IterCtx, Reduction, ShadowKind, SpecLoop};

const FORCE: ArrayId = ArrayId(0);
const POS: ArrayId = ArrayId(1);

/// A synthetic molecular system.
#[derive(Clone, Debug)]
pub struct MoldynSystem {
    /// Atom count.
    pub atoms: usize,
    /// Neighbor pairs `(a, b)`, `a < b`.
    pub pairs: Vec<(u32, u32)>,
}

impl MoldynSystem {
    /// Generate `atoms` atoms with an average of `avg_neighbors`
    /// neighbors each, deterministically from `seed`.
    pub fn new(atoms: usize, avg_neighbors: usize, seed: u64) -> Self {
        assert!(atoms >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let num_pairs = atoms * avg_neighbors / 2;
        let pairs = (0..num_pairs)
            .map(|_| {
                let a = rng.random_range(0..atoms as u32 - 1);
                // Neighbor lists are spatially local: partner nearby.
                let span = (atoms as u32 - a - 1).min(32);
                let b = a + 1 + rng.random_range(0..span);
                (a, b)
            })
            .collect();
        MoldynSystem { atoms, pairs }
    }
}

/// The non-bonded force loop: one iteration per neighbor pair, force
/// contributions *reduced* into both endpoints.
///
/// `FORCE[a] += f; FORCE[b] -= f` through the pair list is the paper's
/// reduction pattern with indirection: the sparse LRPD reduction test
/// validates it in one stage regardless of how pairs collide.
#[derive(Clone, Debug)]
pub struct NonbondedLoop {
    system: MoldynSystem,
}

impl NonbondedLoop {
    /// Force loop over `system`'s pair list.
    pub fn new(system: MoldynSystem) -> Self {
        NonbondedLoop { system }
    }
}

impl SpecLoop for NonbondedLoop {
    fn num_iters(&self) -> usize {
        self.system.pairs.len()
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![
            ArrayDecl::reduction(
                "FORCE",
                vec![0.0; self.system.atoms],
                ShadowKind::Sparse,
                Reduction::sum(),
            ),
            // Positions are read-only during the force sweep.
            ArrayDecl::untested(
                "POS",
                (0..self.system.atoms)
                    .map(|k| (k % 17) as f64 * 0.3)
                    .collect(),
            ),
        ]
    }

    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        let (a, b) = self.system.pairs[i];
        let (a, b) = (a as usize, b as usize);
        let dx = ctx.read(POS, b) - ctx.read(POS, a);
        // A soft Lennard-Jones-ish magnitude, cheap but nonlinear.
        let r2 = dx * dx + 0.25;
        let f = dx * (1.0 / (r2 * r2) - 0.5 / r2);
        ctx.reduce(FORCE, a, f);
        ctx.reduce(FORCE, b, -f);
    }

    fn cost(&self, _i: usize) -> f64 {
        4.0
    }
}

/// The bond-constraint sweep: each constraint adjusts the positions of
/// a bonded atom pair; chains of bonds (`k` bonded to `k+1`) create the
/// genuine short-distance dependences the R-LRPD test must arbitrate.
#[derive(Clone, Debug)]
pub struct ConstraintLoop {
    atoms: usize,
    /// Bonds `(a, b)`; chained bonds share atoms.
    bonds: Vec<(u32, u32)>,
}

impl ConstraintLoop {
    /// A constraint sweep over `chains` chains of `chain_len` bonded
    /// atoms (e.g. polymer backbones), placed consecutively.
    pub fn new(chains: usize, chain_len: usize) -> Self {
        assert!(chain_len >= 2);
        let mut bonds = Vec::new();
        for c in 0..chains {
            let base = (c * chain_len) as u32;
            for k in 0..(chain_len - 1) as u32 {
                bonds.push((base + k, base + k + 1));
            }
        }
        ConstraintLoop {
            atoms: chains * chain_len,
            bonds,
        }
    }

    /// Number of constraints (= iterations).
    pub fn num_bonds(&self) -> usize {
        self.bonds.len()
    }
}

impl SpecLoop for ConstraintLoop {
    fn num_iters(&self) -> usize {
        self.bonds.len()
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![ArrayDecl::tested(
            "X",
            (0..self.atoms).map(|k| k as f64).collect(),
            ShadowKind::Dense,
        )]
    }

    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        let (a, b) = self.bonds[i];
        let (a, b) = (a as usize, b as usize);
        // SHAKE-like projection: move both atoms toward unit distance.
        let xa = ctx.read(ArrayId(0), a);
        let xb = ctx.read(ArrayId(0), b);
        let err = (xb - xa) - 1.0;
        ctx.write(ArrayId(0), a, xa + 0.5 * err);
        ctx.write(ArrayId(0), b, xb - 0.5 * err);
    }

    fn cost(&self, _i: usize) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_sequential, run_speculative, RunConfig, Strategy, WindowConfig};

    #[test]
    fn nonbonded_forces_validate_as_reductions_in_one_stage() {
        let lp = NonbondedLoop::new(MoldynSystem::new(200, 8, 3));
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
        assert_eq!(
            spec.report.stages.len(),
            1,
            "irregular reductions never conflict"
        );
        let (seq, _) = run_sequential(&lp);
        for (a, b) in spec.array("FORCE").iter().zip(&seq[0].1) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn momentum_is_conserved() {
        // Newton's third law in the kernel: the force reductions cancel
        // pairwise, so the total must be (numerically) zero.
        let lp = NonbondedLoop::new(MoldynSystem::new(300, 10, 7));
        let spec = run_speculative(&lp, RunConfig::new(4));
        let total: f64 = spec.array("FORCE").iter().sum();
        assert!(total.abs() < 1e-9, "net force {total}");
    }

    #[test]
    fn constraint_chains_are_heavily_dependent() {
        let lp = ConstraintLoop::new(4, 16);
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Nrd));
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("X"), seq[0].1.as_slice());
        assert!(spec.report.restarts > 0, "chained bonds must conflict");
    }

    #[test]
    fn independent_chains_parallelize_when_blocks_align() {
        // One chain per block: all dependences stay intra-processor.
        let chains = 8;
        let lp = ConstraintLoop::new(chains, 9); // 8 bonds per chain
        let spec = run_speculative(&lp, RunConfig::new(chains).with_strategy(Strategy::Nrd));
        assert_eq!(
            spec.report.stages.len(),
            1,
            "chain-aligned blocks never conflict"
        );
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("X"), seq[0].1.as_slice());
    }

    #[test]
    fn constraint_loop_correct_under_window_strategy() {
        let lp = ConstraintLoop::new(3, 20);
        let spec = run_speculative(
            &lp,
            RunConfig::new(4).with_strategy(Strategy::SlidingWindow(WindowConfig::fixed(6))),
        );
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("X"), seq[0].1.as_slice());
    }

    #[test]
    fn system_generation_is_deterministic() {
        let a = MoldynSystem::new(100, 6, 11);
        let b = MoldynSystem::new(100, 6, 11);
        assert_eq!(a.pairs, b.pairs);
    }
}
