//! TRACK, loop FPTRAK_300.
//!
//! The paper: *"This loop is very similar to, yet simpler than,
//! EXTEND_400. The array under test is privatized."* The kernel
//! exercises exactly the speculative-privatization path: every
//! iteration uses a shared scratch array `WORK` in a write-first
//! pattern (the `(Write|Read)*` half of the copy-in condition), so all
//! processors write the same scratch slots — output dependences that
//! privatization plus last-value commit resolve without any restart —
//! and posts its result to a per-track slot of `FPT`.
//!
//! An input-dependent gate occasionally reads a *neighbouring track's*
//! result before it was posted, producing the rare short-distance flow
//! dependences that push PR below 1 on the denser decks (Fig. 11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlrpd_core::{ArrayDecl, ArrayId, IterCtx, ShadowKind, SpecLoop};

const WORK: ArrayId = ArrayId(0);
const FPT: ArrayId = ArrayId(1);

/// Scratch slots used (write-first) by every iteration.
const SCRATCH: usize = 8;

/// An input deck for FPTRAK_300.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FptrakInput {
    /// Label used in reports.
    pub name: &'static str,
    /// Iterations (tracks to file).
    pub n: usize,
    /// Probability an iteration reads an earlier track's posted
    /// result.
    pub chain_rate: f64,
    /// Maximum backward distance of such a read.
    pub max_chain_distance: usize,
    /// RNG seed standing in for the deck.
    pub seed: u64,
}

impl FptrakInput {
    /// Fully privatizable deck (no cross-track reads): PR = 1.
    pub fn clean() -> Self {
        FptrakInput {
            name: "clean",
            n: 3000,
            chain_rate: 0.0,
            max_chain_distance: 1,
            seed: 0xF1,
        }
    }

    /// Occasional cross-track reads.
    pub fn chained() -> Self {
        FptrakInput {
            name: "chained",
            n: 3000,
            chain_rate: 0.004,
            max_chain_distance: 250,
            seed: 0xF2,
        }
    }

    /// All decks used by the figure benches.
    pub fn all() -> Vec<FptrakInput> {
        vec![Self::clean(), Self::chained()]
    }
}

/// The FPTRAK_300 kernel.
#[derive(Clone, Debug)]
pub struct FptrakLoop {
    input: FptrakInput,
    chain: Vec<Option<usize>>,
    cost: Vec<f64>,
}

impl FptrakLoop {
    /// Instantiate the kernel for one input deck.
    pub fn new(input: FptrakInput) -> Self {
        let mut rng = StdRng::seed_from_u64(input.seed);
        let chain = (0..input.n)
            .map(|i| {
                if i > 0 && rng.random_bool(input.chain_rate) {
                    let d = rng.random_range(1..=input.max_chain_distance.min(i));
                    Some(i - d)
                } else {
                    None
                }
            })
            .collect();
        let cost = (0..input.n).map(|_| rng.random_range(1.0..3.0)).collect();
        FptrakLoop { input, chain, cost }
    }

    /// The input deck.
    pub fn input(&self) -> &FptrakInput {
        &self.input
    }
}

impl SpecLoop for FptrakLoop {
    fn num_iters(&self) -> usize {
        self.input.n
    }

    fn arrays(&self) -> Vec<ArrayDecl<f64>> {
        vec![
            ArrayDecl::tested("WORK", vec![0.0; SCRATCH], ShadowKind::Dense),
            ArrayDecl::tested("FPT", vec![0.0; self.input.n], ShadowKind::Dense),
        ]
    }

    fn body(&self, i: usize, ctx: &mut IterCtx<'_, f64>) {
        // Write-first scratch usage: privatizable on every processor.
        for k in 0..SCRATCH {
            ctx.write(WORK, k, (i + k) as f64);
        }
        let mut acc = 0.0;
        for k in 0..SCRATCH {
            acc += ctx.read(WORK, k); // covered reads: never exposed
        }
        // Rare input-dependent chain to an earlier track's result.
        if let Some(src) = self.chain[i] {
            acc += ctx.read(FPT, src);
        }
        ctx.write(FPT, i, acc);
    }

    fn cost(&self, i: usize) -> f64 {
        self.cost[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlrpd_core::{run_sequential, run_speculative, RunConfig, Strategy};

    #[test]
    fn clean_deck_is_fully_parallel_despite_shared_scratch() {
        let lp = FptrakLoop::new(FptrakInput::clean());
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
        assert_eq!(
            spec.report.stages.len(),
            1,
            "privatization removes all conflicts"
        );
        assert_eq!(spec.report.pr(), 1.0);
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("FPT"), seq[1].1.as_slice());
        assert_eq!(
            spec.array("WORK"),
            seq[0].1.as_slice(),
            "last-value commit of scratch"
        );
    }

    #[test]
    fn chained_deck_matches_sequential_with_restarts() {
        let lp = FptrakLoop::new(FptrakInput::chained());
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
        let (seq, _) = run_sequential(&lp);
        assert_eq!(spec.array("FPT"), seq[1].1.as_slice());
        assert!(
            spec.report.restarts > 0,
            "chained deck must uncover dependences"
        );
        assert!(spec.report.pr() < 1.0);
    }

    #[test]
    fn chained_deck_arcs_point_at_fpt_not_work() {
        let lp = FptrakLoop::new(FptrakInput::chained());
        let spec = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Nrd));
        assert!(!spec.arcs.is_empty());
        assert!(
            spec.arcs.iter().all(|a| a.array == 1),
            "scratch array must never cause an arc: {:?}",
            spec.arcs
        );
    }
}
