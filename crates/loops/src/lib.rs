//! Workload kernels reproducing the dependence structure of the R-LRPD
//! paper's evaluation codes, plus parameterized synthetic generators.
//!
//! The paper measures Fortran77 loops from TRACK (NLFILT_300,
//! EXTEND_400, FPTRAK_300), SPICE2G6 (DCDCMP loops 70 and 15, the BJT
//! model-evaluation loop) and FMA3D (the `Quad` loop) on a 16-processor
//! HP V2200, using modified PERFECT/SPEC input decks. We cannot run the
//! original Fortran under the original instrumentation, so each kernel
//! here recreates the loop's *memory-reference structure* — the guarded
//! writes, indirections, induction counters, sparsity patterns and
//! dependence distances the paper describes — as a Rust
//! [`rlrpd_core::SpecLoop`] (or [`rlrpd_core::InductionLoop`]) with
//! seeded, deterministic generators standing in for the input decks.
//! The LRPD machinery observes only address streams, so faithful
//! address streams reproduce the algorithmic behaviour (stage counts,
//! PR, speedup shapes) that the paper's figures report. See DESIGN.md
//! §2 for the substitution argument.
//!
//! * [`synthetic`] — α-geometric / β-linear / fully parallel /
//!   sequential / random-dependence loops (the model-validation loop of
//!   Fig. 4 and the property-test fodder);
//! * [`nlfilt`] — TRACK NLFILT_300: guarded short-distance writes to
//!   NUSED over a large checkpointed state (Figs. 7–9, 12a);
//! * [`extend`] — TRACK EXTEND_400: conditionally incremented induction
//!   counter LSTTRK (Fig. 10);
//! * [`fptrak`] — TRACK FPTRAK_300: privatizable work array (Fig. 11);
//! * [`spice`] — SPICE2G6: DCDCMP_15 sparse LU (DDG + wavefront),
//!   DCDCMP_70 (parallel with premature exit), BJT model evaluation
//!   (sparse reductions) (Fig. 6);
//! * [`fma3d`] — FMA3D `Quad`: indirection-based, fully parallel
//!   (Fig. 5);
//! * [`moldyn`] — a CHARMM-style non-bonded force kernel (irregular
//!   reductions through neighbor lists) and a bond-constraint sweep;
//! * [`fock`] — a GAUSSIAN-style Fock-matrix build (screened integral
//!   quartets scattering into six matrix entries each — both from the
//!   intro's motivating application classes);
//! * [`track_program`] — the whole-TRACK multi-instantiation harness
//!   behind Fig. 12(b);
//! * [`dsl`] — TRACK/SPICE/NLFILT reference shapes as mini-language
//!   *source*, for measuring and differentially testing the compiled
//!   tiers (tree-walk interpreter vs. register-bytecode VM).

#![warn(missing_docs)]

pub mod dsl;
pub mod extend;
pub mod fma3d;
pub mod fock;
pub mod fptrak;
pub mod moldyn;
pub mod nlfilt;
pub mod spice;
pub mod spice_program;
pub mod synthetic;
pub mod track_program;

pub use extend::ExtendLoop;
pub use fma3d::QuadLoop;
pub use fock::FockBuildLoop;
pub use fptrak::FptrakLoop;
pub use moldyn::{ConstraintLoop, MoldynSystem, NonbondedLoop};
pub use nlfilt::{NlfiltInput, NlfiltLoop};
pub use spice::{BjtLoop, Dcdcmp15Loop, Dcdcmp70Loop};
pub use spice_program::{NewtonReport, SpiceProgram};
pub use synthetic::{AlphaLoop, BetaLoop, FullyParallelLoop, RandomDepLoop, SequentialChainLoop};
pub use track_program::{ProgramMode, ProgramReport, TrackProgram};
