//! Shadow-elision equivalence over the paper's workload kernels.
//!
//! Eliding instrumentation for statically-safe (untested) arrays is an
//! optimization, never a semantic change: a run with every array fully
//! instrumented (untested declarations promoted to tested with a dense
//! shadow — [`FullyInstrumented`]) must produce byte-identical results
//! to the elided run, under every rescheduling strategy. A tested array
//! that never fails the LRPD test commits exactly the last value
//! written per element, which is the same value a direct (untested)
//! write sequence leaves behind.

use rlrpd_core::{run_speculative, FullyInstrumented, RunConfig, SpecLoop, Strategy, WindowConfig};
use rlrpd_loops::fptrak::{FptrakInput, FptrakLoop};
use rlrpd_loops::nlfilt::{NlfiltInput, NlfiltLoop};
use rlrpd_loops::spice::BjtLoop;

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Nrd,
        Strategy::Rd,
        Strategy::SlidingWindow(WindowConfig::fixed(16)),
    ]
}

/// Assert bit-level equality of the two runs' final arrays (plain `==`
/// on `f64` would accept `-0.0 == 0.0` and reject equal NaNs).
fn assert_identical(lp: &dyn SpecLoop, label: &str) {
    for strategy in strategies() {
        let cfg = RunConfig::new(4).with_strategy(strategy);
        let elided = run_speculative(lp, cfg);
        let full = run_speculative(&FullyInstrumented::new(lp), cfg);
        assert_eq!(elided.arrays.len(), full.arrays.len(), "{label}");
        for ((name, a), (name2, b)) in elided.arrays.iter().zip(&full.arrays) {
            assert_eq!(name, name2, "{label}");
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                a_bits, b_bits,
                "{label}/{name} under {strategy:?}: elided run diverged from instrumented"
            );
        }
    }
}

#[test]
fn track_fptrak_is_instrumentation_invariant() {
    for input in FptrakInput::all() {
        assert_identical(&FptrakLoop::new(input), "fptrak");
    }
}

#[test]
fn spice_bjt_is_instrumentation_invariant() {
    // PARAM is a read-only untested array: promoting it to tested adds
    // marking on every read but must commit nothing.
    assert_identical(&BjtLoop::new(256, 64, 0xB17), "bjt");
}

#[test]
fn nlfilt_is_instrumentation_invariant() {
    // STATE is written through privately-owned rows (untested by
    // construction); full instrumentation re-checks that claim at
    // run time and must commit the same bytes.
    assert_identical(&NlfiltLoop::new(NlfiltInput::i8_100()), "nlfilt");
}
