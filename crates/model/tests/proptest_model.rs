//! Property tests for the Section-4 analytical model.

use proptest::prelude::*;
use rlrpd_model::{
    k_d_geometric, k_s_geometric, k_s_linear, redistribution_pays, simulate_stages,
    stage_sim::cumulative, t_static, t_total_geometric, ModelParams, RedistPolicy,
};

fn params() -> impl Strategy<Value = ModelParams> {
    (
        64usize..10_000,
        2usize..32,
        1.0f64..500.0,
        0.0f64..50.0,
        0.1f64..200.0,
    )
        .prop_map(|(n, p, omega, ell, sync)| ModelParams {
            n,
            p,
            omega,
            ell,
            sync,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// k_s grows with p and shrinks as the loop gets more parallel.
    #[test]
    fn k_s_monotonicity(alpha in 0.05f64..0.95, p in 2usize..64) {
        let k = k_s_geometric(alpha, p);
        prop_assert!(k >= 1.0);
        prop_assert!(k_s_geometric(alpha, p * 2) >= k);
        prop_assert!(k_s_geometric(alpha * 0.5, p) <= k + 1e-9);
    }

    /// The linear-loop stage count is exactly the reciprocal completed
    /// fraction.
    #[test]
    fn k_s_linear_reciprocal(beta in 0.0f64..0.99) {
        let k = k_s_linear(beta);
        prop_assert!((k * (1.0 - beta) - 1.0).abs() < 1e-9);
    }

    /// Eq. 4 and Eq. 7 agree: k_d redistributing stages leave exactly
    /// the cutoff where redistribution stops paying.
    #[test]
    fn eq4_eq7_consistency(m in params(), alpha in 0.1f64..0.9) {
        prop_assume!(m.omega > m.ell + 1e-6);
        let k_d = k_d_geometric(&m, alpha);
        prop_assert!(k_d >= 0.0);
        if k_d > 0.0 {
            // Just above k_d stages, the remainder is at the cutoff.
            let n_kd = m.n as f64 * alpha.powf(k_d);
            let cutoff = m.p as f64 * m.sync / (m.omega - m.ell);
            prop_assert!((n_kd - cutoff).abs() / cutoff.max(1.0) < 1e-6);
            // One stage earlier, redistribution still pays.
            let before = (m.n as f64 * alpha.powf((k_d - 1.0).max(0.0))).ceil() as usize;
            prop_assert!(redistribution_pays(&m, before));
        }
    }

    /// Every policy's simulation terminates, makes monotone progress,
    /// and its cumulative series is nondecreasing.
    #[test]
    fn simulations_terminate_and_are_monotone(
        m in params(),
        alpha in 0.0f64..0.9,
        policy in prop_oneof![
            Just(RedistPolicy::Never),
            Just(RedistPolicy::Adaptive),
            Just(RedistPolicy::Always)
        ],
    ) {
        let stages = simulate_stages(&m, alpha, policy);
        prop_assert!(!stages.is_empty());
        for w in stages.windows(2) {
            prop_assert!(w[1].remaining < w[0].remaining, "remaining must shrink");
        }
        let cum = cumulative(&stages);
        for w in cum.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        // Total time is at least the ideal parallel time of one pass.
        prop_assert!(*cum.last().unwrap() >= m.n as f64 * m.omega / m.p as f64);
    }

    /// The adaptive policy follows Eq. 4 exactly: every restart
    /// redistributes iff the remaining iteration count is at or above
    /// the cutoff. (Eq. 4 is a heuristic — the paper does not claim it
    /// dominates both fixed policies in every regime, and it doesn't;
    /// the Fig. 4 regime where it wins is covered by unit tests.)
    #[test]
    fn adaptive_follows_eq4_exactly(m in params(), alpha in 0.0f64..0.9) {
        let stages = simulate_stages(&m, alpha, RedistPolicy::Adaptive);
        prop_assert!(!stages[0].redistributed, "initial stage never redistributes");
        for r in &stages[1..] {
            prop_assert_eq!(
                r.redistributed,
                redistribution_pays(&m, r.remaining),
                "stage {} with {} remaining",
                r.stage,
                r.remaining
            );
        }
    }

    /// In the paper's profitable regime (ω ≫ ℓ + s/p, big loops), the
    /// adaptive policy beats pure NRD — the claim Fig. 4 makes — in
    /// both the closed forms and the simulation.
    /// (The win requires `k_s = log_{1/α} p` comfortably above
    /// `(1 + ℓ/ω)/(1 − α)` — Fig. 4's p = 8 regime; at p ≤ 4 and
    /// α ≈ 0.5 NRD legitimately ties, k_s being only 2.)
    #[test]
    fn adaptive_beats_nrd_in_the_profitable_regime(
        n in 2048usize..20_000,
        p in 8usize..17,
        alpha in 0.45f64..0.7,
    ) {
        let m = ModelParams { n, p, omega: 100.0, ell: 5.0, sync: 20.0 };
        let total = |policy| {
            cumulative(&simulate_stages(&m, alpha, policy)).last().copied().unwrap()
        };
        prop_assert!(total(RedistPolicy::Adaptive) < total(RedistPolicy::Never));
        prop_assert!(
            t_total_geometric(&m, alpha) < t_static(&m, k_s_geometric(alpha, m.p).ceil())
        );
    }
}
