//! Model inputs: machine/loop parameters and loop classes.

/// The quantities the paper assumes known a priori (estimable through
/// static analysis plus measurement).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelParams {
    /// `n`: iterations in the loop.
    pub n: usize,
    /// `p`: processors.
    pub p: usize,
    /// `ω`: useful computation per iteration.
    pub omega: f64,
    /// `ℓ`: cost of redistributing one iteration's data to another
    /// processor.
    pub ell: f64,
    /// `s`: cost of one barrier synchronization.
    pub sync: f64,
}

impl ModelParams {
    /// Total useful work `n·ω`.
    pub fn total_work(&self) -> f64 {
        self.n as f64 * self.omega
    }

    /// Ideal fully parallel time `n·ω/p + s` (the β = 0 case of Eq. 1).
    pub fn ideal_parallel_time(&self) -> f64 {
        self.total_work() / self.p as f64 + self.sync
    }
}

/// Dependence-distribution class of a partially parallel loop
/// (Section 4).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LoopClass {
    /// A constant fraction `1 − α` of the *remaining* iterations
    /// completes each stage; `alpha` ∈ [0, 1).
    Geometric {
        /// Fraction of remaining iterations that must re-execute.
        alpha: f64,
    },
    /// A constant fraction `1 − β` of the *original* iterations
    /// completes each stage; `beta` ∈ [0, 1).
    Linear {
        /// Fraction of original iterations still failing per stage.
        beta: f64,
    },
}

impl LoopClass {
    /// β = 0 / α = 0: the loop is fully parallel, one stage suffices.
    pub fn fully_parallel() -> Self {
        LoopClass::Linear { beta: 0.0 }
    }

    /// The fully sequential linear loop on `p` processors: exactly one
    /// processor's block completes per stage, `β = (p − 1)/p`.
    pub fn sequential(p: usize) -> Self {
        LoopClass::Linear {
            beta: (p as f64 - 1.0) / p as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_time_is_work_over_p_plus_barrier() {
        let m = ModelParams {
            n: 100,
            p: 4,
            omega: 2.0,
            ell: 0.1,
            sync: 3.0,
        };
        assert_eq!(m.total_work(), 200.0);
        assert_eq!(m.ideal_parallel_time(), 53.0);
    }

    #[test]
    fn sequential_class_beta() {
        match LoopClass::sequential(4) {
            LoopClass::Linear { beta } => assert!((beta - 0.75).abs() < 1e-12),
            _ => panic!(),
        }
    }
}
