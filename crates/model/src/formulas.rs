//! Closed-form expressions of Section 4.
//!
//! Conventions: stage counts are returned as real numbers (the paper
//! manipulates them symbolically); callers round up when they need a
//! discrete stage count. All times are in the same virtual unit as `ω`.

use crate::params::ModelParams;

/// `k_s` for a geometric (α) loop without redistribution (NRD):
/// re-execution stops once the remaining work fits one processor's
/// block, `n·α^{k} = n/p`, so `k_s = log_{1/α} p`.
///
/// Edge cases: `α = 0` (fully parallel) gives 1 stage; `p = 1` gives 1.
pub fn k_s_geometric(alpha: f64, p: usize) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
    assert!(p >= 1);
    if alpha == 0.0 || p == 1 {
        return 1.0;
    }
    ((p as f64).ln() / (1.0 / alpha).ln()).max(1.0)
}

/// `k_s` for a linear (β) loop: a constant fraction `1 − β` of the
/// original iterations completes per stage, so `k_s = 1/(1 − β)`.
pub fn k_s_linear(beta: f64) -> f64 {
    assert!((0.0..1.0).contains(&beta), "beta must be in [0,1)");
    1.0 / (1.0 - beta)
}

/// `k_s` for any [`crate::params::LoopClass`].
pub fn k_s(class: crate::params::LoopClass, p: usize) -> f64 {
    match class {
        crate::params::LoopClass::Geometric { alpha } => k_s_geometric(alpha, p),
        crate::params::LoopClass::Linear { beta } => k_s_linear(beta),
    }
}

/// Eq. 1 — NRD total time. Without redistribution every stage re-runs
/// blocks of the original size `n/p`, so
/// `T_static(n) = k_s · (n·ω/p + s)`.
///
/// Checks out against the paper's examples: a fully parallel loop
/// (`k_s = 1`) costs `n·ω/p + s`; a sequential loop on `p` processors
/// (`k_s = p`) costs `n·ω + p·s`.
pub fn t_static(m: &ModelParams, k_s: f64) -> f64 {
    k_s * (m.n as f64 * m.omega / m.p as f64 + m.sync)
}

/// Eq. 4 — the run-time redistribution condition: keep redistributing
/// while the remaining iteration count satisfies
/// `n_k ≥ p·s / (ω − ℓ)`. Never pays when `ω ≤ ℓ`.
pub fn redistribution_pays(m: &ModelParams, remaining: usize) -> bool {
    if m.omega <= m.ell {
        return false;
    }
    remaining as f64 >= m.p as f64 * m.sync / (m.omega - m.ell)
}

/// Eq. 7 — the number of redistributing stages for a geometric loop:
/// solve `n·α^{k_d} = p·s/(ω − ℓ)` for `k_d`, clamped to `≥ 0`.
pub fn k_d_geometric(m: &ModelParams, alpha: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha));
    if m.omega <= m.ell {
        return 0.0; // redistribution never pays (Eq. 4 vacuous)
    }
    if alpha == 0.0 {
        return 0.0; // loop completes in the initial stage
    }
    let cutoff = m.p as f64 * m.sync / (m.omega - m.ell);
    let ratio = cutoff / m.n as f64;
    if ratio >= 1.0 {
        return 0.0;
    }
    // log_alpha(ratio) with 0 < alpha < 1 and 0 < ratio < 1 is positive.
    ratio.ln() / alpha.ln()
}

/// Eq. 2–3 — time of the first `k_d` (redistributing) stages of a
/// geometric loop: `Σ_{i=0}^{k_d} (n_i·(ω+ℓ)/p + s)` with `n_i = n·α^i`.
/// The initial stage pays no redistribution (matching the paper's Fig. 4
/// setup), so `ℓ` is charged from stage 1 on.
pub fn t_dyn_geometric(m: &ModelParams, alpha: f64, k_d: f64) -> f64 {
    let stages = k_d.ceil().max(0.0) as usize;
    let mut t = 0.0;
    let mut n_i = m.n as f64;
    for i in 0..=stages {
        let ell = if i == 0 { 0.0 } else { m.ell };
        t += n_i * (m.omega + ell) / m.p as f64 + m.sync;
        n_i *= alpha;
    }
    t
}

/// Eq. 5–6 — total predicted time of the adaptive strategy on a
/// geometric loop: redistribute for `k_d` stages (Eq. 7), then fall back
/// to NRD from `n' = n·α^{k_d}` iterations:
/// `T(n) = T_dyn(n) + n_{k_d}·ω·k_s/p + k_s·s`.
pub fn t_total_geometric(m: &ModelParams, alpha: f64) -> f64 {
    let k_d = k_d_geometric(m, alpha);
    let t_dyn = t_dyn_geometric(m, alpha, k_d);
    let n_kd = m.n as f64 * alpha.powf(k_d.ceil());
    if n_kd < 1.0 {
        return t_dyn;
    }
    let k_s = k_s_geometric(alpha, m.p).ceil();
    t_dyn + n_kd * m.omega * k_s / m.p as f64 + k_s * m.sync
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            n: 1024,
            p: 8,
            omega: 100.0,
            ell: 5.0,
            sync: 20.0,
        }
    }

    #[test]
    fn k_s_geometric_matches_paper_example() {
        // Paper: "if α = 1/2, then k_s = log_2 p".
        assert!((k_s_geometric(0.5, 8) - 3.0).abs() < 1e-12);
        assert!((k_s_geometric(0.5, 16) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn k_s_geometric_edge_cases() {
        assert_eq!(k_s_geometric(0.0, 8), 1.0);
        assert_eq!(k_s_geometric(0.5, 1), 1.0);
    }

    #[test]
    fn k_s_linear_matches_paper_examples() {
        // Fully parallel: β = 0 ⇒ k_s = 1.
        assert_eq!(k_s_linear(0.0), 1.0);
        // Sequential on p processors: β = (p−1)/p ⇒ k_s = p.
        assert!((k_s_linear(0.75) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn t_static_matches_paper_limits() {
        let m = params();
        // Fully parallel: T = nω/p + s.
        let t_par = t_static(&m, 1.0);
        assert!((t_par - (1024.0 * 100.0 / 8.0 + 20.0)).abs() < 1e-9);
        // Sequential: k_s = p ⇒ T = nω + p·s.
        let t_seq = t_static(&m, m.p as f64);
        assert!((t_seq - (1024.0 * 100.0 + 8.0 * 20.0)).abs() < 1e-9);
    }

    #[test]
    fn eq4_threshold_is_ps_over_omega_minus_ell() {
        let m = ModelParams {
            n: 0,
            p: 8,
            omega: 10.0,
            ell: 2.0,
            sync: 16.0,
        };
        // threshold = 8·16/8 = 16
        assert!(redistribution_pays(&m, 16));
        assert!(!redistribution_pays(&m, 15));
    }

    #[test]
    fn eq4_never_pays_when_moving_costs_more_than_work() {
        let m = ModelParams {
            n: 0,
            p: 8,
            omega: 2.0,
            ell: 2.0,
            sync: 1.0,
        };
        assert!(!redistribution_pays(&m, usize::MAX));
    }

    #[test]
    fn k_d_solves_eq7() {
        let m = params();
        let alpha = 0.5;
        let k_d = k_d_geometric(&m, alpha);
        // n·α^{k_d} should equal the Eq. 4 cutoff p·s/(ω−ℓ).
        let cutoff = m.p as f64 * m.sync / (m.omega - m.ell);
        let n_kd = m.n as f64 * alpha.powf(k_d);
        assert!((n_kd - cutoff).abs() < 1e-6, "n_kd={n_kd} cutoff={cutoff}");
        assert!(k_d > 0.0);
    }

    #[test]
    fn k_d_clamps_to_zero_for_tiny_loops() {
        // Loop so small that redistribution never pays even at stage 0.
        let m = ModelParams {
            n: 2,
            p: 8,
            omega: 10.0,
            ell: 2.0,
            sync: 100.0,
        };
        assert_eq!(k_d_geometric(&m, 0.5), 0.0);
    }

    #[test]
    fn adaptive_total_beats_pure_nrd_when_redistribution_is_cheap() {
        let m = params(); // ω ≫ ℓ + s: redistribution pays
        let alpha = 0.5;
        let t_adaptive = t_total_geometric(&m, alpha);
        let t_nrd = t_static(&m, k_s_geometric(alpha, m.p).ceil());
        assert!(
            t_adaptive < t_nrd,
            "adaptive {t_adaptive} should beat NRD {t_nrd} when ω ≫ ℓ+s"
        );
    }

    #[test]
    fn k_s_dispatches_by_class() {
        use crate::params::LoopClass;
        assert_eq!(
            k_s(LoopClass::Geometric { alpha: 0.5 }, 8),
            k_s_geometric(0.5, 8)
        );
        assert_eq!(k_s(LoopClass::Linear { beta: 0.75 }, 8), k_s_linear(0.75));
        assert_eq!(k_s(LoopClass::fully_parallel(), 8), 1.0);
        assert_eq!(k_s(LoopClass::sequential(8), 8), 8.0);
    }

    #[test]
    fn t_dyn_first_stage_pays_no_redistribution() {
        let m = params();
        let one_stage = t_dyn_geometric(&m, 0.5, 0.0);
        assert!((one_stage - (m.n as f64 * m.omega / m.p as f64 + m.sync)).abs() < 1e-9);
    }
}
