//! Discrete per-stage simulation of the R-LRPD test under the three
//! redistribution policies of the paper's Fig. 4 experiment.
//!
//! The paper validates the Section-4 model with a synthetic geometric
//! loop (`α = 1/2`) on 8 processors, comparing *never* (NRD), *adaptive*
//! and *always* redistribution, and reporting (a) a per-stage breakdown
//! of loop time vs. overhead and (b) cumulative times per stage. This
//! module reproduces that series from the model alone; the `fig04`
//! bench runs the same configuration through the real engine and checks
//! the shapes agree.

use crate::formulas::redistribution_pays;
use crate::params::ModelParams;

/// When to redistribute remaining iterations over all processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RedistPolicy {
    /// NRD: failed processors re-run their own blocks, others idle.
    Never,
    /// Redistribute while Eq. 4 predicts a win, then stop.
    Adaptive,
    /// Redistribute before every restart.
    Always,
}

/// One simulated stage of the speculative execution.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageRecord {
    /// Stage index (0 = initial speculative run).
    pub stage: usize,
    /// Iterations remaining at stage start.
    pub remaining: usize,
    /// Whether this stage redistributed the remaining work.
    pub redistributed: bool,
    /// Parallel loop time of the stage (critical path).
    pub loop_time: f64,
    /// Redistribution overhead (remote misses + data movement).
    pub redist_overhead: f64,
    /// Synchronization overhead (barrier).
    pub sync_overhead: f64,
}

impl StageRecord {
    /// Total virtual time of the stage.
    pub fn total(&self) -> f64 {
        self.loop_time + self.redist_overhead + self.sync_overhead
    }
}

/// Simulate a geometric (α) loop stage by stage under `policy`.
///
/// Semantics, mirroring the paper's synthetic experiment:
///
/// * the initial stage executes all `n` iterations in blocks of `n/p`
///   and pays no redistribution;
/// * after each failed stage a fraction `α` of the remaining iterations
///   must re-execute;
/// * a redistributing restart re-blocks the `n_i` survivors over all
///   `p` processors (loop time `n_i·ω/p`, redistribution `n_i·ℓ/p`);
/// * a non-redistributing restart keeps the original block size, so its
///   loop time stays `n/p·ω` — constant per stage, the paper's stated
///   NRD disadvantage — until the remainder fits a single block;
/// * once the remaining work sits on one processor it completes (the
///   first processor always executes correctly).
pub fn simulate_stages(m: &ModelParams, alpha: f64, policy: RedistPolicy) -> Vec<StageRecord> {
    assert!((0.0..1.0).contains(&alpha));
    let p = m.p as f64;
    let original_block = (m.n as f64 / p).ceil();
    let mut records = Vec::new();
    let mut remaining = m.n;
    let mut stage = 0usize;

    while remaining > 0 {
        let redistributed = stage > 0
            && match policy {
                RedistPolicy::Never => false,
                RedistPolicy::Always => true,
                RedistPolicy::Adaptive => redistribution_pays(m, remaining),
            };
        // Block size this stage: redistribution re-blocks evenly; NRD
        // keeps the original block size.
        let block = if redistributed || stage == 0 {
            (remaining as f64 / p).ceil()
        } else {
            original_block.min(remaining as f64)
        };
        let loop_time = block * m.omega;
        let redist_overhead = if redistributed {
            remaining as f64 * m.ell / p
        } else {
            0.0
        };
        records.push(StageRecord {
            stage,
            remaining,
            redistributed,
            loop_time,
            redist_overhead,
            sync_overhead: m.sync,
        });

        // The work that survives to the next stage.
        let spans_one_block = remaining as f64 <= block + 0.5;
        remaining = if spans_one_block {
            0 // a single block always completes correctly
        } else {
            (remaining as f64 * alpha).floor() as usize
        };
        stage += 1;
        assert!(stage < 10_000, "stage simulation diverged");
    }
    records
}

/// Simulate a linear (β) loop stage by stage under `policy`: a
/// constant fraction `1 − β` of the *original* iterations completes
/// per stage — i.e. a constant number of processors succeeds each
/// time. The paper notes the redistribution analysis of this class is
/// less interesting ("the number of iterations each processor is
/// assigned varies"), but the NRD behaviour — `k_s = 1/(1 − β)` equal
/// stages — is exactly checkable.
pub fn simulate_stages_linear(
    m: &ModelParams,
    beta: f64,
    policy: RedistPolicy,
) -> Vec<StageRecord> {
    assert!((0.0..1.0).contains(&beta));
    let p = m.p as f64;
    let original_block = (m.n as f64 / p).ceil();
    let step = (((1.0 - beta) * m.n as f64).ceil() as usize).max(1);
    let mut records = Vec::new();
    let mut remaining = m.n;
    let mut stage = 0usize;

    while remaining > 0 {
        let redistributed = stage > 0
            && match policy {
                RedistPolicy::Never => false,
                RedistPolicy::Always => true,
                RedistPolicy::Adaptive => redistribution_pays(m, remaining),
            };
        let block = if redistributed || stage == 0 {
            (remaining as f64 / p).ceil()
        } else {
            original_block.min(remaining as f64)
        };
        records.push(StageRecord {
            stage,
            remaining,
            redistributed,
            loop_time: block * m.omega,
            redist_overhead: if redistributed {
                remaining as f64 * m.ell / p
            } else {
                0.0
            },
            sync_overhead: m.sync,
        });
        remaining = remaining.saturating_sub(step);
        stage += 1;
        assert!(stage < 1_000_000, "linear stage simulation diverged");
    }
    records
}

/// Cumulative totals after each stage (the paper's Fig. 4(b) series).
pub fn cumulative(records: &[StageRecord]) -> Vec<f64> {
    let mut acc = 0.0;
    records
        .iter()
        .map(|r| {
            acc += r.total();
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_params() -> ModelParams {
        // ω ≫ ℓ + s so redistribution initially pays, as in the paper.
        ModelParams {
            n: 4096,
            p: 8,
            omega: 100.0,
            ell: 10.0,
            sync: 50.0,
        }
    }

    #[test]
    fn never_policy_has_constant_stage_loop_time() {
        let recs = simulate_stages(&fig4_params(), 0.5, RedistPolicy::Never);
        assert!(recs.len() >= 3);
        let first = recs[0].loop_time;
        for r in &recs[..recs.len() - 1] {
            assert_eq!(r.loop_time, first, "NRD loop time must stay constant");
            assert_eq!(r.redist_overhead, 0.0);
        }
    }

    #[test]
    fn always_policy_shrinks_stage_time_geometrically() {
        let recs = simulate_stages(&fig4_params(), 0.5, RedistPolicy::Always);
        for w in recs.windows(2) {
            assert!(
                w[1].loop_time <= w[0].loop_time,
                "RD stage loop time must not grow"
            );
            if w[0].remaining >= fig4_params().p && w[1].remaining >= fig4_params().p {
                assert!(
                    w[1].loop_time < w[0].loop_time,
                    "RD stage loop time must shrink while blocks hold >1 iteration"
                );
            }
        }
        assert!(recs[1].redist_overhead > 0.0);
    }

    #[test]
    fn initial_stage_never_pays_redistribution() {
        for policy in [
            RedistPolicy::Never,
            RedistPolicy::Adaptive,
            RedistPolicy::Always,
        ] {
            let recs = simulate_stages(&fig4_params(), 0.5, policy);
            assert!(!recs[0].redistributed);
            assert_eq!(recs[0].redist_overhead, 0.0);
        }
    }

    #[test]
    fn adaptive_stops_redistributing_below_cutoff() {
        // Make the cutoff bite early: huge sync cost.
        let m = ModelParams {
            n: 1024,
            p: 8,
            omega: 10.0,
            ell: 2.0,
            sync: 200.0,
        };
        // cutoff = p·s/(ω−ℓ) = 8·200/8 = 200 iterations.
        let recs = simulate_stages(&m, 0.5, RedistPolicy::Adaptive);
        let mut seen_non_redist_after_redist = false;
        let mut last_redist = true;
        for r in &recs[1..] {
            if r.remaining >= 200 {
                assert!(r.redistributed, "above cutoff must redistribute");
            } else {
                assert!(!r.redistributed, "below cutoff must not redistribute");
                if last_redist {
                    seen_non_redist_after_redist = true;
                }
            }
            last_redist = r.redistributed;
        }
        assert!(seen_non_redist_after_redist, "adaptive should switch modes");
    }

    #[test]
    fn totals_rank_as_in_fig4() {
        // In the paper's regime the NRD strategy performs worst "by a
        // wide margin", and adaptive ends at or below always.
        let m = fig4_params();
        let total = |p| {
            cumulative(&simulate_stages(&m, 0.5, p))
                .last()
                .copied()
                .unwrap()
        };
        let never = total(RedistPolicy::Never);
        let adaptive = total(RedistPolicy::Adaptive);
        let always = total(RedistPolicy::Always);
        assert!(adaptive < never, "adaptive {adaptive} < never {never}");
        assert!(always < never, "always {always} < never {never}");
        assert!(
            adaptive <= always + 1e-9,
            "adaptive {adaptive} <= always {always}"
        );
    }

    #[test]
    fn cumulative_is_monotone_prefix_sum() {
        let recs = simulate_stages(&fig4_params(), 0.5, RedistPolicy::Always);
        let cum = cumulative(&recs);
        assert_eq!(cum.len(), recs.len());
        let mut acc = 0.0;
        for (c, r) in cum.iter().zip(&recs) {
            acc += r.total();
            assert!((c - acc).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_loop_takes_reciprocal_stages_under_nrd() {
        let m = fig4_params(); // n = 4096, p = 8
                               // β = 3/4: a quarter of the original iterations per stage -> 4
                               // stages, each re-running a full original block under NRD.
        let recs = simulate_stages_linear(&m, 0.75, RedistPolicy::Never);
        assert_eq!(recs.len(), 4);
        let first = recs[0].loop_time;
        for r in &recs {
            assert_eq!(r.loop_time, first, "NRD block size stays constant");
        }
    }

    #[test]
    fn sequential_linear_loop_is_p_stages() {
        let m = fig4_params();
        let beta = (m.p as f64 - 1.0) / m.p as f64;
        let recs = simulate_stages_linear(&m, beta, RedistPolicy::Never);
        assert_eq!(recs.len(), m.p, "one block completes per stage");
        // Total loop time = n·ω, the paper's T = nω + p·s.
        let total: f64 = recs.iter().map(|r| r.total()).sum();
        let expect = m.n as f64 * m.omega + m.p as f64 * m.sync;
        assert!(
            (total - expect).abs() / expect < 0.01,
            "{total} vs {expect}"
        );
    }

    #[test]
    fn fully_parallel_linear_loop_is_one_stage() {
        let recs = simulate_stages_linear(&fig4_params(), 0.0, RedistPolicy::Never);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn fully_parallel_loop_is_one_stage() {
        let recs = simulate_stages(&fig4_params(), 0.0, RedistPolicy::Adaptive);
        assert_eq!(recs.len(), 1);
    }
}
