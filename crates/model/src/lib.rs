//! Analytical performance model of recursive speculative parallelization
//! — Section 4 of the R-LRPD paper.
//!
//! The model classifies partially parallel loops by their dependence
//! distribution:
//!
//! * **geometric (α) loops** — a constant fraction `1 − α` of the
//!   *currently remaining* iterations completes per speculative stage;
//! * **linear (β) loops** — a constant fraction `1 − β` of the
//!   *original* iterations completes per stage (a constant number of
//!   processors succeeds each time).
//!
//! Given `(n, p, ω, ℓ, s)` — iterations, processors, work per iteration,
//! redistribution cost per iteration, and barrier cost — the model
//! predicts:
//!
//! * the stage count without redistribution, `k_s` ([`k_s_geometric`],
//!   [`k_s_linear`]),
//! * the NRD execution time `T_static` (Eq. 1),
//! * the RD execution time `T_dyn` (Eq. 2–3),
//! * the run-time redistribution cutoff `n_kd ≥ p·s/(ω−ℓ)` (Eq. 4),
//! * the optimal redistribution stage count `k_d` (Eq. 7),
//! * the combined total `T(n) = T_dyn + T_static(n_kd)` (Eq. 5–6).
//!
//! [`stage_sim`] runs the model as a discrete per-stage simulation under
//! the paper's three policies (*never*, *adaptive*, *always*
//! redistribute) and produces the per-stage/cumulative series of Fig. 4.
//!
//! ```
//! use rlrpd_model::{k_s_geometric, simulate_stages, ModelParams, RedistPolicy};
//!
//! let m = ModelParams { n: 4096, p: 8, omega: 100.0, ell: 10.0, sync: 50.0 };
//! // α = 1/2 on 8 processors: k_s = log₂ 8 = 3 NRD restarts bound.
//! assert_eq!(k_s_geometric(0.5, 8), 3.0);
//! let stages = simulate_stages(&m, 0.5, RedistPolicy::Adaptive);
//! assert!(!stages[0].redistributed, "the initial run never redistributes");
//! ```

#![warn(missing_docs)]

pub mod formulas;
pub mod params;
pub mod stage_sim;

pub use formulas::{
    k_d_geometric, k_s, k_s_geometric, k_s_linear, redistribution_pays, t_dyn_geometric, t_static,
    t_total_geometric,
};
pub use params::{LoopClass, ModelParams};
pub use stage_sim::{simulate_stages, simulate_stages_linear, RedistPolicy, StageRecord};
