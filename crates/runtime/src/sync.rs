//! Point-to-point post/wait cells for DOACROSS pipelining.
//!
//! A [`PostCell`] is a monotone sequence counter shared by the lanes of
//! a DOACROSS execution: it holds the number of iterations that have
//! *posted* (completed and published their writes), always a prefix of
//! the iteration space because lanes post in iteration order. One cell
//! exists per proven dependence distance; a consumer iteration `j`
//! waits until the counter covers its source iteration (`seq ≥ j − d +
//! 1`) before reading, and waits for its own turn (`seq == j`) before
//! posting `j + 1`.
//!
//! Waiting spins briefly (the producer is typically one body-execution
//! away) and then parks on a condvar, so a deep pipeline stall costs no
//! CPU. Each cell is cache-line padded: the counters are the only
//! cross-lane write traffic of a DOACROSS run, and false sharing
//! between cells would put every dependence on one contended line.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Spins before parking: long enough to cover a short body execution,
/// short enough that a genuinely stalled lane yields its core quickly.
const SPIN_ROUNDS: usize = 256;

/// A cache-line-padded monotone sequence counter with blocking waits.
///
/// The counter only increases ([`PostCell::post`]); waiters observe the
/// value with `Acquire` so every write that happened before the
/// producer's `Release` post is visible after the wait returns — this
/// pair is the entire memory-ordering contract of the DOACROSS tier.
#[repr(align(64))]
pub struct PostCell {
    seq: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl std::fmt::Debug for PostCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PostCell({})", self.load())
    }
}

impl PostCell {
    /// A cell primed at `seq` (use the resume frontier when continuing
    /// a partially completed run, 0 otherwise).
    pub fn new(seq: usize) -> Self {
        PostCell {
            seq: AtomicUsize::new(seq),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Current sequence value (`Acquire`).
    pub fn load(&self) -> usize {
        self.seq.load(Ordering::Acquire)
    }

    /// Publish a new sequence value (`Release`) and wake every parked
    /// waiter. `seq` must not decrease; posts are made in iteration
    /// order by construction of the lane schedule.
    pub fn post(&self, seq: usize) {
        debug_assert!(seq >= self.seq.load(Ordering::Relaxed));
        // The store happens under the lock so a waiter cannot check the
        // counter, miss the update, and then park forever: either it
        // sees the new value, or it parks before the store and the
        // notify wakes it.
        let _g = self.lock.lock().unwrap();
        self.seq.store(seq, Ordering::Release);
        self.cv.notify_all();
    }

    /// Block until the counter reaches `target` (or `abort` is raised).
    /// Returns `false` on abort — the caller must unwind its lane
    /// without posting further.
    pub fn wait_for(&self, target: usize, abort: &AtomicBool) -> bool {
        for _ in 0..SPIN_ROUNDS {
            if self.seq.load(Ordering::Acquire) >= target {
                return true;
            }
            if abort.load(Ordering::Relaxed) {
                return false;
            }
            std::hint::spin_loop();
        }
        let mut g = self.lock.lock().unwrap();
        loop {
            if self.seq.load(Ordering::Acquire) >= target {
                return true;
            }
            if abort.load(Ordering::Relaxed) {
                return false;
            }
            let (ng, _) = self
                .cv
                .wait_timeout(g, std::time::Duration::from_millis(10))
                .unwrap();
            g = ng;
        }
    }

    /// Wake every parked waiter without changing the counter — used by
    /// the abort path so lanes observing the abort flag can exit their
    /// waits promptly.
    pub fn wake_all(&self) {
        let _g = self.lock.lock().unwrap();
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn wait_returns_immediately_when_already_posted() {
        let c = PostCell::new(5);
        let abort = AtomicBool::new(false);
        assert!(c.wait_for(3, &abort));
        assert!(c.wait_for(5, &abort));
        assert_eq!(c.load(), 5);
    }

    #[test]
    fn wait_blocks_until_posted_across_threads() {
        let c = Arc::new(PostCell::new(0));
        let abort = Arc::new(AtomicBool::new(false));
        let (c2, a2) = (Arc::clone(&c), Arc::clone(&abort));
        let h = std::thread::spawn(move || c2.wait_for(1000, &a2));
        for s in 1..=1000 {
            c.post(s);
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn abort_releases_a_parked_waiter() {
        let c = Arc::new(PostCell::new(0));
        let abort = Arc::new(AtomicBool::new(false));
        let (c2, a2) = (Arc::clone(&c), Arc::clone(&abort));
        let h = std::thread::spawn(move || c2.wait_for(usize::MAX, &a2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        abort.store(true, Ordering::Relaxed);
        c.wake_all();
        assert!(!h.join().unwrap(), "aborted wait reports failure");
    }

    #[test]
    fn pipeline_of_three_lanes_posts_in_order() {
        // Three lanes, distance-3 protocol: each lane handles j, j+3, …
        // and posts j+1 after waiting for seq == j. The final counter
        // must equal n and every post must have been in order.
        let n = 300usize;
        let c = Arc::new(PostCell::new(0));
        let abort = Arc::new(AtomicBool::new(false));
        let mut hs = Vec::new();
        for w in 0..3usize {
            let (c, abort) = (Arc::clone(&c), Arc::clone(&abort));
            hs.push(std::thread::spawn(move || {
                let mut j = w;
                while j < n {
                    assert!(c.wait_for(j, &abort));
                    c.post(j + 1);
                    j += 3;
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(), n);
    }
}
