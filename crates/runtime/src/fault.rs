//! Deterministic fault injection for speculative stages.
//!
//! The R-LRPD containment story is only trustworthy if every recovery
//! path — contained panic, watchdog-tripping straggler, failed
//! checkpoint — is exercised by deterministic tests. A [`FaultPlan`]
//! describes *exactly* which faults to inject and where:
//!
//! * a **panic** at a `(proc, iteration)` pair: the engine raises an
//!   [`InjectedFault`] unwind just before the iteration body runs,
//!   exercising the same catch/contain/re-execute machinery a genuine
//!   program fault would;
//! * a **delay** at a `(proc, iteration)` pair: extra virtual cost
//!   charged to that iteration, inflating the stage's critical path so
//!   the driver's watchdog budget trips deterministically;
//! * a **checkpoint fault** at a stage ordinal: the engine's
//!   checkpoint phase reports failure at the start of that stage
//!   (before any speculative write), modelling an I/O or allocation
//!   error in the checkpoint machinery;
//! * **journal I/O faults** at a journal-record ordinal: a *short
//!   write* (the record is torn after a byte prefix and the run aborts,
//!   modelling a crash mid-append), a *silent corruption* (one payload
//!   byte is flipped as the record lands on disk, modelling media
//!   corruption the next open must detect and truncate), and an
//!   *fsync failure* (the durability barrier itself reports an error).
//!
//! Injected panics and checkpoint faults are **one-shot**: each site
//! fires at most once per plan, modelling transient faults so the
//! containment layer's retry actually succeeds. Delays fire on every
//! execution of their site (a persistently slow iteration).
//!
//! A plan is injected through `EngineCfg`; engines without a plan pay
//! only a single well-predicted branch per iteration (the no-fault fast
//! path). Because sites are keyed by the *schedule-determined*
//! `(proc, iteration)` pair, not by thread timing, injection is
//! deterministic across the simulated, threaded, and pooled executors.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// The unwind payload of an injected panic.
///
/// Raised with `std::panic::resume_unwind` rather than `panic!`, so the
/// process-global panic hook never runs: injected faults are silent on
/// stderr while genuine program panics still print normally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// Virtual processor the fault was injected on.
    pub proc: u32,
    /// Iteration the fault was injected at.
    pub iter: usize,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault at (proc {}, iteration {})",
            self.proc, self.iter
        )
    }
}

/// Render a caught panic payload as a human-readable message.
///
/// Understands the payload types that actually occur: `&str` / `String`
/// from `panic!`, and [`InjectedFault`] from fault injection.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        f.to_string()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Wildcard processor: the site fires on whichever processor executes
/// its iteration (each stage's blocks partition the iteration space, so
/// exactly one does).
const ANY_PROC: u32 = u32::MAX;

/// One injectable site keyed by `(proc, iteration)`.
#[derive(Debug)]
struct Site {
    proc: u32,
    iter: u32,
    /// One-shot arming (panic sites) — cleared on first firing.
    armed: AtomicBool,
}

impl Site {
    fn new(proc: u32, iter: usize) -> Self {
        Site {
            proc,
            iter: iter as u32,
            armed: AtomicBool::new(true),
        }
    }

    fn matches(&self, proc: u32, iter: usize) -> bool {
        (self.proc == proc || self.proc == ANY_PROC) && self.iter as usize == iter
    }
}

/// A worker-subprocess fault directive, keyed by dispatch ordinal (the
/// count of block transmissions over the run, re-dispatches included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker aborts (SIGABRT) on receipt — models a crash/SIGKILL;
    /// the supervisor sees EOF and must respawn + re-dispatch.
    Kill,
    /// The worker's main thread stops making progress while its
    /// heartbeat thread keeps beating — only the per-block deadline can
    /// catch it.
    Hang,
    /// The worker computes the block normally but lies about the chain
    /// hash of its inputs — the supervisor must reject the result as
    /// divergent and re-dispatch.
    CorruptResult,
}

/// A deterministic, seedable description of faults to inject into a
/// speculative run. See the module docs for the fault vocabulary.
///
/// Plans hold interior one-shot state; build a **fresh plan per run**
/// when comparing runs (e.g. cross-executor equivalence tests).
#[derive(Debug, Default)]
pub struct FaultPlan {
    panics: Vec<Site>,
    delays: Vec<(u32, u32, f64)>,
    checkpoint_faults: Vec<Site>,
    /// `(site keyed by record ordinal, bytes to keep)` — the append of
    /// that journal record is torn after `keep` bytes.
    io_short_writes: Vec<(Site, u32)>,
    /// Record ordinals whose payload is silently corrupted on append.
    io_corrupts: Vec<Site>,
    /// Record ordinals whose durability barrier (fsync) fails.
    io_fsync_fails: Vec<Site>,
    /// `(site keyed by record ordinal, remaining transient failures)` —
    /// the first `remaining` write attempts of that record fail with a
    /// transient errno (EINTR); the bounded retry in the journal should
    /// absorb them.
    io_transients: Vec<(Site, AtomicU32)>,
    /// `(site keyed by dispatch ordinal, directive)` — worker-process
    /// faults, delivered in the block request frame.
    worker_faults: Vec<(Site, WorkerFault)>,
    /// `(site keyed by stage ordinal, phantom bytes)` — the engine
    /// charges the bytes to its shadow-budget accountant at the end of
    /// that stage's execute phase (and releases them immediately after
    /// the pressure check), simulating a burst of shadow growth. The
    /// injection only bites when a budget cap is armed: with an
    /// unlimited budget the charge is accounted (it still shows in the
    /// peak) but can never trip pressure.
    shadow_pressure: Vec<(Site, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; useful for measuring the cost of
    /// the injection checks themselves).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a one-shot panic at `(proc, iter)`.
    pub fn panic_at(mut self, proc: usize, iter: usize) -> Self {
        self.panics.push(Site::new(proc as u32, iter));
        self
    }

    /// Add a one-shot panic at iteration `iter` on whichever processor
    /// executes it (exact-`(proc, iter)` sites only fire when the
    /// schedule happens to place the iteration on that processor; an
    /// iteration-keyed site always fires).
    pub fn panic_at_iter(mut self, iter: usize) -> Self {
        self.panics.push(Site::new(ANY_PROC, iter));
        self
    }

    /// Add `cost` virtual time units of delay to every execution of
    /// iteration `iter` on processor `proc`.
    pub fn delay_at(mut self, proc: usize, iter: usize, cost: f64) -> Self {
        self.delays.push((proc as u32, iter as u32, cost));
        self
    }

    /// Fail the checkpoint phase of stage ordinal `stage` (0-based,
    /// counted over the engine's lifetime), one-shot.
    pub fn checkpoint_fault_at(mut self, stage: usize) -> Self {
        self.checkpoint_faults.push(Site::new(0, stage));
        self
    }

    /// Tear the append of journal record ordinal `record` (0-based over
    /// the journal's lifetime, header included) after `keep` bytes,
    /// one-shot. The append reports an I/O error after writing the
    /// prefix, modelling a crash mid-write: the next open must truncate
    /// the torn tail.
    pub fn short_write_at(mut self, record: usize, keep: usize) -> Self {
        self.io_short_writes
            .push((Site::new(0, record), keep as u32));
        self
    }

    /// Silently flip one byte of journal record ordinal `record` as it
    /// lands on disk, one-shot. The append *succeeds* — the corruption
    /// is only detectable by the checksum/chain validation on the next
    /// open, which must truncate the record.
    pub fn corrupt_record_at(mut self, record: usize) -> Self {
        self.io_corrupts.push(Site::new(0, record));
        self
    }

    /// Fail the fsync durability barrier after journal record ordinal
    /// `record` is written, one-shot.
    pub fn fsync_fail_at(mut self, record: usize) -> Self {
        self.io_fsync_fails.push(Site::new(0, record));
        self
    }

    /// Fail the first `times` write attempts of journal record ordinal
    /// `record` with a transient errno (EINTR). Unlike the other I/O
    /// sites this is a *counted* site: it fires `times` times, then the
    /// write goes through — exercising the journal's bounded retry.
    pub fn transient_io_at(mut self, record: usize, times: u32) -> Self {
        self.io_transients
            .push((Site::new(0, record), AtomicU32::new(times)));
        self
    }

    /// Kill the worker that receives dispatch ordinal `dispatch`
    /// (0-based count of block transmissions over the run), one-shot.
    pub fn kill_worker_at(mut self, dispatch: usize) -> Self {
        self.worker_faults
            .push((Site::new(ANY_PROC, dispatch), WorkerFault::Kill));
        self
    }

    /// Hang the worker that receives dispatch ordinal `dispatch` — its
    /// heartbeats continue but the block never completes — one-shot.
    pub fn hang_worker_at(mut self, dispatch: usize) -> Self {
        self.worker_faults
            .push((Site::new(ANY_PROC, dispatch), WorkerFault::Hang));
        self
    }

    /// Make the worker that receives dispatch ordinal `dispatch` return
    /// a result with a corrupted input-chain hash, one-shot.
    pub fn corrupt_result_at(mut self, dispatch: usize) -> Self {
        self.worker_faults
            .push((Site::new(ANY_PROC, dispatch), WorkerFault::CorruptResult));
        self
    }

    /// Charge `bytes` of phantom shadow growth to the budget accountant
    /// at the end of stage ordinal `stage`'s execute phase, one-shot.
    /// Exercises the budget-pressure containment path (down-tier ladder,
    /// window shrink, sequential fallback) deterministically; a run with
    /// no budget cap armed records the charge in the peak but never
    /// trips pressure.
    pub fn shadow_pressure_at(mut self, stage: usize, bytes: u64) -> Self {
        self.shadow_pressure.push((Site::new(0, stage), bytes));
        self
    }

    /// Derive a single-panic plan from `seed` for a loop of `n`
    /// iterations: the canonical "inject a panic into any one
    /// iteration" configuration of the containment acceptance suite,
    /// reproducible from the seed alone. The site is iteration-keyed,
    /// so it fires exactly once — on whichever processor the schedule
    /// assigns that iteration to.
    pub fn seeded_panic(seed: u64, n: usize) -> Self {
        let mut s = SplitMix(seed);
        let iter = (s.next() % n.max(1) as u64) as usize;
        FaultPlan::new().panic_at_iter(iter)
    }

    /// True when the plan has no sites at all (checks can be skipped).
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.delays.is_empty()
            && self.checkpoint_faults.is_empty()
            && self.io_short_writes.is_empty()
            && self.io_corrupts.is_empty()
            && self.io_fsync_fails.is_empty()
            && self.io_transients.is_empty()
            && self.worker_faults.is_empty()
            && self.shadow_pressure.is_empty()
    }

    /// Should a panic fire for iteration `iter` on processor `proc`?
    /// Disarms the site (one-shot).
    #[inline]
    pub fn should_panic(&self, proc: u32, iter: usize) -> bool {
        self.panics
            .iter()
            .any(|s| s.matches(proc, iter) && s.armed.swap(false, Ordering::Relaxed))
    }

    /// Extra virtual cost to charge iteration `iter` on processor
    /// `proc` (0.0 almost always).
    #[inline]
    pub fn delay_for(&self, proc: u32, iter: usize) -> f64 {
        self.delays
            .iter()
            .filter(|(dp, di, _)| *dp == proc && *di as usize == iter)
            .map(|(_, _, c)| *c)
            .sum()
    }

    /// Should the checkpoint phase of stage ordinal `stage` fail?
    /// Disarms the site (one-shot).
    #[inline]
    pub fn should_fail_checkpoint(&self, stage: usize) -> bool {
        self.checkpoint_faults
            .iter()
            .any(|s| s.iter as usize == stage && s.armed.swap(false, Ordering::Relaxed))
    }

    /// Should the append of journal record ordinal `record` be torn?
    /// Returns the byte count to keep, disarming the site (one-shot).
    #[inline]
    pub fn io_short_write(&self, record: usize) -> Option<usize> {
        self.io_short_writes
            .iter()
            .find(|(s, _)| s.iter as usize == record && s.armed.swap(false, Ordering::Relaxed))
            .map(|(_, keep)| *keep as usize)
    }

    /// Should journal record ordinal `record` be silently corrupted on
    /// append? Disarms the site (one-shot).
    #[inline]
    pub fn io_corrupt(&self, record: usize) -> bool {
        self.io_corrupts
            .iter()
            .any(|s| s.iter as usize == record && s.armed.swap(false, Ordering::Relaxed))
    }

    /// Should the fsync after journal record ordinal `record` fail?
    /// Disarms the site (one-shot).
    #[inline]
    pub fn io_fsync_fail(&self, record: usize) -> bool {
        self.io_fsync_fails
            .iter()
            .any(|s| s.iter as usize == record && s.armed.swap(false, Ordering::Relaxed))
    }

    /// Should this write attempt of journal record ordinal `record`
    /// fail with a transient errno? Decrements the site's remaining
    /// count (counted, not one-shot).
    #[inline]
    pub fn io_transient(&self, record: usize) -> bool {
        self.io_transients.iter().any(|(s, remaining)| {
            s.iter as usize == record
                && remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok()
        })
    }

    /// The worker fault directive (if any) for dispatch ordinal
    /// `dispatch`. Disarms the site (one-shot), so a re-dispatch of the
    /// same block after recovery runs clean.
    #[inline]
    pub fn worker_fault(&self, dispatch: usize) -> Option<WorkerFault> {
        self.worker_faults
            .iter()
            .find(|(s, _)| s.iter as usize == dispatch && s.armed.swap(false, Ordering::Relaxed))
            .map(|(_, k)| *k)
    }

    /// Phantom shadow bytes (if any) to charge at the end of stage
    /// ordinal `stage`'s execute phase. Disarms the site (one-shot), so
    /// the stage's re-execution under the degraded configuration runs
    /// clean.
    #[inline]
    pub fn shadow_pressure(&self, stage: usize) -> Option<u64> {
        self.shadow_pressure
            .iter()
            .find(|(s, _)| s.iter as usize == stage && s.armed.swap(false, Ordering::Relaxed))
            .map(|(_, bytes)| *bytes)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        for s in &self.panics {
            parts.push(if s.proc == ANY_PROC {
                format!("panic@iter {}", s.iter)
            } else {
                format!("panic@(proc {}, iter {})", s.proc, s.iter)
            });
        }
        for (proc, iter, cost) in &self.delays {
            parts.push(format!("delay {cost}@(proc {proc}, iter {iter})"));
        }
        for s in &self.checkpoint_faults {
            parts.push(format!("checkpoint-fault@stage {}", s.iter));
        }
        for (s, keep) in &self.io_short_writes {
            parts.push(format!("short-write@record {} (keep {keep})", s.iter));
        }
        for s in &self.io_corrupts {
            parts.push(format!("corrupt@record {}", s.iter));
        }
        for s in &self.io_fsync_fails {
            parts.push(format!("fsync-fail@record {}", s.iter));
        }
        for (s, remaining) in &self.io_transients {
            parts.push(format!(
                "transient-io@record {} (×{})",
                s.iter,
                remaining.load(Ordering::Relaxed)
            ));
        }
        for (s, kind) in &self.worker_faults {
            let name = match kind {
                WorkerFault::Kill => "kill-worker",
                WorkerFault::Hang => "hang-worker",
                WorkerFault::CorruptResult => "corrupt-result",
            };
            parts.push(format!("{name}@dispatch {}", s.iter));
        }
        for (s, bytes) in &self.shadow_pressure {
            parts.push(format!("shadow-pressure@stage {} ({bytes} bytes)", s.iter));
        }
        if parts.is_empty() {
            write!(f, "no faults")
        } else {
            write!(f, "{}", parts.join(", "))
        }
    }
}

/// SplitMix64 — deterministic seed expansion with no dependencies.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_sites_are_one_shot() {
        let plan = FaultPlan::new().panic_at(2, 7);
        assert!(!plan.should_panic(2, 6));
        assert!(!plan.should_panic(1, 7));
        assert!(plan.should_panic(2, 7), "armed site fires");
        assert!(!plan.should_panic(2, 7), "fired site is disarmed");
    }

    #[test]
    fn delays_fire_every_time() {
        let plan = FaultPlan::new().delay_at(0, 3, 1.5).delay_at(0, 3, 2.0);
        assert_eq!(plan.delay_for(0, 3), 3.5);
        assert_eq!(plan.delay_for(0, 3), 3.5, "delays are not one-shot");
        assert_eq!(plan.delay_for(1, 3), 0.0);
    }

    #[test]
    fn checkpoint_faults_are_one_shot_per_stage() {
        let plan = FaultPlan::new().checkpoint_fault_at(1);
        assert!(!plan.should_fail_checkpoint(0));
        assert!(plan.should_fail_checkpoint(1));
        assert!(!plan.should_fail_checkpoint(1));
    }

    #[test]
    fn seeded_plan_is_reproducible_and_in_range() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let a = FaultPlan::seeded_panic(seed, 100);
            let b = FaultPlan::seeded_panic(seed, 100);
            let site_a = &a.panics[0];
            let site_b = &b.panics[0];
            assert_eq!((site_a.proc, site_a.iter), (site_b.proc, site_b.iter));
            assert_eq!(site_a.proc, ANY_PROC);
            assert!((site_a.iter as usize) < 100);
        }
    }

    #[test]
    fn iteration_keyed_sites_fire_on_any_processor() {
        let plan = FaultPlan::new().panic_at_iter(9);
        assert!(!plan.should_panic(5, 8));
        assert!(plan.should_panic(5, 9), "fires on whichever proc runs it");
        assert!(!plan.should_panic(0, 9), "still one-shot");
    }

    #[test]
    fn display_summarizes_sites() {
        let plan = FaultPlan::new()
            .panic_at(1, 2)
            .panic_at_iter(7)
            .delay_at(0, 3, 2.5)
            .checkpoint_fault_at(4);
        let text = plan.to_string();
        assert!(text.contains("panic@(proc 1, iter 2)"), "{text}");
        assert!(text.contains("panic@iter 7"), "{text}");
        assert!(text.contains("delay 2.5@(proc 0, iter 3)"), "{text}");
        assert!(text.contains("checkpoint-fault@stage 4"), "{text}");
        assert_eq!(FaultPlan::new().to_string(), "no faults");
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().panic_at(0, 0).is_empty());
        assert!(!FaultPlan::new().short_write_at(0, 4).is_empty());
        assert!(!FaultPlan::new().corrupt_record_at(0).is_empty());
        assert!(!FaultPlan::new().fsync_fail_at(0).is_empty());
    }

    #[test]
    fn io_faults_are_one_shot_and_keyed_by_record() {
        let plan = FaultPlan::new()
            .short_write_at(2, 11)
            .corrupt_record_at(3)
            .fsync_fail_at(4);
        assert_eq!(plan.io_short_write(1), None);
        assert_eq!(plan.io_short_write(2), Some(11));
        assert_eq!(plan.io_short_write(2), None, "short-write is one-shot");
        assert!(!plan.io_corrupt(2));
        assert!(plan.io_corrupt(3));
        assert!(!plan.io_corrupt(3), "corruption is one-shot");
        assert!(!plan.io_fsync_fail(3));
        assert!(plan.io_fsync_fail(4));
        assert!(!plan.io_fsync_fail(4), "fsync failure is one-shot");
    }

    #[test]
    fn io_faults_display() {
        let plan = FaultPlan::new()
            .short_write_at(1, 8)
            .corrupt_record_at(2)
            .fsync_fail_at(3);
        let text = plan.to_string();
        assert!(text.contains("short-write@record 1 (keep 8)"), "{text}");
        assert!(text.contains("corrupt@record 2"), "{text}");
        assert!(text.contains("fsync-fail@record 3"), "{text}");
    }

    #[test]
    fn transient_io_fires_a_counted_number_of_times() {
        let plan = FaultPlan::new().transient_io_at(2, 3);
        assert!(!plan.is_empty());
        assert!(!plan.io_transient(1), "wrong record never fires");
        assert!(plan.io_transient(2));
        assert!(plan.io_transient(2));
        assert!(plan.io_transient(2));
        assert!(!plan.io_transient(2), "count exhausted");
        assert!(plan.to_string().contains("transient-io@record 2"));
    }

    #[test]
    fn worker_faults_are_one_shot_and_keyed_by_dispatch() {
        let plan = FaultPlan::new()
            .kill_worker_at(0)
            .hang_worker_at(3)
            .corrupt_result_at(5);
        assert!(!plan.is_empty());
        assert_eq!(plan.worker_fault(1), None);
        assert_eq!(plan.worker_fault(0), Some(WorkerFault::Kill));
        assert_eq!(plan.worker_fault(0), None, "kill is one-shot");
        assert_eq!(plan.worker_fault(3), Some(WorkerFault::Hang));
        assert_eq!(plan.worker_fault(5), Some(WorkerFault::CorruptResult));
        let text = plan.to_string();
        assert!(text.contains("kill-worker@dispatch 0"), "{text}");
        assert!(text.contains("hang-worker@dispatch 3"), "{text}");
        assert!(text.contains("corrupt-result@dispatch 5"), "{text}");
    }

    #[test]
    fn shadow_pressure_is_one_shot_and_keyed_by_stage() {
        let plan = FaultPlan::new().shadow_pressure_at(2, 1 << 20);
        assert!(!plan.is_empty());
        assert_eq!(plan.shadow_pressure(1), None);
        assert_eq!(plan.shadow_pressure(2), Some(1 << 20));
        assert_eq!(plan.shadow_pressure(2), None, "pressure site is one-shot");
        let text = plan.to_string();
        assert!(
            text.contains("shadow-pressure@stage 2 (1048576 bytes)"),
            "{text}"
        );
    }

    #[test]
    fn panic_message_understands_payload_kinds() {
        assert_eq!(
            panic_message(&InjectedFault { proc: 1, iter: 4 }),
            "injected fault at (proc 1, iteration 4)"
        );
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("sboom"));
        assert_eq!(panic_message(s.as_ref()), "sboom");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(s.as_ref()), "panic with non-string payload");
    }
}
