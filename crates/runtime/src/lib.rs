//! Parallel execution substrate for the R-LRPD speculative runtime.
//!
//! The R-LRPD test (Dang, Yu, Rauchwerger, IPDPS 2002) transforms a
//! partially parallel loop into a sequence of block-scheduled `doall`
//! stages. This crate provides everything *below* the dependence test
//! itself:
//!
//! * [`ProcId`] — virtual processor identifiers,
//! * [`BlockSchedule`] — contiguous, increasing-order iteration blocks
//!   (the paper requires static block scheduling so that partial work can
//!   be committed in iteration order),
//! * [`Executor`] — runs one speculative stage on real threads (one
//!   scoped OS thread per virtual processor), on a persistent
//!   work-stealing [`WorkerPool`] reused across stages and restarts, or
//!   on a deterministic *simulated machine* with per-processor virtual
//!   clocks (our substitution for the paper's 16-processor HP V2200;
//!   see DESIGN.md §2),
//! * [`CostModel`] — the (ω, ℓ, s) parameters of the paper's Section 4
//!   analytical model plus a remote-miss penalty for redistribution,
//! * [`prefix`] — sequential and parallel prefix sums (used by the
//!   feedback-guided load balancer and the EXTEND induction-variable
//!   technique),
//! * [`FaultPlan`] — deterministic, seedable fault injection (panics,
//!   delays, checkpoint failures) used to exercise the engine's
//!   containment and sequential-fallback paths,
//! * [`FeedbackPartitioner`] — the Section 5.1 feedback-guided load
//!   balancing: per-iteration timings from the previous instantiation are
//!   prefix-summed into the block boundaries that would have achieved
//!   perfect balance, and reused (rescaled) as a first-order predictor.
//!
//! Everything here is deterministic when the simulated executor is used,
//! which is what makes the paper's figures reproducible bit-for-bit.
//!
//! ```
//! use rlrpd_runtime::{BlockSchedule, ExecMode, Executor};
//!
//! // Four blocks over 0..100, run concurrently; each reports its
//! // virtual work.
//! let schedule = BlockSchedule::even(0..100, 4);
//! let executor = Executor::new(ExecMode::Simulated);
//! let mut sums = vec![0u64; 4];
//! let timing = executor.run_blocks(&mut sums, |pos, out| {
//!     let range = schedule.blocks()[pos].range.clone();
//!     *out = range.clone().map(|i| i as u64).sum();
//!     range.len() as f64
//! });
//! assert_eq!(timing.total_work(), 100.0);
//! assert_eq!(sums.iter().sum::<u64>(), (0..100u64).sum());
//! ```

#![warn(missing_docs)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod balance;
pub mod cost;
pub mod executor;
pub mod fault;
pub mod pool;
pub mod prefix;
pub mod proc;
pub mod schedule;
pub mod stats;
pub mod sync;

pub use balance::{FeedbackPartitioner, TrendMode};
pub use cost::{Cost, CostModel};
pub use executor::{ExecMode, Executor, StageTiming};
pub use fault::{panic_message, FaultPlan, InjectedFault, WorkerFault};
pub use pool::{JobPanic, WorkerPool};
pub use proc::ProcId;
pub use schedule::{Block, BlockSchedule};
pub use stats::{OverheadBreakdown, OverheadKind, PhaseSeconds, StageStats};
pub use sync::PostCell;
