//! A persistent work-stealing worker pool for speculative stages.
//!
//! The seed executor spawned one scoped OS thread per block per stage.
//! An R-LRPD run executes *many* stages — every restart re-runs the
//! remaining iterations as a fresh doall, and the analysis / commit /
//! shadow-reset phases between stages are themselves parallel loops — so
//! thread creation cost was paid hundreds of times per loop
//! instantiation. This module replaces that with a pool of workers
//! created **once** (per requested width) and reused by every stage,
//! every phase, and every restart.
//!
//! Design:
//!
//! * Each submitted job is a *parallel for* over indices `0..n`. The
//!   index space is split into one contiguous chunk per worker, each
//!   held in an [`IndexDeque`]: a `(start, end)` pair packed into one
//!   atomic word. The owning worker claims indices from the front with
//!   CAS; idle workers steal from the back of other workers' deques with
//!   the same CAS word, so claiming is lock-free and a task index is
//!   executed exactly once.
//! * Workers park on a condvar between jobs; submission bumps an epoch
//!   and wakes everyone. A job completes when every worker has drained
//!   all deques (`active` hits zero), at which point the submitter is
//!   released. Jobs are serialized: a second submitter waits until the
//!   pool is idle.
//! * Task closures are lifetime-erased (`&'a dyn Fn(usize)` →
//!   `&'static`). This is sound because [`WorkerPool::run`] blocks until
//!   `active == 0`, i.e. until no worker can touch the closure again, so
//!   the erased borrow strictly outlives every use.
//! * Task panics are *contained*: a panicking task never takes down a
//!   worker or the job. Every remaining index still executes (other
//!   tasks are independent speculative work whose results the caller
//!   may commit), and the panic of the lowest index is recorded in the
//!   job. [`WorkerPool::try_run`] hands it back as a [`JobPanic`];
//!   [`WorkerPool::run`] re-raises it with `resume_unwind`. Either way
//!   the panic slot dies with the job, so the pool stays usable and the
//!   next job starts clean.
//!
//! [`WorkerPool::shared`] memoizes pools by width in a process-global
//! map so independent engines (and restarted runs) reuse the same OS
//! threads instead of re-spawning.

use crate::fault::panic_message;
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A raw pointer that may be shared across the pool's workers.
///
/// Used to hand disjoint `&mut` slots of a slice to tasks: each task
/// index derives exactly one element pointer, so exclusivity is an
/// indexing invariant the caller upholds (and documents at the use
/// site), not something the type system can see.
pub struct SendPtr<T>(*mut T);

// SAFETY: a SendPtr is only a capability to *derive* element pointers;
// every dereference happens at an unsafe site whose caller guarantees
// disjointness. Sending the pointer itself between threads is sound
// whenever the pointee values may move between threads.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — sharing the pointer grants no access by itself;
// every dereference site must justify exclusivity on its own.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a base pointer for cross-thread indexed access.
    pub fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    /// The wrapped base pointer.
    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// One worker's contiguous slice of the job's index space, packed as
/// `(start << 32) | end` in a single atomic word. The owner pops from
/// the front, thieves pop from the back; both are CAS loops on the same
/// word, so the deque never hands out an index twice.
struct IndexDeque(AtomicU64);

impl IndexDeque {
    fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= u32::MAX as usize);
        IndexDeque(AtomicU64::new(((start as u64) << 32) | end as u64))
    }

    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = ((cur >> 32) as u32, cur as u32);
            if start >= end {
                return None;
            }
            let next = ((u64::from(start) + 1) << 32) | u64::from(end);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(start as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    fn pop_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = ((cur >> 32) as u32, cur as u32);
            if start >= end {
                return None;
            }
            let next = (u64::from(start) << 32) | u64::from(end - 1);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some((end - 1) as usize),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Lifetime-erased task reference. `&dyn Fn + Sync` is `Send + Sync`,
/// so the reference may be handed to every worker.
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn(usize) + Sync));

/// A contained task panic: which index panicked (the lowest, when
/// several did) and the original unwind payload.
pub struct JobPanic {
    /// The lowest task index that panicked.
    pub index: usize,
    /// The panic payload of that task.
    pub payload: Box<dyn Any + Send>,
}

impl JobPanic {
    /// The payload rendered as a human-readable message.
    pub fn message(&self) -> String {
        panic_message(self.payload.as_ref())
    }
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JobPanic(index={}, {})", self.index, self.message())
    }
}

/// One submitted parallel-for.
struct Job {
    task: TaskRef,
    deques: Box<[IndexDeque]>,
    /// Workers that have not yet finished this job. The submitter is
    /// released when this hits zero.
    active: AtomicUsize,
    /// The lowest-index task panic, if any. Every index still executes
    /// after a panic — tasks are independent, and the caller decides
    /// what to do with the surviving results.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl Job {
    fn exec(&self, i: usize) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.task.0)(i))) {
            let mut slot = self.panic.lock().unwrap();
            match &*slot {
                Some((idx, _)) if *idx <= i => {}
                _ => *slot = Some((i, payload)),
            }
        }
    }

    /// Drain the job from worker `me`'s point of view: own deque from
    /// the front, then every other deque from the back. The index space
    /// is fixed at submission, so one pass that fully drains each deque
    /// in turn leaves nothing claimable.
    fn run_from(&self, me: usize) {
        let w = self.deques.len();
        for k in 0..w {
            let victim = (me + k) % w;
            if k == 0 {
                while let Some(i) = self.deques[victim].pop_front() {
                    self.exec(i);
                }
            } else {
                while let Some(i) = self.deques[victim].pop_back() {
                    self.exec(i);
                }
            }
        }
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    /// Bumped on every submission; each worker runs each epoch once.
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// Submitters park here while the pool is busy / their job runs.
    done_cv: Condvar,
}

/// A persistent pool of `threads` workers executing parallel-fors.
///
/// Create one with [`WorkerPool::new`] or — preferred, so restarts and
/// independent engines share OS threads — [`WorkerPool::shared`].
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool(threads={})", self.threads)
    }
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rlrpd-pool-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// The process-wide pool of this width, created on first use and
    /// kept alive for the life of the process.
    pub fn shared(threads: usize) -> Arc<WorkerPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let threads = threads.max(1);
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        Arc::clone(
            pools
                .lock()
                .unwrap()
                .entry(threads)
                .or_insert_with(|| Arc::new(WorkerPool::new(threads))),
        )
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for every `i in 0..n` across the pool and block until
    /// all calls finish. Panics from tasks are re-raised here (the
    /// lowest-index panic when several tasks panicked). Jobs are
    /// serialized; concurrent submitters queue.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if let Err(p) = self.try_run(n, f) {
            resume_unwind(p.payload);
        }
    }

    /// Like [`WorkerPool::run`], but a task panic is *contained* and
    /// returned as `Err(JobPanic)` instead of re-raised. Every index
    /// still executes (panicked tasks excepted); the reported panic is
    /// the one with the lowest index. The pool stays fully usable
    /// either way — the panic slot lives in the job, which is dropped
    /// here, so the next submission starts clean.
    pub fn try_run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) -> Result<(), JobPanic> {
        if n == 0 {
            return Ok(());
        }
        assert!(n <= u32::MAX as usize, "pool job too large");
        // SAFETY: we do not return until `active == 0`, i.e. until every
        // worker has finished with the job, so the erased borrow
        // strictly outlives every use of `task`.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let w = self.threads;
        let chunk = n.div_ceil(w);
        let deques = (0..w)
            .map(|k| IndexDeque::new((k * chunk).min(n), ((k + 1) * chunk).min(n)))
            .collect();
        let job = Arc::new(Job {
            task: TaskRef(task),
            deques,
            active: AtomicUsize::new(w),
            panic: Mutex::new(None),
        });

        let sh = &*self.shared;
        {
            let mut st = sh.state.lock().unwrap();
            while st.job.is_some() {
                st = sh.done_cv.wait(st).unwrap();
            }
            st.job = Some(Arc::clone(&job));
            st.epoch += 1;
        }
        sh.work_cv.notify_all();

        {
            let mut st = sh.state.lock().unwrap();
            while job.active.load(Ordering::Acquire) != 0 {
                st = sh.done_cv.wait(st).unwrap();
            }
        }

        let taken = job.panic.lock().unwrap().take();
        match taken {
            Some((index, payload)) => Err(JobPanic { index, payload }),
            None => Ok(()),
        }
    }

    /// Run `f(i)` for every `i in 0..n` and collect the results in index
    /// order. Task panics are re-raised.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self.try_run_indexed(n, f) {
            Ok(out) => out,
            Err(p) => resume_unwind(p.payload),
        }
    }

    /// Like [`WorkerPool::run_indexed`], but a task panic is contained
    /// and returned as `Err(JobPanic)`; the surviving results are
    /// discarded (the caller cannot know which slots are valid).
    pub fn try_run_indexed<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, JobPanic>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let slots = SendPtr::new(out.as_mut_ptr());
        self.try_run(n, &|i| {
            // SAFETY: task indices are distinct and each writes only its
            // own slot, so the derived &mut is exclusive.
            unsafe { *slots.get().add(i) = Some(f(i)) };
        })?;
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("pool task did not run"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &PoolShared, me: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = &st.job {
                        seen_epoch = st.epoch;
                        break Arc::clone(job);
                    }
                }
                st = sh.work_cv.wait(st).unwrap();
            }
        };
        job.run_from(me);
        if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last worker out: mark the pool idle and release the
            // submitter (and anyone queued behind it).
            let mut st = sh.state.lock().unwrap();
            st.job = None;
            drop(st);
            sh.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn index_deque_front_and_back_partition_the_range() {
        let d = IndexDeque::new(3, 8);
        assert_eq!(d.pop_front(), Some(3));
        assert_eq!(d.pop_back(), Some(7));
        assert_eq!(d.pop_front(), Some(4));
        assert_eq!(d.pop_back(), Some(6));
        assert_eq!(d.pop_front(), Some(5));
        assert_eq!(d.pop_front(), None);
        assert_eq!(d.pop_back(), None);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for n in [0usize, 1, 3, 4, 7, 64, 1000] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}: some index ran 0 or 2+ times"
            );
        }
    }

    #[test]
    fn run_indexed_returns_results_in_order() {
        let pool = WorkerPool::new(3);
        let out = pool.run_indexed(10, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn pool_is_reused_across_many_jobs() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(5, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[cfg_attr(miri, ignore = "timing-based; slow under the interpreter")]
    fn skewed_work_is_stolen_and_completes() {
        // All the work lands in worker 0's chunk by cost; thieves must
        // take from the back for the job to finish quickly — but
        // correctness alone is what we assert here.
        let pool = WorkerPool::new(4);
        let done = AtomicUsize::new(0);
        pool.run(64, &|i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    std::panic::resume_unwind(Box::new("boom at 3"));
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the submitter");
        // The pool remains usable.
        let ok = AtomicUsize::new(0);
        pool.run(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn try_run_contains_panics_and_runs_every_other_index() {
        let pool = WorkerPool::new(3);
        let done = AtomicUsize::new(0);
        let err = pool
            .try_run(16, &|i| {
                if i == 5 || i == 11 {
                    std::panic::resume_unwind(Box::new(format!("boom at {i}")));
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect_err("two tasks panicked");
        assert_eq!(err.index, 5, "the lowest panicking index is reported");
        assert_eq!(err.message(), "boom at 5");
        assert_eq!(
            done.load(Ordering::Relaxed),
            14,
            "all non-panicking indices still execute"
        );
    }

    #[test]
    fn try_run_indexed_reports_the_panic() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run_indexed(6, |i| {
                if i == 2 {
                    std::panic::resume_unwind(Box::new("idx"));
                }
                i * 2
            })
            .expect_err("task 2 panicked");
        assert_eq!(err.index, 2);
        assert_eq!(pool.try_run_indexed(6, |i| i * 2).unwrap()[5], 10);
    }

    #[test]
    fn back_to_back_panicking_and_clean_jobs_share_one_pool() {
        // Regression: after a job panics, the pool must stay usable and
        // the panic slot must be clear for the next job — alternating
        // panicking and clean jobs on the same shared pool never
        // cross-contaminate.
        let pool = WorkerPool::shared(3);
        for round in 0..20 {
            let err = pool
                .try_run(9, &|i| {
                    if i == round % 9 {
                        std::panic::resume_unwind(Box::new(format!("round {round}")));
                    }
                })
                .expect_err("one task panics every round");
            assert_eq!(err.index, round % 9);
            assert_eq!(err.message(), format!("round {round}"));

            // The very next job on the same pool is clean: no stale
            // panic slot, all indices run.
            let done = AtomicUsize::new(0);
            pool.try_run(9, &|_| {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect("clean job after a panicking one");
            assert_eq!(done.load(Ordering::Relaxed), 9);
        }
    }

    #[test]
    fn concurrent_submitters_serialize_cleanly() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..50 {
                        pool.run(7, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 7);
    }

    #[test]
    fn shared_pools_are_memoized_by_width() {
        let a = WorkerPool::shared(3);
        let b = WorkerPool::shared(3);
        let c = WorkerPool::shared(5);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.threads(), 5);
    }

    #[test]
    fn zero_width_pool_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run_indexed(3, |i| i + 1), vec![1, 2, 3]);
    }
}
