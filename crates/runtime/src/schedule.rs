//! Static block schedules.
//!
//! The R-LRPD test requires the speculative loop to be *statically block
//! scheduled in increasing order of iteration* so that, after a failed
//! stage, the prefix of blocks below the first dependence sink can be
//! committed. A [`BlockSchedule`] is an ordered list of disjoint,
//! contiguous iteration ranges ([`Block`]s), each assigned to one virtual
//! processor.
//!
//! Dependence ordering is by **block position** (iteration order), not by
//! raw processor rank: the sliding-window strategy assigns blocks to
//! processors *circularly* to preserve locality across windows, so the
//! same physical processor can hold the logically-first block of one
//! window and the logically-last block of the next.

use crate::proc::ProcId;
use std::ops::Range;

/// One contiguous run of iterations assigned to a single processor for
/// one speculative stage.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Block {
    /// The physical processor that executes (and keeps the private state
    /// for) this block.
    pub proc: ProcId,
    /// Global iteration numbers `range.start..range.end` of the original
    /// loop, half-open.
    pub range: Range<usize>,
}

impl Block {
    /// Number of iterations in the block.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True when the block carries no iterations.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// A static block schedule for one speculative stage: blocks in strictly
/// increasing iteration order, each on a distinct processor.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BlockSchedule {
    blocks: Vec<Block>,
}

impl BlockSchedule {
    /// Build a schedule from pre-cut blocks.
    ///
    /// # Panics
    /// Panics if blocks are not in strictly increasing iteration order,
    /// overlap, or reuse a processor. Empty blocks are permitted (an idle
    /// processor in the NRD strategy) and keep their position.
    pub fn new(blocks: Vec<Block>) -> Self {
        let mut last_end: Option<usize> = None;
        let mut seen = std::collections::HashSet::new();
        for b in &blocks {
            assert!(b.range.start <= b.range.end, "inverted block {:?}", b.range);
            if let Some(end) = last_end {
                assert!(b.range.start >= end, "blocks overlap or are out of order");
            }
            if !b.is_empty() {
                last_end = Some(b.range.end);
            }
            assert!(
                seen.insert(b.proc),
                "processor {:?} scheduled twice",
                b.proc
            );
        }
        BlockSchedule { blocks }
    }

    /// Split `iters` as evenly as possible over processors `0..p`, in
    /// rank order. The first `iters.len() % p` processors receive one
    /// extra iteration, matching the usual static block scheduling.
    pub fn even(iters: Range<usize>, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        let n = iters.len();
        let base = n / p;
        let extra = n % p;
        let mut start = iters.start;
        let blocks = ProcId::all(p)
            .map(|proc| {
                let len = base + usize::from(proc.index() < extra);
                let range = start..start + len;
                start += len;
                Block { proc, range }
            })
            .collect();
        BlockSchedule::new(blocks)
    }

    /// Cut `iters` at explicit boundaries (used by feedback-guided load
    /// balancing). `cuts` holds the `p - 1` interior cut points, each in
    /// `iters` and non-decreasing; processor `i` receives
    /// `[cut_{i-1}, cut_i)`.
    pub fn from_cuts(iters: Range<usize>, cuts: &[usize]) -> Self {
        let p = cuts.len() + 1;
        let mut bounds = Vec::with_capacity(p + 1);
        bounds.push(iters.start);
        bounds.extend_from_slice(cuts);
        bounds.push(iters.end);
        let blocks = ProcId::all(p)
            .map(|proc| {
                let i = proc.index();
                assert!(
                    bounds[i] <= bounds[i + 1],
                    "cut points must be non-decreasing"
                );
                Block {
                    proc,
                    range: bounds[i]..bounds[i + 1],
                }
            })
            .collect();
        BlockSchedule::new(blocks)
    }

    /// Assign `p` equal blocks of `iters` to processors starting at rank
    /// `rotation` and wrapping — the circular assignment of the
    /// sliding-window strategy. The block order (and hence dependence
    /// order) is still increasing iteration order.
    pub fn circular(iters: Range<usize>, p: usize, rotation: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        let n = iters.len();
        let base = n / p;
        let extra = n % p;
        let mut start = iters.start;
        let blocks = (0..p)
            .map(|k| {
                let proc = ProcId::from((rotation + k) % p);
                let len = base + usize::from(k < extra);
                let range = start..start + len;
                start += len;
                Block { proc, range }
            })
            .collect();
        BlockSchedule::new(blocks)
    }

    /// The NRD restart schedule: blocks strictly below position `from`
    /// become empty (their processors idle), every other block re-runs
    /// unchanged on its original processor.
    pub fn nrd_restart(&self, from: usize) -> Self {
        let blocks = self
            .blocks
            .iter()
            .enumerate()
            .map(|(pos, b)| {
                if pos < from {
                    Block {
                        proc: b.proc,
                        range: b.range.end..b.range.end,
                    }
                } else {
                    b.clone()
                }
            })
            .collect();
        BlockSchedule::new(blocks)
    }

    /// Blocks in iteration order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks (== number of participating processors).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of iterations carried by the schedule.
    pub fn num_iters(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// True when no block carries any iteration.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(Block::is_empty)
    }

    /// The block position (dependence rank) executing global iteration
    /// `iter`, if any block covers it.
    pub fn position_of_iter(&self, iter: usize) -> Option<usize> {
        self.blocks.iter().position(|b| b.range.contains(&iter))
    }

    /// The block position held by processor `proc`, if it participates.
    pub fn position_of_proc(&self, proc: ProcId) -> Option<usize> {
        self.blocks.iter().position(|b| b.proc == proc)
    }

    /// First iteration of the block at `pos` — the restart point when the
    /// first dependence sink lands at that position.
    pub fn block_start(&self, pos: usize) -> usize {
        self.blocks[pos].range.start
    }

    /// Number of iterations of this schedule assigned to a *different*
    /// processor than `old` assigned them (iterations `old` did not
    /// schedule count as moved: their data lives wherever the committed
    /// state is). This is the per-iteration redistribution volume the
    /// paper charges `ℓ` for — remote misses only happen for work that
    /// actually changed processors.
    pub fn moved_from(&self, old: &BlockSchedule) -> usize {
        let mut moved = 0;
        for b in &self.blocks {
            if b.is_empty() {
                continue;
            }
            // Walk old blocks overlapping this range.
            let mut covered_same = 0usize;
            for ob in old.blocks() {
                let lo = b.range.start.max(ob.range.start);
                let hi = b.range.end.min(ob.range.end);
                if lo < hi && ob.proc == b.proc {
                    covered_same += hi - lo;
                }
            }
            moved += b.len() - covered_same;
        }
        moved
    }

    /// The full iteration range spanned (first non-empty block start to
    /// last non-empty block end), or `None` when empty.
    pub fn span(&self) -> Option<Range<usize>> {
        let first = self.blocks.iter().find(|b| !b.is_empty())?;
        let last = self.blocks.iter().rev().find(|b| !b.is_empty())?;
        Some(first.range.start..last.range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_distributes_remainder_to_low_ranks() {
        let s = BlockSchedule::even(0..10, 4);
        let lens: Vec<_> = s.blocks().iter().map(Block::len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        assert_eq!(s.num_iters(), 10);
        assert_eq!(s.span(), Some(0..10));
    }

    #[test]
    fn even_split_handles_fewer_iters_than_procs() {
        let s = BlockSchedule::even(5..7, 4);
        let lens: Vec<_> = s.blocks().iter().map(Block::len).collect();
        assert_eq!(lens, vec![1, 1, 0, 0]);
        assert_eq!(s.span(), Some(5..7));
    }

    #[test]
    fn position_of_iter_finds_owning_block() {
        let s = BlockSchedule::even(0..8, 4);
        assert_eq!(s.position_of_iter(0), Some(0));
        assert_eq!(s.position_of_iter(3), Some(1));
        assert_eq!(s.position_of_iter(7), Some(3));
        assert_eq!(s.position_of_iter(8), None);
    }

    #[test]
    fn nrd_restart_empties_committed_prefix() {
        let s = BlockSchedule::even(0..8, 4);
        let r = s.nrd_restart(2);
        assert!(r.blocks()[0].is_empty());
        assert!(r.blocks()[1].is_empty());
        assert_eq!(r.blocks()[2].range, 4..6);
        assert_eq!(r.blocks()[3].range, 6..8);
        assert_eq!(r.num_iters(), 4);
        assert_eq!(r.span(), Some(4..8));
    }

    #[test]
    fn circular_rotates_processor_assignment_only() {
        let s = BlockSchedule::circular(0..8, 4, 2);
        let procs: Vec<_> = s.blocks().iter().map(|b| b.proc.index()).collect();
        assert_eq!(procs, vec![2, 3, 0, 1]);
        // Iteration order of blocks is unchanged by the rotation.
        let starts: Vec<_> = s.blocks().iter().map(|b| b.range.start).collect();
        assert_eq!(starts, vec![0, 2, 4, 6]);
        assert_eq!(s.position_of_proc(ProcId(0)), Some(2));
    }

    #[test]
    fn from_cuts_respects_boundaries() {
        let s = BlockSchedule::from_cuts(0..10, &[1, 5, 9]);
        let lens: Vec<_> = s.blocks().iter().map(Block::len).collect();
        assert_eq!(lens, vec![1, 4, 4, 1]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_blocks_rejected() {
        BlockSchedule::new(vec![
            Block {
                proc: ProcId(0),
                range: 0..5,
            },
            Block {
                proc: ProcId(1),
                range: 4..8,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn duplicate_processor_rejected() {
        BlockSchedule::new(vec![
            Block {
                proc: ProcId(0),
                range: 0..2,
            },
            Block {
                proc: ProcId(0),
                range: 2..4,
            },
        ]);
    }

    #[test]
    fn nrd_restart_moves_nothing() {
        let s = BlockSchedule::even(0..16, 4);
        let r = s.nrd_restart(2);
        assert_eq!(r.moved_from(&s), 0, "NRD keeps every iteration in place");
    }

    #[test]
    fn redistribution_counts_only_changed_assignments() {
        let old = BlockSchedule::even(0..16, 4); // blocks of 4
                                                 // Restart from iteration 8: redistribute 8..16 over all 4 procs
                                                 // (blocks of 2). Old owners: 8..12 -> P2, 12..16 -> P3.
                                                 // New: 8..10 P0, 10..12 P1, 12..14 P2, 14..16 P3.
        let new = BlockSchedule::even(8..16, 4);
        // 8..12 moved (P2 -> P0/P1), 12..14 moved (P3 -> P2),
        // 14..16 stayed on P3.
        assert_eq!(new.moved_from(&old), 6);
    }

    #[test]
    fn unscheduled_iterations_count_as_moved() {
        let old = BlockSchedule::even(0..4, 2);
        let new = BlockSchedule::even(4..8, 2); // disjoint window
        assert_eq!(new.moved_from(&old), 4);
    }

    #[test]
    fn empty_schedule_has_no_span() {
        let s = BlockSchedule::even(3..3, 2);
        assert!(s.is_empty());
        assert_eq!(s.span(), None);
    }
}
