//! Prefix sums — sequential and blocked-parallel.
//!
//! Two users in this reproduction, both straight from the paper:
//!
//! * feedback-guided load balancing (Section 5.1) prefix-sums the
//!   measured per-iteration times to find perfectly balancing cut points;
//! * the EXTEND_400 technique (Section 5.2) has every processor compute
//!   the conditionally incremented induction variable LSTTRK from a zero
//!   offset and then prefix-sums the per-processor totals to obtain each
//!   processor's true starting offset for the second doall.

use crate::cost::Cost;

/// Exclusive prefix sum: `out[i] = Σ_{j<i} xs[j]`, with `out.len() ==
/// xs.len() + 1` so that `out[xs.len()]` is the grand total.
pub fn exclusive_prefix_sum(xs: &[Cost]) -> Vec<Cost> {
    let mut out = Vec::with_capacity(xs.len() + 1);
    let mut acc = 0.0;
    out.push(0.0);
    for &x in xs {
        acc += x;
        out.push(acc);
    }
    out
}

/// Exclusive prefix sum for integer counts (induction-variable offsets).
pub fn exclusive_prefix_sum_usize(xs: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(xs.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &x in xs {
        acc += x;
        out.push(acc);
    }
    out
}

/// Blocked parallel prefix sum over `xs`, using `p` blocks: each block is
/// summed independently, block offsets are prefix-summed, then each block
/// is rescanned with its offset. This is the classic two-pass scheme the
/// paper's "parallel prefix routine" refers to; we run the passes with
/// scoped threads.
///
/// Returns the *exclusive* prefix (same contract as
/// [`exclusive_prefix_sum`]).
pub fn parallel_exclusive_prefix_sum(xs: &[Cost], p: usize) -> Vec<Cost> {
    assert!(p > 0);
    let n = xs.len();
    if n == 0 {
        return vec![0.0];
    }
    let chunk = n.div_ceil(p);
    let mut block_sums = vec![0.0; xs.chunks(chunk).count()];
    std::thread::scope(|scope| {
        for (sum, block) in block_sums.iter_mut().zip(xs.chunks(chunk)) {
            scope.spawn(move || {
                *sum = block.iter().sum();
            });
        }
    });

    let offsets = exclusive_prefix_sum(&block_sums);

    let mut out = vec![0.0; n + 1];
    // out[0] = 0 already; fill out[1..=n] blockwise.
    std::thread::scope(|scope| {
        let mut rest = &mut out[1..];
        for (b, block) in xs.chunks(chunk).enumerate() {
            let (mine, tail) = rest.split_at_mut(block.len());
            rest = tail;
            let base = offsets[b];
            scope.spawn(move || {
                let mut acc = base;
                for (o, &x) in mine.iter_mut().zip(block) {
                    acc += x;
                    *o = acc;
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_prefix_matches_definition() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(exclusive_prefix_sum(&xs), vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn empty_input_yields_zero_total() {
        assert_eq!(exclusive_prefix_sum(&[]), vec![0.0]);
        assert_eq!(exclusive_prefix_sum_usize(&[]), vec![0]);
    }

    #[test]
    fn usize_prefix_for_induction_offsets() {
        // Per-processor LSTTRK increments 3, 0, 2, 1 -> offsets 0, 3, 3, 5
        // and total 6, exactly the EXTEND_400 second-pass offsets.
        let incs = [3, 0, 2, 1];
        assert_eq!(exclusive_prefix_sum_usize(&incs), vec![0, 3, 3, 5, 6]);
    }

    #[test]
    fn parallel_matches_sequential_on_uneven_sizes() {
        for n in [0usize, 1, 2, 7, 64, 101] {
            let xs: Vec<Cost> = (0..n).map(|i| (i as Cost) * 0.5 + 1.0).collect();
            for p in [1, 2, 3, 8] {
                let seq = exclusive_prefix_sum(&xs);
                let par = parallel_exclusive_prefix_sum(&xs, p);
                assert_eq!(seq.len(), par.len());
                for (a, b) in seq.iter().zip(par.iter()) {
                    assert!((a - b).abs() < 1e-9, "n={n} p={p}: {a} vs {b}");
                }
            }
        }
    }
}
