//! Stage executors: real threads, a persistent worker pool, or a
//! deterministic simulated machine.
//!
//! A speculative stage runs one closure per block, each against that
//! block's private per-processor state. Blocks are independent during a
//! stage *by construction* (all writes go to privatized storage, the
//! shared array is read-only), which is exactly what permits the
//! interchangeable execution modes:
//!
//! * [`ExecMode::Threads`] — one scoped OS thread per block; this proves
//!   the engine is genuinely parallel and data-race-free and provides
//!   real wall-clock measurements.
//! * [`ExecMode::Pooled`] — blocks run on a persistent work-stealing
//!   [`WorkerPool`] created once and reused by every stage, phase, and
//!   restart (see [`crate::pool`]). Same observable results as
//!   `Threads`, without per-stage thread spawn cost.
//! * [`ExecMode::Simulated`] — blocks run sequentially in block order and
//!   report *virtual* cost; stage time is the max over blocks, as on an
//!   idealized `p`-processor machine. This is our deterministic
//!   substitution for the paper's 16-processor HP V2200 (DESIGN.md §2):
//!   stage structure, commit decisions, and the figures' time series are
//!   bit-for-bit reproducible on any host.
//!
//! All modes produce identical speculative outcomes; integration tests
//! assert this.

use crate::cost::Cost;
use crate::pool::{JobPanic, SendPtr, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// How to run the blocks of one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecMode {
    /// One scoped OS thread per block, spawned per stage.
    Threads,
    /// A persistent work-stealing worker pool, reused across stages.
    Pooled,
    /// Deterministic sequential emulation with virtual per-block clocks.
    Simulated,
    /// Supervisor of a fleet of worker subprocesses: block bodies are
    /// dispatched over a wire protocol while analysis/commit phases run
    /// on the in-process pool. When the dispatcher is lost (worker-loss
    /// budget exhausted) the executor itself behaves exactly like
    /// [`ExecMode::Pooled`], which is the first rung of the distributed
    /// degradation ladder.
    Distributed,
}

/// Raw timing of one executed stage, before the driver layers analysis /
/// commit / restore costs on top.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTiming {
    /// Virtual cost accumulated by each block, in block order.
    pub per_block_cost: Vec<Cost>,
    /// Wall-clock seconds of the parallel section (0.0 when simulated).
    pub wall_seconds: f64,
}

impl StageTiming {
    /// Virtual critical path of the doall: the maximum block cost.
    pub fn critical_path(&self) -> Cost {
        self.per_block_cost.iter().copied().fold(0.0, Cost::max)
    }

    /// Total useful virtual work across all blocks.
    pub fn total_work(&self) -> Cost {
        self.per_block_cost.iter().sum()
    }
}

/// Executes the blocks of speculative stages under a chosen [`ExecMode`].
///
/// Cheap to clone: a pooled executor shares its [`WorkerPool`] (the pool
/// itself is process-global per width, see [`WorkerPool::shared`]), so
/// cloning never spawns threads.
#[derive(Clone, Debug)]
pub struct Executor {
    mode: ExecMode,
    pool: Option<Arc<WorkerPool>>,
}

impl Executor {
    /// Create an executor with the given mode. A pooled executor is
    /// sized to the host's available parallelism; use
    /// [`Executor::with_procs`] to size it to the run's virtual
    /// processor count instead.
    pub fn new(mode: ExecMode) -> Self {
        let procs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_procs(mode, procs)
    }

    /// Create an executor whose pool (if any) has `procs` workers.
    /// Pools are memoized per width, so repeated construction — e.g.
    /// one engine per restarted run — reuses the same OS threads.
    pub fn with_procs(mode: ExecMode, procs: usize) -> Self {
        let pool = match mode {
            ExecMode::Pooled | ExecMode::Distributed => Some(WorkerPool::shared(procs)),
            ExecMode::Threads | ExecMode::Simulated => None,
        };
        Executor { mode, pool }
    }

    /// The executor's mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The persistent pool backing this executor, when pooled.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Run one stage: `work(pos, &mut states[pos])` for every block
    /// position, concurrently under [`ExecMode::Threads`] /
    /// [`ExecMode::Pooled`], sequentially (but observably identically)
    /// under [`ExecMode::Simulated`].
    ///
    /// `work` returns the virtual cost the block accumulated. A block
    /// panic is re-raised here; use [`Executor::try_run_blocks`] for
    /// the containment surface.
    pub fn run_blocks<S, F>(&self, states: &mut [S], work: F) -> StageTiming
    where
        S: Send,
        F: Fn(usize, &mut S) -> Cost + Sync,
    {
        let (timing, panic) = self.try_run_blocks(states, work);
        if let Some(p) = panic {
            std::panic::resume_unwind(p.payload);
        }
        timing
    }

    /// Run one stage with **panic containment**: every block executes
    /// even when another block panics, and the lowest-position panic is
    /// returned alongside the timing instead of unwinding.
    ///
    /// A panicked block contributes `0.0` to `per_block_cost` (the
    /// engine reconstructs its partial cost from the per-block state,
    /// which the closure mutates in place before panicking). This is
    /// the substrate of fault-contained speculation: a panic in block
    /// *b* must not discard the independent, possibly-committable work
    /// of every other block.
    pub fn try_run_blocks<S, F>(&self, states: &mut [S], work: F) -> (StageTiming, Option<JobPanic>)
    where
        S: Send,
        F: Fn(usize, &mut S) -> Cost + Sync,
    {
        match self.mode {
            ExecMode::Simulated => {
                let mut panic: Option<JobPanic> = None;
                let per_block_cost = states
                    .iter_mut()
                    .enumerate()
                    .map(|(pos, s)| {
                        match catch_unwind(AssertUnwindSafe(|| work(pos, s))) {
                            Ok(c) => c,
                            Err(payload) => {
                                // Sequential block order: the first panic
                                // seen is the lowest position.
                                if panic.is_none() {
                                    panic = Some(JobPanic {
                                        index: pos,
                                        payload,
                                    });
                                }
                                0.0
                            }
                        }
                    })
                    .collect();
                (
                    StageTiming {
                        per_block_cost,
                        wall_seconds: 0.0,
                    },
                    panic,
                )
            }
            ExecMode::Threads => {
                let start = std::time::Instant::now();
                let work = &work;
                let mut per_block_cost = vec![0.0; states.len()];
                let panic_slot: Mutex<Option<JobPanic>> = Mutex::new(None);
                std::thread::scope(|scope| {
                    for (pos, (s, out)) in
                        states.iter_mut().zip(per_block_cost.iter_mut()).enumerate()
                    {
                        let panic_slot = &panic_slot;
                        scope.spawn(move || {
                            match catch_unwind(AssertUnwindSafe(|| work(pos, s))) {
                                Ok(c) => *out = c,
                                Err(payload) => {
                                    let mut slot = panic_slot.lock().unwrap();
                                    match &*slot {
                                        Some(p) if p.index <= pos => {}
                                        _ => {
                                            *slot = Some(JobPanic {
                                                index: pos,
                                                payload,
                                            })
                                        }
                                    }
                                }
                            }
                        });
                    }
                });
                (
                    StageTiming {
                        per_block_cost,
                        wall_seconds: start.elapsed().as_secs_f64(),
                    },
                    panic_slot.into_inner().unwrap(),
                )
            }
            ExecMode::Pooled | ExecMode::Distributed => {
                let start = std::time::Instant::now();
                let pool = self.pool.as_ref().expect("pooled executor has a pool");
                let states_ptr = SendPtr::new(states.as_mut_ptr());
                let mut per_block_cost = vec![0.0; states.len()];
                let costs_ptr = SendPtr::new(per_block_cost.as_mut_ptr());
                let panic = pool
                    .try_run(states.len(), &|pos| {
                        // SAFETY: block positions are distinct, so each
                        // task derives an exclusive &mut to its own
                        // state and cost slot.
                        let s = unsafe { &mut *states_ptr.get().add(pos) };
                        let c = work(pos, s);
                        // SAFETY: same disjointness argument — `pos` is
                        // unique per task, so this cost slot is written
                        // by exactly one thread.
                        unsafe { *costs_ptr.get().add(pos) = c };
                    })
                    .err();
                (
                    StageTiming {
                        per_block_cost,
                        wall_seconds: start.elapsed().as_secs_f64(),
                    },
                    panic,
                )
            }
        }
    }

    /// Run `f(i)` for `i in 0..n` under this executor's parallelism and
    /// collect the results in index order. This is the substrate for
    /// the parallel analysis / commit-merge phases: sequential under
    /// [`ExecMode::Simulated`] (preserving bit-for-bit determinism),
    /// scoped threads under [`ExecMode::Threads`], pool workers under
    /// [`ExecMode::Pooled`].
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self.mode {
            ExecMode::Simulated => (0..n).map(f).collect(),
            ExecMode::Pooled | ExecMode::Distributed => self
                .pool
                .as_ref()
                .expect("pooled executor has a pool")
                .run_indexed(n, f),
            ExecMode::Threads => {
                let f = &f;
                let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
                std::thread::scope(|scope| {
                    for (i, slot) in out.iter_mut().enumerate() {
                        scope.spawn(move || {
                            *slot = Some(f(i));
                        });
                    }
                });
                out.into_iter()
                    .map(|slot| slot.expect("indexed task did not run"))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn modes() -> [Executor; 3] {
        [
            Executor::new(ExecMode::Simulated),
            Executor::new(ExecMode::Threads),
            Executor::with_procs(ExecMode::Pooled, 4),
        ]
    }

    #[test]
    fn every_block_runs_exactly_once_with_its_state() {
        for ex in modes() {
            let mut states: Vec<usize> = vec![0; 6];
            let calls = AtomicUsize::new(0);
            let t = ex.run_blocks(&mut states, |pos, s| {
                calls.fetch_add(1, Ordering::Relaxed);
                *s = pos + 100;
                pos as Cost
            });
            assert_eq!(calls.load(Ordering::Relaxed), 6);
            assert_eq!(states, vec![100, 101, 102, 103, 104, 105]);
            assert_eq!(t.per_block_cost, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        }
    }

    #[test]
    fn critical_path_and_total_work() {
        let t = StageTiming {
            per_block_cost: vec![3.0, 7.0, 5.0],
            wall_seconds: 0.0,
        };
        assert_eq!(t.critical_path(), 7.0);
        assert_eq!(t.total_work(), 15.0);
    }

    #[test]
    fn simulated_reports_zero_wall_time() {
        let ex = Executor::new(ExecMode::Simulated);
        let mut states = vec![(); 3];
        let t = ex.run_blocks(&mut states, |_, _| 1.0);
        assert_eq!(t.wall_seconds, 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "asserts real wall-clock progress")]
    fn threads_mode_actually_reports_wall_time() {
        let ex = Executor::new(ExecMode::Threads);
        let mut states = vec![(); 4];
        let t = ex.run_blocks(&mut states, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            1.0
        });
        assert!(t.wall_seconds > 0.0);
    }

    #[test]
    fn pooled_mode_reuses_one_pool_across_stages() {
        let ex = Executor::with_procs(ExecMode::Pooled, 3);
        let pool = Arc::clone(ex.pool().expect("pooled executor has a pool"));
        for stage in 0..50 {
            let mut states = vec![0usize; 5];
            let t = ex.run_blocks(&mut states, |pos, s| {
                *s = stage * 10 + pos;
                1.0
            });
            assert_eq!(t.per_block_cost, vec![1.0; 5]);
            assert!(states.iter().enumerate().all(|(p, &s)| s == stage * 10 + p));
        }
        // Same executor, same pool object throughout.
        assert!(Arc::ptr_eq(&pool, ex.pool().unwrap()));
    }

    #[test]
    fn run_indexed_matches_sequential_in_every_mode() {
        for ex in modes() {
            let out = ex.run_indexed(17, |i| i * 3 + 1);
            let expect: Vec<usize> = (0..17).map(|i| i * 3 + 1).collect();
            assert_eq!(out, expect, "mode {:?}", ex.mode());
        }
    }

    #[test]
    fn try_run_blocks_contains_a_block_panic_in_every_mode() {
        for ex in modes() {
            let mut states: Vec<usize> = vec![0; 5];
            let (t, panic) = ex.try_run_blocks(&mut states, |pos, s| {
                if pos == 2 {
                    std::panic::resume_unwind(Box::new("block 2 down"));
                }
                *s = pos + 1;
                1.0
            });
            let p = panic.unwrap_or_else(|| panic!("mode {:?}: panic reported", ex.mode()));
            assert_eq!(p.index, 2, "mode {:?}", ex.mode());
            assert_eq!(p.message(), "block 2 down");
            // Every other block still ran and reported its cost.
            assert_eq!(states, vec![1, 2, 0, 4, 5], "mode {:?}", ex.mode());
            assert_eq!(
                t.per_block_cost,
                vec![1.0, 1.0, 0.0, 1.0, 1.0],
                "mode {:?}",
                ex.mode()
            );
        }
    }

    #[test]
    fn try_run_blocks_reports_lowest_panicking_position() {
        for ex in modes() {
            let mut states: Vec<usize> = vec![0; 6];
            let (_, panic) = ex.try_run_blocks(&mut states, |pos, _| {
                if pos == 4 || pos == 1 {
                    std::panic::resume_unwind(Box::new(pos));
                }
                1.0
            });
            assert_eq!(panic.unwrap().index, 1, "mode {:?}", ex.mode());
        }
    }

    #[test]
    fn run_blocks_still_reraises_panics() {
        for ex in modes() {
            let mut states: Vec<usize> = vec![0; 3];
            let caught = catch_unwind(AssertUnwindSafe(|| {
                ex.run_blocks(&mut states, |pos, _| {
                    if pos == 1 {
                        std::panic::resume_unwind(Box::new("up"));
                    }
                    1.0
                });
            }));
            assert!(caught.is_err(), "mode {:?}", ex.mode());
        }
    }

    #[test]
    fn empty_stage_is_a_noop() {
        for ex in modes() {
            let mut states: Vec<u8> = vec![];
            let t = ex.run_blocks(&mut states, |_, _| 1.0);
            assert!(t.per_block_cost.is_empty());
            assert_eq!(t.critical_path(), 0.0);
        }
    }
}
