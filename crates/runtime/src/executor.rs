//! Stage executors: real threads or a deterministic simulated machine.
//!
//! A speculative stage runs one closure per block, each against that
//! block's private per-processor state. Blocks are independent during a
//! stage *by construction* (all writes go to privatized storage, the
//! shared array is read-only), which is exactly what permits the two
//! interchangeable execution modes:
//!
//! * [`ExecMode::Threads`] — one crossbeam scoped thread per block; this
//!   proves the engine is genuinely parallel and data-race-free and
//!   provides real wall-clock measurements.
//! * [`ExecMode::Simulated`] — blocks run sequentially in block order and
//!   report *virtual* cost; stage time is the max over blocks, as on an
//!   idealized `p`-processor machine. This is our deterministic
//!   substitution for the paper's 16-processor HP V2200 (DESIGN.md §2):
//!   stage structure, commit decisions, and the figures' time series are
//!   bit-for-bit reproducible on any host.
//!
//! Both modes produce identical speculative outcomes; integration tests
//! assert this.

use crate::cost::Cost;

/// How to run the blocks of one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecMode {
    /// One OS thread per block (crossbeam scoped threads).
    Threads,
    /// Deterministic sequential emulation with virtual per-block clocks.
    Simulated,
}

/// Raw timing of one executed stage, before the driver layers analysis /
/// commit / restore costs on top.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTiming {
    /// Virtual cost accumulated by each block, in block order.
    pub per_block_cost: Vec<Cost>,
    /// Wall-clock seconds of the parallel section (0.0 when simulated).
    pub wall_seconds: f64,
}

impl StageTiming {
    /// Virtual critical path of the doall: the maximum block cost.
    pub fn critical_path(&self) -> Cost {
        self.per_block_cost.iter().copied().fold(0.0, Cost::max)
    }

    /// Total useful virtual work across all blocks.
    pub fn total_work(&self) -> Cost {
        self.per_block_cost.iter().sum()
    }
}

/// Executes the blocks of speculative stages under a chosen [`ExecMode`].
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    mode: ExecMode,
}

impl Executor {
    /// Create an executor with the given mode.
    pub fn new(mode: ExecMode) -> Self {
        Executor { mode }
    }

    /// The executor's mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Run one stage: `work(pos, &mut states[pos])` for every block
    /// position, concurrently under [`ExecMode::Threads`], sequentially
    /// (but observably identically) under [`ExecMode::Simulated`].
    ///
    /// `work` returns the virtual cost the block accumulated.
    pub fn run_blocks<S, F>(&self, states: &mut [S], work: F) -> StageTiming
    where
        S: Send,
        F: Fn(usize, &mut S) -> Cost + Sync,
    {
        match self.mode {
            ExecMode::Simulated => {
                let per_block_cost = states
                    .iter_mut()
                    .enumerate()
                    .map(|(pos, s)| work(pos, s))
                    .collect();
                StageTiming {
                    per_block_cost,
                    wall_seconds: 0.0,
                }
            }
            ExecMode::Threads => {
                let start = std::time::Instant::now();
                let work = &work;
                let mut per_block_cost = vec![0.0; states.len()];
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = states
                        .iter_mut()
                        .zip(per_block_cost.iter_mut())
                        .enumerate()
                        .map(|(pos, (s, out))| {
                            scope.spawn(move |_| {
                                *out = work(pos, s);
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("speculative block panicked");
                    }
                })
                .expect("stage scope failed");
                StageTiming {
                    per_block_cost,
                    wall_seconds: start.elapsed().as_secs_f64(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn modes() -> [Executor; 2] {
        [Executor::new(ExecMode::Simulated), Executor::new(ExecMode::Threads)]
    }

    #[test]
    fn every_block_runs_exactly_once_with_its_state() {
        for ex in modes() {
            let mut states: Vec<usize> = vec![0; 6];
            let calls = AtomicUsize::new(0);
            let t = ex.run_blocks(&mut states, |pos, s| {
                calls.fetch_add(1, Ordering::Relaxed);
                *s = pos + 100;
                pos as Cost
            });
            assert_eq!(calls.load(Ordering::Relaxed), 6);
            assert_eq!(states, vec![100, 101, 102, 103, 104, 105]);
            assert_eq!(t.per_block_cost, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        }
    }

    #[test]
    fn critical_path_and_total_work() {
        let t = StageTiming {
            per_block_cost: vec![3.0, 7.0, 5.0],
            wall_seconds: 0.0,
        };
        assert_eq!(t.critical_path(), 7.0);
        assert_eq!(t.total_work(), 15.0);
    }

    #[test]
    fn simulated_reports_zero_wall_time() {
        let ex = Executor::new(ExecMode::Simulated);
        let mut states = vec![(); 3];
        let t = ex.run_blocks(&mut states, |_, _| 1.0);
        assert_eq!(t.wall_seconds, 0.0);
    }

    #[test]
    fn threads_mode_actually_reports_wall_time() {
        let ex = Executor::new(ExecMode::Threads);
        let mut states = vec![(); 4];
        let t = ex.run_blocks(&mut states, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            1.0
        });
        assert!(t.wall_seconds > 0.0);
    }

    #[test]
    fn empty_stage_is_a_noop() {
        for ex in modes() {
            let mut states: Vec<u8> = vec![];
            let t = ex.run_blocks(&mut states, |_, _| 1.0);
            assert!(t.per_block_cost.is_empty());
            assert_eq!(t.critical_path(), 0.0);
        }
    }
}
