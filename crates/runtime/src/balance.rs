//! Feedback-guided load balancing (paper Section 5.1).
//!
//! The R-LRPD test requires *block* scheduling, which interacts badly
//! with the irregular loops it targets. The paper's remedy: at every loop
//! instantiation, measure the execution time of each iteration; after the
//! loop, prefix-sum those times and compute the block boundaries that
//! *would have* achieved perfect balance (each block receiving
//! `total / p` time); use that distribution as a first-order predictor
//! for the next instantiation, rescaled if the iteration count changed.
//!
//! The technique also tends to preserve locality because boundaries move
//! slowly between instantiations.

use crate::cost::Cost;
use crate::prefix::exclusive_prefix_sum;
use crate::schedule::BlockSchedule;
use std::ops::Range;

/// How the next instantiation's per-iteration times are predicted from
/// history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TrendMode {
    /// First-order predictor: next = last (the paper's implemented
    /// technique).
    #[default]
    FirstOrder,
    /// Linear trend: next = last + (last − previous), clamped at 0 —
    /// the paper's announced improvement ("using higher order
    /// derivatives to better predict trends in the distribution of the
    /// execution time of the iterations").
    Linear,
}

/// Predicts balanced block boundaries from the previous instantiations'
/// per-iteration timings.
#[derive(Clone, Debug, Default)]
pub struct FeedbackPartitioner {
    last_times: Option<Vec<Cost>>,
    prev_times: Option<Vec<Cost>>,
    trend: TrendMode,
}

impl FeedbackPartitioner {
    /// A partitioner with no history: predicts even blocks until the
    /// first [`record`](Self::record).
    pub fn new() -> Self {
        Self::default()
    }

    /// A partitioner using the given trend predictor.
    pub fn with_trend(trend: TrendMode) -> Self {
        FeedbackPartitioner {
            trend,
            ..Self::default()
        }
    }

    /// Feed the measured per-iteration times of the instantiation that
    /// just completed. Non-finite or negative entries are clamped to 0.
    pub fn record(&mut self, mut iter_times: Vec<Cost>) {
        for t in &mut iter_times {
            if !t.is_finite() || *t < 0.0 {
                *t = 0.0;
            }
        }
        self.prev_times = self.last_times.take();
        self.last_times = Some(iter_times);
    }

    /// True once at least one instantiation has been recorded.
    pub fn has_history(&self) -> bool {
        self.last_times.is_some()
    }

    /// The predicted per-iteration time distribution for the next
    /// instantiation, per the trend mode.
    fn predicted(&self) -> Option<Vec<Cost>> {
        let last = self.last_times.as_ref()?;
        match (self.trend, &self.prev_times) {
            (TrendMode::Linear, Some(prev)) if prev.len() == last.len() => Some(
                last.iter()
                    .zip(prev)
                    .map(|(&l, &p)| (2.0 * l - p).max(0.0))
                    .collect(),
            ),
            _ => Some(last.clone()),
        }
    }

    /// The `p - 1` interior cut points (relative to a 0-based space of
    /// `n` iterations) that would have balanced the recorded
    /// distribution, or `None` without history. When `n` differs from the
    /// recorded length the distribution is rescaled proportionally, as
    /// the paper prescribes for changing iteration spaces.
    pub fn cuts(&self, n: usize, p: usize) -> Option<Vec<usize>> {
        assert!(p > 0);
        let times = self.predicted()?;
        if times.is_empty() || n == 0 {
            return Some(vec![0; p - 1]);
        }
        // Resample the recorded distribution onto n iterations.
        let m = times.len();
        let resampled: Vec<Cost> = if m == n {
            times.clone()
        } else {
            (0..n).map(|i| times[i * m / n]).collect()
        };
        let prefix = exclusive_prefix_sum(&resampled);
        let total = prefix[n];
        if total <= 0.0 {
            // Degenerate history: fall back to even cuts.
            return Some((1..p).map(|k| k * n / p).collect());
        }
        let mut cuts = Vec::with_capacity(p - 1);
        let mut lo = 0usize;
        for k in 1..p {
            let target = total * (k as Cost) / (p as Cost);
            // First index whose prefix reaches the target; monotone in k,
            // so resume the scan from the previous cut.
            while lo < n && prefix[lo] < target {
                lo += 1;
            }
            cuts.push(lo);
        }
        Some(cuts)
    }

    /// A block schedule for `iters` over `p` processors: balanced by
    /// history when available, even otherwise.
    pub fn schedule(&self, iters: Range<usize>, p: usize) -> BlockSchedule {
        match self.cuts(iters.len(), p) {
            Some(rel_cuts) => {
                let cuts: Vec<usize> = rel_cuts.iter().map(|c| iters.start + c).collect();
                BlockSchedule::from_cuts(iters, &cuts)
            }
            None => BlockSchedule::even(iters, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_time(times: &[Cost], r: &Range<usize>) -> Cost {
        times[r.clone()].iter().sum()
    }

    #[test]
    fn no_history_falls_back_to_even() {
        let fp = FeedbackPartitioner::new();
        assert!(!fp.has_history());
        let s = fp.schedule(0..8, 4);
        assert_eq!(s, BlockSchedule::even(0..8, 4));
    }

    #[test]
    fn skewed_history_shifts_boundaries() {
        // Iterations 0..4 cost 1, iterations 4..8 cost 7 each: a balanced
        // 2-processor split puts far more iterations on the cheap side.
        let mut fp = FeedbackPartitioner::new();
        let times: Vec<Cost> = (0..8).map(|i| if i < 4 { 1.0 } else { 7.0 }).collect();
        fp.record(times.clone());
        let s = fp.schedule(0..8, 2);
        let b0 = block_time(&times, &s.blocks()[0].range);
        let b1 = block_time(&times, &s.blocks()[1].range);
        // Even split would be 4 vs 28; feedback must do strictly better.
        assert!((b0 - b1).abs() < 28.0 - 4.0, "b0={b0} b1={b1}");
        assert!(s.blocks()[0].range.len() > s.blocks()[1].range.len());
    }

    #[test]
    fn uniform_history_reproduces_even_split() {
        let mut fp = FeedbackPartitioner::new();
        fp.record(vec![2.0; 12]);
        let s = fp.schedule(0..12, 4);
        let lens: Vec<_> = s.blocks().iter().map(|b| b.range.len()).collect();
        assert_eq!(lens, vec![3, 3, 3, 3]);
    }

    #[test]
    fn rescales_to_changed_iteration_space() {
        let mut fp = FeedbackPartitioner::new();
        // First half cheap, second half expensive, recorded on 10 iters.
        let times: Vec<Cost> = (0..10).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
        fp.record(times);
        // Predict for 20 iterations: the cheap/expensive boundary scales.
        let s = fp.schedule(0..20, 2);
        assert!(
            s.blocks()[0].range.len() > 10,
            "cheap side should get most iters"
        );
        assert_eq!(s.num_iters(), 20);
    }

    #[test]
    fn offset_ranges_are_respected() {
        let mut fp = FeedbackPartitioner::new();
        fp.record(vec![1.0; 6]);
        let s = fp.schedule(10..16, 3);
        assert_eq!(s.span(), Some(10..16));
        assert_eq!(s.num_iters(), 6);
    }

    #[test]
    fn degenerate_zero_history_is_even() {
        let mut fp = FeedbackPartitioner::new();
        fp.record(vec![0.0; 8]);
        let s = fp.schedule(0..8, 4);
        assert_eq!(s.num_iters(), 8);
        let lens: Vec<_> = s.blocks().iter().map(|b| b.range.len()).collect();
        assert_eq!(lens, vec![2, 2, 2, 2]);
    }

    #[test]
    fn linear_trend_extrapolates_a_growing_hotspot() {
        // A hotspot growing at the tail: first-order predicts the last
        // distribution, linear predicts it keeps growing.
        let mut fo = FeedbackPartitioner::with_trend(TrendMode::FirstOrder);
        let mut li = FeedbackPartitioner::with_trend(TrendMode::Linear);
        let prev: Vec<Cost> = (0..8).map(|i| if i >= 6 { 2.0 } else { 1.0 }).collect();
        let last: Vec<Cost> = (0..8).map(|i| if i >= 6 { 6.0 } else { 1.0 }).collect();
        for p in [&mut fo, &mut li] {
            p.record(prev.clone());
            p.record(last.clone());
        }
        // True next distribution continues the trend: tail = 10.
        let truth: Vec<Cost> = (0..8).map(|i| if i >= 6 { 10.0 } else { 1.0 }).collect();
        let imbalance = |fp: &FeedbackPartitioner| {
            let s = fp.schedule(0..8, 2);
            let t0 = block_time(&truth, &s.blocks()[0].range);
            let t1 = block_time(&truth, &s.blocks()[1].range);
            (t0 - t1).abs()
        };
        assert!(
            imbalance(&li) <= imbalance(&fo),
            "linear trend must not balance worse than first-order on a trending load"
        );
    }

    #[test]
    fn linear_trend_clamps_negative_predictions() {
        let mut li = FeedbackPartitioner::with_trend(TrendMode::Linear);
        li.record(vec![10.0, 10.0, 10.0, 10.0]);
        li.record(vec![1.0, 10.0, 10.0, 10.0]); // extrapolates to -8 at slot 0
        let s = li.schedule(0..4, 2);
        assert_eq!(
            s.num_iters(),
            4,
            "clamped prediction still yields a valid schedule"
        );
    }

    #[test]
    fn linear_trend_falls_back_with_single_history() {
        let mut li = FeedbackPartitioner::with_trend(TrendMode::Linear);
        li.record(vec![1.0; 6]);
        let s = li.schedule(0..6, 3);
        let lens: Vec<_> = s.blocks().iter().map(|b| b.range.len()).collect();
        assert_eq!(lens, vec![2, 2, 2]);
    }

    #[test]
    fn nonfinite_times_are_clamped() {
        let mut fp = FeedbackPartitioner::new();
        fp.record(vec![1.0, f64::NAN, f64::INFINITY, -3.0, 1.0, 1.0]);
        // Must not panic and must produce a valid schedule.
        let s = fp.schedule(0..6, 2);
        assert_eq!(s.num_iters(), 6);
    }
}
