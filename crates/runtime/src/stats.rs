//! Per-stage execution statistics and overhead accounting.
//!
//! The paper's Fig. 4 decomposes each R-LRPD stage into loop time and
//! overhead (testing, synchronization, redistribution); Fig. 12 compares
//! optimizations by their effect on these components. [`StageStats`]
//! carries exactly that decomposition, in virtual time units, alongside
//! wall-clock measurements when real threads were used.

use crate::cost::Cost;

/// The overhead categories the R-LRPD test adds around the useful loop
/// work, mirroring Section 4's accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OverheadKind {
    /// Shadow-array marking during the speculative loop itself.
    Marking,
    /// The fully parallel analysis (shadow merge + test evaluation).
    Analysis,
    /// Last-value copy-out of correctly computed private data.
    Commit,
    /// Restoring checkpointed state on processors whose work failed.
    Restore,
    /// Saving checkpoints of untested-but-modified arrays.
    Checkpoint,
    /// Re-initializing shadow structures before a restart.
    ShadowInit,
    /// Moving iterations to different processors (RD strategy): remote
    /// misses plus data movement, `ℓ` per moved iteration.
    Redistribution,
    /// Cold/remote-cache penalties for iterations executing on a
    /// different processor than their last toucher (what the circular
    /// sliding window minimizes).
    RemoteMiss,
    /// Barrier synchronizations (`s` each).
    Sync,
}

impl OverheadKind {
    /// All categories, in report order.
    pub const ALL: [OverheadKind; 9] = [
        OverheadKind::Marking,
        OverheadKind::Analysis,
        OverheadKind::Commit,
        OverheadKind::Restore,
        OverheadKind::Checkpoint,
        OverheadKind::ShadowInit,
        OverheadKind::Redistribution,
        OverheadKind::RemoteMiss,
        OverheadKind::Sync,
    ];
}

/// Virtual-time overhead totals per category.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OverheadBreakdown {
    costs: [Cost; 9],
}

impl OverheadBreakdown {
    /// Add `cost` to category `kind`.
    pub fn add(&mut self, kind: OverheadKind, cost: Cost) {
        self.costs[Self::slot(kind)] += cost;
    }

    /// Total of one category.
    pub fn get(&self, kind: OverheadKind) -> Cost {
        self.costs[Self::slot(kind)]
    }

    /// Sum across all categories.
    pub fn total(&self) -> Cost {
        self.costs.iter().sum()
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &OverheadBreakdown) {
        for (a, b) in self.costs.iter_mut().zip(other.costs.iter()) {
            *a += b;
        }
    }

    fn slot(kind: OverheadKind) -> usize {
        OverheadKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind present in ALL")
    }
}

/// Wall-clock seconds spent in each phase of one speculative stage.
///
/// Measured only when real threads execute the stage; all fields are
/// `0.0` under the simulated executor (whose determinism contract
/// forbids host timing from leaking into results). The breakdown is
/// what the pooled analysis/commit pipeline optimizes: `analysis` and
/// `commit` were sequential merges in the seed, `shadow_clear` a
/// sequential loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSeconds {
    /// The speculative doall itself (the parallel section).
    pub execute_seconds: f64,
    /// Shadow merge + dependence-test evaluation.
    pub analysis_seconds: f64,
    /// Commit merge and parallel write-back.
    pub commit_seconds: f64,
    /// Restoring untested state written by failed blocks.
    pub restore_seconds: f64,
    /// Shadow/write-log re-initialization between stages.
    pub shadow_clear_seconds: f64,
}

impl PhaseSeconds {
    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.execute_seconds
            + self.analysis_seconds
            + self.commit_seconds
            + self.restore_seconds
            + self.shadow_clear_seconds
    }

    /// Accumulate another stage's phases into this one.
    pub fn merge(&mut self, other: &PhaseSeconds) {
        self.execute_seconds += other.execute_seconds;
        self.analysis_seconds += other.analysis_seconds;
        self.commit_seconds += other.commit_seconds;
        self.restore_seconds += other.restore_seconds;
        self.shadow_clear_seconds += other.shadow_clear_seconds;
    }
}

/// Statistics of a single speculative stage (one doall attempt).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageStats {
    /// Virtual loop time: `max` over processors of their accumulated
    /// per-iteration work (the critical path of the doall).
    pub loop_time: Cost,
    /// Useful work summed across all processors this stage (used to
    /// separate "work executed" from "work wasted" after a failure).
    pub total_work: Cost,
    /// Virtual overhead decomposition for the stage.
    pub overhead: OverheadBreakdown,
    /// Number of iterations attempted this stage.
    pub iters_attempted: usize,
    /// Number of iterations committed by this stage's analysis.
    pub iters_committed: usize,
    /// Wall-clock seconds of the parallel section, when real threads ran
    /// it; `0.0` under the simulated executor.
    pub wall_seconds: f64,
    /// Wall-clock per-phase breakdown (all `0.0` under the simulated
    /// executor).
    pub phases: PhaseSeconds,
    /// Number of panics contained by this stage (recorded as
    /// speculation faults of their block, like a dependence arc).
    pub contained_faults: usize,
    /// Wall-clock seconds spent appending this stage's commit record to
    /// the crash journal (0.0 when the run is not journaled). Unlike
    /// [`PhaseSeconds`], this is real I/O and is measured under every
    /// executor — it never feeds back into virtual-time results.
    pub journal_seconds: f64,
    /// Bytes appended to the crash journal for this stage (0 when the
    /// run is not journaled).
    pub journal_bytes: u64,
    /// Wall-clock seconds spent encoding and shipping block requests to
    /// worker subprocesses (0.0 except under distributed execution).
    /// Like the journal fields this is real I/O measured under every
    /// executor and never feeds back into virtual-time results.
    pub dispatch_seconds: f64,
    /// Wall-clock seconds spent waiting on and decoding worker replies
    /// (0.0 except under distributed execution).
    pub collect_seconds: f64,
    /// Bytes moved over worker pipes for this stage, both directions
    /// (0 except under distributed execution).
    pub wire_bytes: u64,
    /// Worker subprocesses respawned while executing this stage (after
    /// a kill, a missed block deadline, or a divergent result).
    pub respawns: usize,
    /// Worker slots quarantined while executing this stage — removed
    /// from the fleet rotation for the rest of the run after exhausting
    /// their own respawn budget or failing a deterministic handshake
    /// check (0 except under distributed execution).
    pub quarantined: usize,
    /// Peak shadow-memory footprint observed during this stage, in
    /// bytes, summed across this engine's processors (the budget
    /// accountant's high-water mark delta). Under distributed execution
    /// the supervisor folds in the workers' own peaks.
    #[serde(default)]
    pub shadow_bytes_peak: u64,
    /// Shadow-representation migrations performed at this stage's
    /// commit point (re-selection from observed touch density) or by
    /// the budget-pressure relief ladder.
    #[serde(default)]
    pub shadow_migrations: usize,
    /// Budget-pressure events contained during this stage: the shadow
    /// footprint crossed the cap and the stage re-executes under a
    /// degraded configuration.
    #[serde(default)]
    pub shadow_pressure_events: usize,
}

impl StageStats {
    /// Virtual stage time: loop critical path plus all overheads.
    pub fn virtual_time(&self) -> Cost {
        self.loop_time + self.overhead.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = OverheadBreakdown::default();
        b.add(OverheadKind::Sync, 2.0);
        b.add(OverheadKind::Sync, 3.0);
        b.add(OverheadKind::Commit, 1.5);
        assert_eq!(b.get(OverheadKind::Sync), 5.0);
        assert_eq!(b.get(OverheadKind::Commit), 1.5);
        assert_eq!(b.get(OverheadKind::Restore), 0.0);
        assert_eq!(b.total(), 6.5);
    }

    #[test]
    fn breakdown_merge_is_elementwise() {
        let mut a = OverheadBreakdown::default();
        a.add(OverheadKind::Marking, 1.0);
        let mut b = OverheadBreakdown::default();
        b.add(OverheadKind::Marking, 2.0);
        b.add(OverheadKind::Analysis, 4.0);
        a.merge(&b);
        assert_eq!(a.get(OverheadKind::Marking), 3.0);
        assert_eq!(a.get(OverheadKind::Analysis), 4.0);
    }

    #[test]
    fn phase_seconds_total_and_merge() {
        let mut a = PhaseSeconds {
            execute_seconds: 1.0,
            analysis_seconds: 0.5,
            ..Default::default()
        };
        let b = PhaseSeconds {
            analysis_seconds: 0.25,
            commit_seconds: 2.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.analysis_seconds, 0.75);
        assert_eq!(a.total(), 1.0 + 0.75 + 2.0);
    }

    #[test]
    fn stage_virtual_time_includes_overheads() {
        let mut s = StageStats {
            loop_time: 10.0,
            ..StageStats::default()
        };
        s.overhead.add(OverheadKind::Sync, 2.0);
        assert_eq!(s.virtual_time(), 12.0);
    }
}
