//! The cost model of the paper's Section 4.
//!
//! The analytical model (and our simulated machine) is parameterized by
//! three quantities the paper assumes known *a priori* — estimable by
//! static analysis plus measurement:
//!
//! * `ω` (omega) — useful computation per iteration,
//! * `ℓ` (ell)   — cost of redistributing one iteration's data to a
//!   different processor (dominated by remote cache misses on the
//!   original ccNUMA testbed),
//! * `s`         — cost of one barrier synchronization.
//!
//! Costs are dimensionless virtual time units; the simulated executor and
//! the model both consume them, so model-vs-simulation comparisons (the
//! paper's Fig. 4) are apples-to-apples.

/// Virtual time, in abstract work units.
pub type Cost = f64;

/// Machine/loop cost parameters `(ω, ℓ, s)` plus the per-element costs of
/// the R-LRPD bookkeeping phases.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// `ω`: useful work per iteration (default unit of the model).
    pub omega: Cost,
    /// `ℓ`: per-iteration cost of redistributing work to another
    /// processor (remote misses + data movement).
    pub ell: Cost,
    /// `s`: one barrier synchronization.
    pub sync: Cost,
    /// Cold/remote-cache penalty charged when an iteration executes on
    /// a different processor than the one that last touched it (the
    /// ccNUMA effect motivating the circular sliding window).
    pub remote_miss: Cost,
    /// Per-reference cost of the marking code added to the speculative
    /// loop body (the LRPD instrumentation overhead).
    pub marking_per_ref: Cost,
    /// Per-element cost of the fully parallel analysis (shadow merge);
    /// the paper bounds analysis by `O(refs · log p)`.
    pub analysis_per_ref: Cost,
    /// Per-element cost of committing a privately computed value to
    /// shared storage (last-value copy-out).
    pub commit_per_elem: Cost,
    /// Per-element cost of restoring a checkpointed value after a failed
    /// speculation.
    pub restore_per_elem: Cost,
    /// Per-element cost of (re-)initializing shadow state.
    pub shadow_init_per_elem: Cost,
    /// Per-element cost of saving a checkpoint entry.
    pub checkpoint_per_elem: Cost,
}

impl Default for CostModel {
    /// Defaults roughly in line with the paper's regime where
    /// redistribution is worth considering (`ω > ℓ + s` for the loops it
    /// studies): heavy iterations, cheap per-element bookkeeping.
    fn default() -> Self {
        CostModel {
            omega: 100.0,
            ell: 5.0,
            sync: 20.0,
            remote_miss: 1.0,
            marking_per_ref: 0.02,
            analysis_per_ref: 0.05,
            commit_per_elem: 0.05,
            restore_per_elem: 0.05,
            shadow_init_per_elem: 0.01,
            checkpoint_per_elem: 0.05,
        }
    }
}

impl CostModel {
    /// A model where every non-loop overhead is zero: useful in tests
    /// that check pure stage structure.
    pub fn work_only(omega: Cost) -> Self {
        CostModel {
            omega,
            ell: 0.0,
            sync: 0.0,
            remote_miss: 0.0,
            marking_per_ref: 0.0,
            analysis_per_ref: 0.0,
            commit_per_elem: 0.0,
            restore_per_elem: 0.0,
            shadow_init_per_elem: 0.0,
            checkpoint_per_elem: 0.0,
        }
    }

    /// The paper's Eq. 4 run-time redistribution condition: keep
    /// redistributing while the remaining iteration count `n_k` satisfies
    /// `n_k ≥ p·s / (ω − ℓ)`. When `ω ≤ ℓ` redistribution never pays and
    /// this returns `false`.
    pub fn redistribution_pays(&self, remaining_iters: usize, p: usize) -> bool {
        if self.omega <= self.ell {
            return false;
        }
        remaining_iters as f64 >= (p as f64 * self.sync) / (self.omega - self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribution_condition_matches_eq4() {
        let m = CostModel {
            omega: 10.0,
            ell: 2.0,
            sync: 16.0,
            ..CostModel::work_only(10.0)
        };
        // threshold = p*s/(omega-ell) = 8*16/8 = 16
        assert!(m.redistribution_pays(16, 8));
        assert!(m.redistribution_pays(17, 8));
        assert!(!m.redistribution_pays(15, 8));
    }

    #[test]
    fn redistribution_never_pays_when_work_below_move_cost() {
        let m = CostModel {
            omega: 1.0,
            ell: 2.0,
            ..CostModel::default()
        };
        assert!(!m.redistribution_pays(usize::MAX, 4));
    }

    #[test]
    fn work_only_zeroes_overheads() {
        let m = CostModel::work_only(7.0);
        assert_eq!(m.omega, 7.0);
        assert_eq!(m.sync, 0.0);
        assert_eq!(m.ell, 0.0);
    }
}
