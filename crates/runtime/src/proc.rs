//! Virtual processor identifiers.
//!
//! The processor-wise LRPD test orders dependences by *processor rank*,
//! not iteration number: a stage commits every processor strictly below
//! the first one that read data some lower-ranked processor wrote. Ranks
//! therefore have a total order that mirrors iteration order under block
//! scheduling.

use std::fmt;

/// Identifier of one virtual processor participating in a speculative
/// stage.
///
/// Ranks run from `0` to `p - 1`. Under static block scheduling processor
/// `i` always executes iterations strictly below those of processor
/// `i + 1`, which is what lets the analysis phase commit a *prefix* of
/// processors after a failed stage.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Rank as a `usize` index (for indexing per-processor state vectors).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all ranks `0..p`.
    pub fn all(p: usize) -> impl ExactSizeIterator<Item = ProcId> {
        (0..p as u32).map(ProcId)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(i: usize) -> Self {
        ProcId(u32::try_from(i).expect("processor rank exceeds u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered() {
        assert!(ProcId(0) < ProcId(1));
        assert!(ProcId(3) > ProcId(2));
    }

    #[test]
    fn all_enumerates_p_ranks() {
        let v: Vec<_> = ProcId::all(4).collect();
        assert_eq!(v, vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]);
        assert_eq!(ProcId::all(0).len(), 0);
    }

    #[test]
    fn index_round_trips() {
        for p in ProcId::all(8) {
            assert_eq!(ProcId::from(p.index()), p);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", ProcId(5)), "P5");
        assert_eq!(format!("{:?}", ProcId(5)), "P5");
    }
}
