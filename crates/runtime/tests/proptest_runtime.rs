//! Property tests for schedules, prefix sums, and the feedback-guided
//! partitioner.

use proptest::prelude::*;
use rlrpd_runtime::prefix::{exclusive_prefix_sum, parallel_exclusive_prefix_sum};
use rlrpd_runtime::{BlockSchedule, FeedbackPartitioner, TrendMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Even schedules partition the range exactly, in order, with block
    /// sizes differing by at most one.
    #[test]
    fn even_schedules_partition(lo in 0usize..1000, len in 0usize..2000, p in 1usize..33) {
        let s = BlockSchedule::even(lo..lo + len, p);
        prop_assert_eq!(s.num_blocks(), p);
        prop_assert_eq!(s.num_iters(), len);
        let mut next = lo;
        let mut sizes = Vec::new();
        for b in s.blocks() {
            prop_assert_eq!(b.range.start, next);
            next = b.range.end;
            sizes.push(b.len());
        }
        prop_assert_eq!(next, lo + len);
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    /// Circular rotation permutes processors but never the iteration
    /// order, and every processor appears exactly once.
    #[test]
    fn circular_is_a_processor_permutation(len in 1usize..500, p in 1usize..17, rot in 0usize..40) {
        let s = BlockSchedule::circular(0..len, p, rot % p);
        let mut procs: Vec<usize> = s.blocks().iter().map(|b| b.proc.index()).collect();
        procs.sort_unstable();
        let expect: Vec<usize> = (0..p).collect();
        prop_assert_eq!(procs, expect);
        let starts: Vec<usize> = s.blocks().iter().map(|b| b.range.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(starts, sorted, "blocks stay in iteration order");
    }

    /// moved_from is 0 for identical schedules, bounded by the
    /// iteration count, and 0 for NRD restarts.
    #[test]
    fn moved_from_bounds(len in 1usize..500, p in 1usize..17, from in 0usize..17) {
        let s = BlockSchedule::even(0..len, p);
        prop_assert_eq!(s.moved_from(&s), 0);
        let r = s.nrd_restart(from.min(p));
        prop_assert_eq!(r.moved_from(&s), 0);
        let shifted = BlockSchedule::even(len / 2..len, p);
        let moved = shifted.moved_from(&s);
        prop_assert!(moved <= shifted.num_iters());
    }

    /// Parallel prefix sums equal sequential ones.
    #[test]
    fn parallel_prefix_matches(xs in prop::collection::vec(-100.0f64..100.0, 0..300), p in 1usize..9) {
        let a = exclusive_prefix_sum(&xs);
        let b = parallel_exclusive_prefix_sum(&xs, p);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// Feedback cuts are monotone, in-bounds, and the resulting
    /// schedule always covers the space — whatever garbage history is
    /// fed in.
    #[test]
    fn feedback_cuts_are_always_valid(
        times in prop::collection::vec(0.0f64..100.0, 1..200),
        n in 1usize..300,
        p in 1usize..17,
        linear in any::<bool>(),
    ) {
        let mut fp = FeedbackPartitioner::with_trend(if linear {
            TrendMode::Linear
        } else {
            TrendMode::FirstOrder
        });
        fp.record(times.clone());
        fp.record(times);
        let cuts = fp.cuts(n, p).unwrap();
        prop_assert_eq!(cuts.len(), p - 1);
        let mut prev = 0usize;
        for &c in &cuts {
            prop_assert!(c >= prev && c <= n);
            prev = c;
        }
        let s = fp.schedule(0..n, p);
        prop_assert_eq!(s.num_iters(), n);
    }

    /// With perfectly uniform history, feedback scheduling degenerates
    /// to the even split.
    #[test]
    fn uniform_history_is_even(n in 1usize..200, p in 1usize..9) {
        let mut fp = FeedbackPartitioner::new();
        fp.record(vec![3.5; n]);
        let fb = fp.schedule(0..n, p);
        let even = BlockSchedule::even(0..n, p);
        let fb_sizes: Vec<usize> = fb.blocks().iter().map(|b| b.len()).collect();
        let even_sizes: Vec<usize> = even.blocks().iter().map(|b| b.len()).collect();
        // Sizes may differ by one at boundaries due to prefix rounding.
        for (a, b) in fb_sizes.iter().zip(&even_sizes) {
            prop_assert!(a.abs_diff(*b) <= 1, "{fb_sizes:?} vs {even_sizes:?}");
        }
    }
}
