//! The client side: `rlrpd submit` and `rlrpd status`.
//!
//! Submission is **idempotent**: the client picks the job key, and a
//! resubmission of the same bytes attaches to the existing job instead
//! of starting a duplicate. That makes the retry loop trivial — any
//! connection loss (daemon restart, network blip, drain) is handled by
//! reconnecting with exponential backoff and resubmitting verbatim;
//! the daemon replays the journal stream from its own durable copy, so
//! the client never misses the terminal status frame.

use std::io::ErrorKind;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rlrpd_core::remote::{
    commit_frontier, frame_kind, read_frame, write_frame, FrontierSummary, JobDecision, JobSpec,
    JobState, JobStatusFrame, RejectReason, StatusRequest, FRAME_STATUS, FRAME_SUMMARY,
};

/// Client-side retry policy and reporting switches.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Overall deadline for the submission (connect + stream +
    /// however many reconnects it takes).
    pub deadline: Duration,
    /// Initial reconnect backoff; doubles per attempt, capped at 2s.
    pub backoff: Duration,
    /// Print progress lines (commit frontiers, summaries, reconnects)
    /// to stdout.
    pub progress: bool,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            deadline: Duration::from_secs(60),
            backoff: Duration::from_millis(25),
            progress: false,
        }
    }
}

/// Why a submission or query gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The daemon refused, with its typed reason. Retryable reasons
    /// ([`RejectReason::Draining`]) are retried internally; this
    /// surfaces only terminal refusals.
    Rejected(RejectReason),
    /// The deadline elapsed without reaching a terminal status.
    Timeout(String),
    /// The daemon sent something undecodable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(r) => write!(f, "rejected: {r}"),
            ClientError::Timeout(m) => write!(f, "timed out: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What a completed submission observed.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The job's terminal status frame.
    pub status: JobStatusFrame,
    /// Journal frames received across all connections (catch-up
    /// replays included).
    pub frames: u64,
    /// Frontier summaries received (each stands for dropped frames).
    pub summaries: u64,
    /// Total frames the daemon dropped from this client's stream.
    pub dropped: u64,
    /// Reconnect attempts made after the initial connection.
    pub reconnects: u64,
}

struct Backoff {
    cur: Duration,
}

impl Backoff {
    fn new(initial: Duration) -> Self {
        Backoff { cur: initial }
    }

    fn wait(&mut self) {
        std::thread::sleep(self.cur);
        self.cur = (self.cur * 2).min(Duration::from_secs(2));
    }
}

/// Submit `spec` to the daemon at `addr` and follow the job to its
/// terminal status. Reconnects (resubmitting idempotently) on any
/// connection loss, daemon drain, or read stall until the deadline.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    opts: &ClientOptions,
) -> Result<SubmitOutcome, ClientError> {
    let start = Instant::now();
    let mut backoff = Backoff::new(opts.backoff);
    let mut out = SubmitOutcome {
        status: JobStatusFrame {
            key: spec.key,
            state: JobState::Unknown,
            exit_code: 0,
            verified: false,
            frontier: 0,
            report_json: String::new(),
            message: String::new(),
        },
        frames: 0,
        summaries: 0,
        dropped: 0,
        reconnects: 0,
    };
    let mut first_attempt = true;
    loop {
        if start.elapsed() > opts.deadline {
            return Err(ClientError::Timeout(format!(
                "no terminal status for job {:016x} within {:?}",
                spec.key, opts.deadline
            )));
        }
        if !first_attempt {
            out.reconnects += 1;
            if opts.progress {
                println!("submit: reconnecting (attempt {})", out.reconnects);
            }
            backoff.wait();
        }
        first_attempt = false;
        let Ok(mut stream) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        if write_frame(&mut stream, &spec.encode()).is_err() {
            continue;
        }
        let decision = match read_frame(&mut stream) {
            Ok(Some(frame)) => match JobDecision::decode(&frame) {
                Ok(d) => d,
                Err(e) => return Err(ClientError::Protocol(format!("bad decision frame: {e}"))),
            },
            _ => continue,
        };
        match decision {
            JobDecision::Rejected(RejectReason::Draining) => continue,
            JobDecision::Rejected(r) => return Err(ClientError::Rejected(r)),
            d => {
                if opts.progress {
                    println!("submit: {d:?}");
                }
            }
        }
        // Follow the stream. Any failure from here on loops back to an
        // idempotent resubmission.
        match follow_stream(&mut stream, &mut out, opts) {
            Some(status) if matches!(status.state, JobState::Done | JobState::Failed) => {
                out.status = status;
                return Ok(out);
            }
            Some(_paused) => continue, // daemon drained; retry after it returns
            None => continue,
        }
    }
}

/// Read frames until a status frame or a connection problem. Returns
/// the status frame if one arrived.
fn follow_stream(
    stream: &mut TcpStream,
    out: &mut SubmitOutcome,
    opts: &ClientOptions,
) -> Option<JobStatusFrame> {
    loop {
        let frame = match read_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return None,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return None
            }
            Err(_) => return None,
        };
        match frame_kind(&frame) {
            Some(FRAME_STATUS) => match JobStatusFrame::decode(&frame) {
                Ok(st) => {
                    if opts.progress {
                        println!("submit: job {:016x} {:?}", st.key, st.state);
                    }
                    return Some(st);
                }
                Err(_) => return None,
            },
            Some(FRAME_SUMMARY) => {
                if let Ok(s) = FrontierSummary::decode(&frame) {
                    out.summaries += 1;
                    out.dropped += s.dropped;
                    if opts.progress {
                        println!(
                            "submit: frontier {} ({} records, {} frames skipped)",
                            s.frontier, s.records, s.dropped
                        );
                    }
                }
            }
            _ => {
                out.frames += 1;
                if let Some(fr) = commit_frontier(&frame) {
                    if opts.progress {
                        println!("submit: commit frontier {fr}");
                    }
                }
            }
        }
    }
}

/// Query the status of job `key` at the daemon `addr`, retrying
/// connection failures until the deadline.
pub fn query_status(
    addr: &str,
    key: u64,
    opts: &ClientOptions,
) -> Result<JobStatusFrame, ClientError> {
    let start = Instant::now();
    let mut backoff = Backoff::new(opts.backoff);
    let req = StatusRequest {
        protocol: rlrpd_core::remote::SERVE_PROTOCOL_VERSION,
        key,
    };
    loop {
        if start.elapsed() > opts.deadline {
            return Err(ClientError::Timeout(format!(
                "no status for job {key:016x} within {:?}",
                opts.deadline
            )));
        }
        let Ok(mut stream) = TcpStream::connect(addr) else {
            backoff.wait();
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        if write_frame(&mut stream, &req.encode()).is_err() {
            backoff.wait();
            continue;
        }
        match read_frame(&mut stream) {
            Ok(Some(frame)) if frame_kind(&frame) == Some(FRAME_STATUS) => {
                return JobStatusFrame::decode(&frame)
                    .map_err(|e| ClientError::Protocol(format!("bad status frame: {e}")));
            }
            Ok(Some(_)) => {
                return Err(ClientError::Protocol("unexpected frame kind".into()));
            }
            _ => {
                backoff.wait();
                continue;
            }
        }
    }
}
