//! The `rlrpd serve` daemon: a long-lived, crash-tolerant job server
//! multiplexing many tenants' speculative runs over one process.
//!
//! ## Lifecycle of a job
//!
//! 1. **Admission** (session thread): the submission is validated
//!    (protocol version, spec compiles, strategy parses) and checked
//!    against the process-wide [`BudgetPool`] — a request larger than
//!    the *entire* pool can never run and is rejected with a typed
//!    [`RejectReason::OverPool`]; anything else is durably recorded
//!    (the meta image is the exact submission record) and queued under
//!    its tenant. Resubmitting a key with identical bytes *attaches*
//!    to the existing job; different bytes are a [`RejectReason::KeyConflict`].
//! 2. **Dispatch** (scheduler thread): tenants are served round-robin;
//!    a job runs only once its budget (explicit, or a fair share of
//!    the pool for `budget_bytes == 0`) is carved from the pool, so
//!    concurrently granted budgets can never sum above the pool.
//! 3. **Execution** (job thread): the run is journaled under the job's
//!    directory with fsync-before-advance; every durable record is
//!    fanned out live to subscribed clients through bounded queues.
//! 4. **Drain** (SIGTERM / [`DaemonHandle::drain`]): admission stops
//!    (typed [`RejectReason::Draining`]), every running job's
//!    cooperative stop flag is set, runs pause at their next commit
//!    point (journals already durable), subscribers receive a
//!    `Paused` status frame, and the daemon exits 0.
//! 5. **Recovery** (`--resume`): the state directory is scanned; jobs
//!    with a status sidecar are terminal, everything else is
//!    re-queued and resumed from its journal — a job SIGKILLed
//!    mid-run finishes byte-identical to an uninterrupted execution.

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rlrpd_core::remote::{
    frame_kind, read_frame, write_frame, JobDecision, JobSpec, JobState, JobStatusFrame,
    RejectReason, StatusRequest, FRAME_STATUS_REQ, FRAME_SUBMIT, SERVE_PROTOCOL_VERSION,
};
use rlrpd_core::{
    run_sequential, AdaptRule, ExecMode, FaultPlan, FrameObserver, Journal, RlrpdError, RunConfig,
    Runner, Strategy, WindowConfig,
};
use rlrpd_dist::resolve_spec;
use rlrpd_shadow::{BudgetLease, BudgetPool};

use crate::jobs::{
    count_frames, job_dir, key_of_dir, read_frames, tenant_of, write_atomic, Job, StreamItem,
    META_FILE, STATUS_FILE,
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to listen on (`"127.0.0.1:0"` for an ephemeral port).
    pub listen: String,
    /// Directory holding every job's durable state.
    pub state_dir: PathBuf,
    /// The process-wide shadow-budget pool, in bytes: the sum of all
    /// concurrently granted job budgets never exceeds this.
    pub pool_budget: u64,
    /// Maximum concurrently *running* jobs; also the fair-share
    /// divisor for submissions that ask the daemon to pick a budget.
    pub max_jobs: usize,
    /// Per-subscriber stream buffer, in frames — the daemon's entire
    /// memory commitment to one slow client.
    pub stream_buffer: usize,
    /// How long a single blocked write to a client may stall before
    /// the client is declared dead and disconnected.
    pub stall_timeout: Duration,
    /// Scan the state directory on startup and resume incomplete jobs.
    pub resume: bool,
    /// Evict *terminal* job state (status sidecar present) once the
    /// sidecar is older than this TTL. `None` keeps everything
    /// forever. Non-terminal directories — a queued, running, or
    /// paused job's live journal — are never touched, whatever their
    /// age.
    pub job_ttl: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            state_dir: PathBuf::from("rlrpd-serve-state"),
            pool_budget: 64 << 20,
            max_jobs: 4,
            stream_buffer: 256,
            stall_timeout: Duration::from_secs(5),
            resume: false,
            job_ttl: None,
        }
    }
}

/// Round-robin tenant queues: one FIFO per tenant, a cursor walking
/// the tenant list so no tenant's backlog can starve another's.
struct Sched {
    tenants: Vec<(u32, VecDeque<u64>)>,
    cursor: usize,
}

impl Sched {
    fn enqueue(&mut self, tenant: u32, key: u64) {
        match self.tenants.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, q)) => q.push_back(key),
            None => self.tenants.push((tenant, VecDeque::from([key]))),
        }
    }

    /// Pop the next key round-robin, starting at the cursor.
    fn pop_next(&mut self) -> Option<u64> {
        if self.tenants.is_empty() {
            return None;
        }
        let n = self.tenants.len();
        for off in 0..n {
            let at = (self.cursor + off) % n;
            if let Some(key) = self.tenants[at].1.pop_front() {
                self.cursor = (at + 1) % n;
                return Some(key);
            }
        }
        None
    }

    /// Put a key back at the *front* of its tenant's queue (a carve
    /// that did not fit yet; it keeps its place).
    fn push_front(&mut self, tenant: u32, key: u64) {
        match self.tenants.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, q)) => q.push_front(key),
            None => self.tenants.push((tenant, VecDeque::from([key]))),
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    pool: Arc<BudgetPool>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    sched: Mutex<Sched>,
    sched_cond: Condvar,
    draining: AtomicBool,
    running: AtomicUsize,
    sessions: AtomicUsize,
}

/// The daemon. [`Daemon::start`] binds the listener and spawns the
/// accept and scheduler threads; the returned [`DaemonHandle`] drains
/// and joins it.
pub struct Daemon;

/// A running daemon: its bound address, drain switch, and join handle.
pub struct DaemonHandle {
    addr: String,
    shared: Arc<Shared>,
    accept: std::thread::JoinHandle<()>,
    sched: std::thread::JoinHandle<()>,
}

impl DaemonHandle {
    /// The bound listen address (concrete port even when the config
    /// asked for an ephemeral one).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Begin a graceful drain, exactly as SIGTERM does: admission
    /// stops, running jobs pause at their next commit point, queued
    /// jobs stay durable for a later `--resume`.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.sched_cond.notify_all();
    }

    /// Wait for the daemon to finish draining; returns the process
    /// exit code (0 on a clean drain).
    pub fn join(self) -> i32 {
        let a = self.accept.join();
        let s = self.sched.join();
        if a.is_err() || s.is_err() {
            return 1;
        }
        0
    }

    /// High-water mark of concurrently granted budget bytes — the
    /// soak tests' witness that grants never summed above the pool.
    pub fn pool_granted_peak(&self) -> u64 {
        self.shared.pool.granted_peak()
    }

    /// The pool's total capacity.
    pub fn pool_total(&self) -> u64 {
        self.shared.pool.total()
    }

    /// Currently running job count (tests poll this to time a drain
    /// mid-flight).
    pub fn running_jobs(&self) -> usize {
        self.shared.running.load(Ordering::SeqCst)
    }
}

impl Daemon {
    /// Bind the listener, recover durable state, and start serving.
    ///
    /// With `resume` unset, a state directory holding *incomplete*
    /// jobs is refused (start with `resume` to pick them up) — a
    /// silent fresh start over live journals would strand them.
    pub fn start(cfg: ServeConfig) -> std::io::Result<DaemonHandle> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?.to_string();
        let shared = Arc::new(Shared {
            pool: Arc::new(BudgetPool::new(cfg.pool_budget)),
            cfg,
            jobs: Mutex::new(HashMap::new()),
            sched: Mutex::new(Sched {
                tenants: Vec::new(),
                cursor: 0,
            }),
            sched_cond: Condvar::new(),
            draining: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            sessions: AtomicUsize::new(0),
        });
        recover(&shared)?;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(shared, listener))
        };
        let sched = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler(shared))
        };
        Ok(DaemonHandle {
            addr,
            shared,
            accept,
            sched,
        })
    }
}

/// One TTL sweep over the state directory: remove every job
/// directory whose status sidecar exists *and* is older than the
/// TTL. The sidecar is the terminal witness — it is written (tmp +
/// rename + fsync) only once a job reaches `Done` or `Failed` — so a
/// directory without one belongs to a queued, running, or paused job
/// and is never touched, whatever its age. Returns the evicted keys.
pub(crate) fn evict_expired_dirs(state_dir: &std::path::Path, ttl: Duration) -> Vec<u64> {
    let mut evicted = Vec::new();
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return evicted;
    };
    let now = std::time::SystemTime::now();
    for entry in entries.flatten() {
        let Some(key) = entry.file_name().to_str().and_then(key_of_dir) else {
            continue;
        };
        let dir = entry.path();
        // Age is measured on the sidecar, not the directory: journal
        // appends and late meta rewrites must not refresh the clock.
        let Ok(meta) = std::fs::metadata(dir.join(STATUS_FILE)) else {
            continue; // no sidecar: the job is not terminal
        };
        let expired = meta
            .modified()
            .ok()
            .and_then(|m| now.duration_since(m).ok())
            .is_some_and(|age| age >= ttl);
        if !expired {
            continue;
        }
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => evicted.push(key),
            Err(e) => eprintln!("serve: job {key:016x}: ttl eviction failed: {e}"),
        }
    }
    evicted
}

/// The scheduler-thread face of the sweep: rate-limited by the TTL
/// itself (capped at one pass per second), and after the filesystem
/// pass it drops the evicted keys' in-memory records — but only ones
/// still in a terminal state, so a key resubmitted in the window
/// between the scan and the lock is left alone.
fn evict_expired(shared: &Arc<Shared>, last_sweep: &mut std::time::Instant) {
    let Some(ttl) = shared.cfg.job_ttl else {
        return;
    };
    if last_sweep.elapsed() < ttl.min(Duration::from_secs(1)) {
        return;
    }
    *last_sweep = std::time::Instant::now();
    let evicted = evict_expired_dirs(&shared.cfg.state_dir, ttl);
    if evicted.is_empty() {
        return;
    }
    let mut jobs = shared.jobs.lock().expect("jobs lock");
    for key in &evicted {
        if let Some(job) = jobs.get(key) {
            if matches!(job.current_state(), JobState::Done | JobState::Failed) {
                jobs.remove(key);
            }
        }
    }
}

/// Scan the state directory: terminal jobs (status sidecar present)
/// are loaded for status queries and late attaches; incomplete jobs
/// are re-queued when resuming, refused otherwise.
fn recover(shared: &Arc<Shared>) -> std::io::Result<()> {
    if let Some(ttl) = shared.cfg.job_ttl {
        let evicted = evict_expired_dirs(&shared.cfg.state_dir, ttl);
        if !evicted.is_empty() {
            eprintln!(
                "serve: evicted {} terminal job(s) past the {:.0?} TTL",
                evicted.len(),
                ttl
            );
        }
    }
    let mut incomplete = Vec::new();
    for entry in std::fs::read_dir(&shared.cfg.state_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(key) = name.to_str().and_then(key_of_dir) else {
            continue;
        };
        let dir = entry.path();
        let spec = match std::fs::read(dir.join(META_FILE))
            .ok()
            .and_then(|b| JobSpec::decode(&b).ok())
        {
            Some(s) if s.key == key => s,
            _ => {
                eprintln!("serve: {}: unreadable meta image; skipped", dir.display());
                continue;
            }
        };
        let base = count_frames(&dir.join(crate::jobs::JOURNAL_FILE)) as u64;
        let job = Arc::new(Job::new(spec, dir.clone(), base));
        let status = std::fs::read(job.status_path())
            .ok()
            .and_then(|b| JobStatusFrame::decode(&b).ok());
        match status {
            Some(st) => {
                job.set_state(st.state);
                job.publisher.finish(&st.encode());
                *job.status.lock().expect("job status lock") = Some(st);
            }
            None => incomplete.push(key),
        }
        shared.jobs.lock().expect("jobs lock").insert(key, job);
    }
    if !incomplete.is_empty() && !shared.cfg.resume {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            format!(
                "state dir holds {} incomplete job(s); start with --resume to pick them up",
                incomplete.len()
            ),
        ));
    }
    incomplete.sort_unstable();
    let mut sched = shared.sched.lock().expect("sched lock");
    for key in incomplete {
        sched.enqueue(tenant_of(key), key);
    }
    Ok(())
}

/// The accept loop. Non-blocking so the drain flag is observed; on
/// drain it stops accepting, pauses every job, and waits for the
/// running set (then the session threads) to wind down.
fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        eprintln!("serve: cannot poll the listener; refusing to run blind");
        shared.draining.store(true, Ordering::SeqCst);
    }
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                shared.sessions.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    session(&shared, stream);
                    shared.sessions.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    drain_jobs(&shared);
    while shared.running.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    // Give session threads a bounded grace period to flush their
    // final (Paused / terminal) status frames.
    for _ in 0..200 {
        if shared.sessions.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Pause the world: queued jobs flip to `Paused` (their meta images
/// keep them durable), running jobs get their cooperative stop flag
/// set and pause themselves at the next commit point.
fn drain_jobs(shared: &Arc<Shared>) {
    let jobs = shared.jobs.lock().expect("jobs lock");
    for job in jobs.values() {
        match job.current_state() {
            JobState::Queued => {
                job.set_state(JobState::Paused);
                let status = paused_status(job, 0);
                job.publisher.finish(&status.encode());
            }
            JobState::Running => job.stop.store(true, Ordering::SeqCst),
            _ => {}
        }
    }
}

fn paused_status(job: &Job, frontier: u64) -> JobStatusFrame {
    let frontier = frontier.max(job.publisher.summary(0).frontier);
    JobStatusFrame {
        key: job.spec.key,
        state: JobState::Paused,
        exit_code: 0,
        verified: false,
        frontier,
        report_json: String::new(),
        message: "paused by drain; restart the daemon with --resume".into(),
    }
}

/// The dispatcher: round-robin across tenants, gated on the budget
/// pool and the running-job cap. A job whose budget does not fit yet
/// keeps its place at the front of its tenant's queue.
fn scheduler(shared: Arc<Shared>) {
    let mut last_sweep = std::time::Instant::now();
    loop {
        let dispatch = {
            let mut sched = shared.sched.lock().expect("sched lock");
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            match try_dispatch(&shared, &mut sched) {
                Some(d) => Some(d),
                None => {
                    let _ = shared
                        .sched_cond
                        .wait_timeout(sched, Duration::from_millis(50))
                        .expect("sched lock");
                    None
                }
            }
        };
        // Outside the scheduler lock: the TTL sweep touches the
        // filesystem and must not stall dispatch or admission.
        evict_expired(&shared, &mut last_sweep);
        let Some((job, lease)) = dispatch else {
            continue;
        };
        shared.running.fetch_add(1, Ordering::SeqCst);
        job.set_state(JobState::Running);
        let shared2 = Arc::clone(&shared);
        std::thread::spawn(move || {
            run_job(&shared2, &job, &lease);
            shared2.running.fetch_sub(1, Ordering::SeqCst);
            drop(lease);
            shared2.sched_cond.notify_all();
        });
    }
}

/// One dispatch attempt under the scheduler lock: find the next
/// queued job (round-robin) whose budget carves from the pool.
fn try_dispatch(shared: &Arc<Shared>, sched: &mut Sched) -> Option<(Arc<Job>, BudgetLease)> {
    if shared.running.load(Ordering::SeqCst) >= shared.cfg.max_jobs.max(1) {
        return None;
    }
    let key = sched.pop_next()?;
    let job = match shared.jobs.lock().expect("jobs lock").get(&key) {
        Some(j) => Arc::clone(j),
        None => return None, // deleted under us; drop the queue entry
    };
    let want = grant_bytes(&shared.cfg, &job.spec);
    match shared.pool.try_carve(want) {
        Some(lease) => Some((job, lease)),
        None => {
            // Not yet: the pool is committed elsewhere. The job keeps
            // its place; a finishing job's lease release re-wakes us.
            sched.push_front(tenant_of(key), key);
            None
        }
    }
}

/// The budget a job runs under: its explicit request, or a fair share
/// of the pool (`pool / max_jobs`) when it asked the daemon to pick.
fn grant_bytes(cfg: &ServeConfig, spec: &JobSpec) -> u64 {
    if spec.budget_bytes > 0 {
        spec.budget_bytes
    } else {
        (cfg.pool_budget / cfg.max_jobs.max(1) as u64).max(1)
    }
}

/// Execute one job to a terminal state (or a drain pause), publishing
/// its journal stream and recording the outcome.
fn run_job(shared: &Arc<Shared>, job: &Arc<Job>, lease: &BudgetLease) {
    match execute_job(job, lease) {
        Ok(Outcome::Paused { frontier }) => {
            job.set_state(JobState::Paused);
            let status = paused_status(job, frontier);
            job.publisher.finish(&status.encode());
        }
        Ok(Outcome::Finished(status)) => settle(shared, job, status),
        Err(status) => settle(shared, job, status),
    }
}

/// Persist and publish a terminal status: sidecar first (tmp +
/// rename + fsync — after this the restart scan knows the job is
/// over), then the in-memory record, then the subscribers.
fn settle(_shared: &Arc<Shared>, job: &Arc<Job>, status: JobStatusFrame) {
    let bytes = status.encode();
    if let Err(e) = write_atomic(&job.status_path(), &bytes) {
        eprintln!(
            "serve: job {:016x}: status sidecar write failed: {e}",
            job.spec.key
        );
    }
    job.set_state(status.state);
    *job.status.lock().expect("job status lock") = Some(status);
    job.publisher.finish(&bytes);
}

enum Outcome {
    Finished(JobStatusFrame),
    Paused { frontier: u64 },
}

fn execute_job(job: &Arc<Job>, lease: &BudgetLease) -> Result<Outcome, JobStatusFrame> {
    let key = job.spec.key;
    let fail = |exit_code: u32, message: String| JobStatusFrame {
        key,
        state: JobState::Failed,
        exit_code,
        verified: false,
        frontier: job.publisher.summary(0).frontier,
        report_json: String::new(),
        message,
    };
    let lp = resolve_spec(&job.spec.spec).map_err(|e| fail(64, e))?;
    let cfg = job_config(&job.spec, lease.bytes()).map_err(|e| fail(64, e))?;
    let mut runner = Runner::new(cfg).with_stop(Arc::clone(&job.stop));
    if let Some(plan) = job_faults(&job.spec, lp.num_iters()).map_err(|e| fail(64, e))? {
        runner = runner.with_fault(Arc::new(plan));
    }

    let path = job.journal_path();
    let (mut journal, resuming) = if path.exists() {
        match Journal::open(&path) {
            Ok(j) if j.header().is_some() => (j, true),
            _ => {
                // Unusable (headerless or unrecoverable) journal: a
                // crash before the first durable record. Start over.
                let _ = std::fs::remove_file(&path);
                let j =
                    Journal::create(&path).map_err(|e| fail(4, format!("journal create: {e}")))?;
                (j, false)
            }
        }
    } else {
        let j = Journal::create(&path).map_err(|e| fail(4, format!("journal create: {e}")))?;
        (j, false)
    };
    job.publisher.reconcile_records(journal.records() as u64);
    let observer = {
        let job = Arc::clone(job);
        FrameObserver::new(move |frame: &[u8]| job.publisher.publish(frame))
    };
    journal.set_observer(Some(observer));

    let result = if resuming {
        runner.resume(lp.as_ref(), &mut journal)
    } else {
        runner.try_run_journaled(lp.as_ref(), &mut journal)
    };
    match result {
        Ok(res) => {
            if let Some(at) = res.report.stopped_at {
                if job.stop.load(Ordering::SeqCst) {
                    return Ok(Outcome::Paused {
                        frontier: at as u64,
                    });
                }
            }
            // Byte-identity against a sequential execution of the same
            // loop: the daemon's contract, not the client's trust.
            let (seq, _) = run_sequential(lp.as_ref());
            let verified = res.arrays == seq;
            Ok(Outcome::Finished(JobStatusFrame {
                key,
                state: JobState::Done,
                exit_code: 0,
                verified,
                frontier: lp.num_iters() as u64,
                report_json: res.report.to_json(),
                message: String::new(),
            }))
        }
        Err(e) => Err(fail(exit_code_of(&e), e.to_string())),
    }
}

/// Map an engine error onto the CLI exit-code contract (2 program
/// fault / 3 stage limit / 4 journal / 1 other).
fn exit_code_of(e: &RlrpdError) -> u32 {
    match e {
        RlrpdError::ProgramFault { .. } => 2,
        RlrpdError::StageLimit { .. } => 3,
        RlrpdError::Journal { .. } => 4,
        _ => 1,
    }
}

/// Build the run configuration a submission asks for.
fn job_config(spec: &JobSpec, budget: u64) -> Result<RunConfig, String> {
    let p = (spec.p as usize).max(1);
    let strategy = parse_strategy(&spec.strategy)?;
    let mut cfg = RunConfig::new(p)
        .with_strategy(strategy)
        .with_exec(ExecMode::Pooled)
        .with_shadow_budget(Some(budget));
    if spec.max_stages > 0 {
        cfg.max_stages = spec.max_stages as usize;
    }
    Ok(cfg)
}

/// Strategy strings in CLI syntax: `nrd`, `rd`, `adaptive`, `sw:W`.
pub(crate) fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s {
        "nrd" => Ok(Strategy::Nrd),
        "rd" => Ok(Strategy::Rd),
        "adaptive" => Ok(Strategy::AdaptiveRd(AdaptRule::Measured)),
        s if s.starts_with("sw:") => {
            let w: usize = s[3..]
                .parse()
                .map_err(|_| format!("bad window size in '{s}'"))?;
            Ok(Strategy::SlidingWindow(WindowConfig::fixed(w)))
        }
        other => Err(format!("unknown strategy '{other}'")),
    }
}

/// Each job's faults are its own: a plan derived from *its*
/// submission, never shared across tenants.
fn job_faults(spec: &JobSpec, n: usize) -> Result<Option<FaultPlan>, String> {
    let mut plan = FaultPlan::new();
    let mut armed = false;
    if spec.fault_seed != 0 {
        plan = FaultPlan::seeded_panic(spec.fault_seed, n);
        armed = true;
    }
    if !spec.shadow_fault.is_empty() {
        for part in spec.shadow_fault.split(',') {
            let (stage, bytes) = part
                .split_once(':')
                .ok_or(format!("shadow fault expects STAGE:BYTES, got '{part}'"))?;
            let stage: usize = stage
                .parse()
                .map_err(|_| format!("bad stage ordinal '{stage}'"))?;
            let bytes: u64 = bytes
                .parse()
                .map_err(|_| format!("bad byte count '{bytes}'"))?;
            plan = plan.shadow_pressure_at(stage, bytes);
            armed = true;
        }
    }
    Ok(armed.then_some(plan))
}

/// Validate a submission without creating any state: the same checks
/// dispatch will make, surfaced at admission as a typed rejection.
fn validate(spec: &JobSpec) -> Result<(), String> {
    let lp = resolve_spec(&spec.spec)?;
    parse_strategy(&spec.strategy)?;
    job_faults(spec, lp.num_iters())?;
    if spec.p == 0 {
        return Err("processor count must be at least 1".into());
    }
    Ok(())
}

/// Admit a submission: decide, and durably record accepted jobs.
fn admit(shared: &Arc<Shared>, spec: JobSpec) -> (JobDecision, Option<Arc<Job>>) {
    if spec.protocol != SERVE_PROTOCOL_VERSION {
        return (
            JobDecision::Rejected(RejectReason::ProtocolMismatch {
                server: SERVE_PROTOCOL_VERSION,
            }),
            None,
        );
    }
    if shared.draining.load(Ordering::SeqCst) {
        return (JobDecision::Rejected(RejectReason::Draining), None);
    }
    if spec.budget_bytes > 0 && !shared.pool.can_ever_fit(spec.budget_bytes) {
        return (
            JobDecision::Rejected(RejectReason::OverPool {
                requested: spec.budget_bytes,
                pool: shared.pool.total(),
            }),
            None,
        );
    }
    if let Err(m) = validate(&spec) {
        return (JobDecision::Rejected(RejectReason::BadSpec(m)), None);
    }
    let mut jobs = shared.jobs.lock().expect("jobs lock");
    if let Some(existing) = jobs.get(&spec.key) {
        return if existing.spec == spec {
            (JobDecision::Attached, Some(Arc::clone(existing)))
        } else {
            (JobDecision::Rejected(RejectReason::KeyConflict), None)
        };
    }
    let dir = job_dir(&shared.cfg.state_dir, spec.key);
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| write_atomic(&dir.join(META_FILE), &spec.encode()))
    {
        return (
            JobDecision::Rejected(RejectReason::BadSpec(format!(
                "cannot persist job state: {e}"
            ))),
            None,
        );
    }
    let job = Arc::new(Job::new(spec, dir, 0));
    let key = job.spec.key;
    jobs.insert(key, Arc::clone(&job));
    drop(jobs);
    let immediate = shared.running.load(Ordering::SeqCst) < shared.cfg.max_jobs
        && shared.pool.available() >= grant_bytes(&shared.cfg, &job.spec);
    shared
        .sched
        .lock()
        .expect("sched lock")
        .enqueue(tenant_of(key), key);
    shared.sched_cond.notify_all();
    let decision = if immediate {
        JobDecision::Accepted
    } else {
        JobDecision::Queued
    };
    (decision, Some(job))
}

/// Answer a status query from live state (running and terminal jobs
/// both live in the map; recovery loads terminal jobs from disk).
fn status_of(shared: &Arc<Shared>, key: u64) -> JobStatusFrame {
    let jobs = shared.jobs.lock().expect("jobs lock");
    match jobs.get(&key) {
        Some(job) => {
            if let Some(st) = job.status.lock().expect("job status lock").clone() {
                return st;
            }
            JobStatusFrame {
                key,
                state: job.current_state(),
                exit_code: 0,
                verified: false,
                frontier: job.publisher.summary(0).frontier,
                report_json: String::new(),
                message: String::new(),
            }
        }
        None => JobStatusFrame {
            key,
            state: JobState::Unknown,
            exit_code: 0,
            verified: false,
            frontier: 0,
            report_json: String::new(),
            message: "no job under this key".into(),
        },
    }
}

/// One client connection: a submission (answered with a decision,
/// then the job's journal stream, then its status frame) or a status
/// query (answered with one status frame).
fn session(shared: &Arc<Shared>, mut stream: TcpStream) {
    // A connected-but-silent client is reclaimed, mirroring the
    // worker listener's idle reaper.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let first = match read_frame(&mut stream) {
        Ok(Some(f)) => f,
        _ => return,
    };
    match frame_kind(&first) {
        Some(FRAME_SUBMIT) => {
            let Ok(spec) = JobSpec::decode(&first) else {
                return;
            };
            let (decision, job) = admit(shared, spec);
            if write_frame(&mut stream, &decision.encode()).is_err() {
                return;
            }
            // Rejections carry no job; everything else streams.
            let Some(job) = job else { return };
            stream_job(shared, &job, stream);
        }
        Some(FRAME_STATUS_REQ) => {
            let Ok(req) = StatusRequest::decode(&first) else {
                return;
            };
            let status = status_of(shared, req.key);
            let _ = write_frame(&mut stream, &status.encode());
        }
        _ => {}
    }
}

/// Stream a job's journal to one client: catch up from the file
/// (the stream and the file are the same bytes), then follow the
/// live queue, coalescing dropped frames into frontier summaries. A
/// write that stalls past the configured timeout disconnects the
/// client; the job itself never notices.
fn stream_job(shared: &Arc<Shared>, job: &Arc<Job>, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.cfg.stall_timeout));
    let (sub, snapshot, finished) = job.publisher.subscribe(shared.cfg.stream_buffer);
    let catch_up = read_frames(&job.journal_path(), snapshot as usize).unwrap_or_default();
    for frame in &catch_up {
        if write_frame(&mut stream, frame).is_err() {
            sub.mark_gone();
            return;
        }
    }
    if let Some(status) = finished {
        let _ = write_frame(&mut stream, &status);
        return;
    }
    loop {
        match sub.next() {
            StreamItem::Frame { record, dropped } => {
                if dropped > 0 {
                    let summary = job.publisher.summary(dropped);
                    if write_frame(&mut stream, &summary.encode()).is_err() {
                        sub.mark_gone();
                        return;
                    }
                }
                if write_frame(&mut stream, &record).is_err() {
                    sub.mark_gone();
                    return;
                }
            }
            StreamItem::Closed => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Process entry: signals and the CLI wrapper
// ---------------------------------------------------------------------------

/// Set by SIGTERM/SIGINT; polled by [`serve_entry`].
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term_signal(_sig: i32) {
    SIGNAL_DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    // SIGTERM = 15, SIGINT = 2 on every Unix this builds for. The
    // handler only stores to an atomic (async-signal-safe); the drain
    // itself runs on the entry thread's poll loop.
    // SAFETY: installing an async-signal-safe handler (a single
    // atomic store) via the C `signal` entry point.
    unsafe {
        signal(15, on_term_signal);
        signal(2, on_term_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Run the daemon as a process: install signal handlers, print the
/// listen banner, serve until SIGTERM/SIGINT, drain, exit. Returns
/// the process exit code.
pub fn serve_entry(cfg: ServeConfig) -> i32 {
    install_signal_handlers();
    let handle = match Daemon::start(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rlrpd serve: {e}");
            return 1;
        }
    };
    println!(
        "serve listening on {} (pool {} bytes, {} concurrent jobs, state {})",
        handle.addr(),
        handle.pool_total(),
        cfg.max_jobs,
        cfg.state_dir.display()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    while !SIGNAL_DRAIN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("serve: drain requested; pausing jobs at their commit points");
    handle.drain();
    handle.join()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut s = Sched {
            tenants: Vec::new(),
            cursor: 0,
        };
        // Tenant 1 floods first; tenant 2 arrives later with one job.
        s.enqueue(1, 0x1_0000_0001);
        s.enqueue(1, 0x1_0000_0002);
        s.enqueue(1, 0x1_0000_0003);
        s.enqueue(2, 0x2_0000_0001);
        assert_eq!(s.pop_next(), Some(0x1_0000_0001));
        assert_eq!(
            s.pop_next(),
            Some(0x2_0000_0001),
            "the later tenant is served before the flood continues"
        );
        assert_eq!(s.pop_next(), Some(0x1_0000_0002));
        assert_eq!(s.pop_next(), Some(0x1_0000_0003));
        assert_eq!(s.pop_next(), None);
    }

    #[test]
    fn push_front_preserves_place() {
        let mut s = Sched {
            tenants: Vec::new(),
            cursor: 0,
        };
        s.enqueue(1, 10);
        s.enqueue(1, 11);
        let k = s.pop_next().unwrap();
        s.push_front(1, k);
        assert_eq!(s.pop_next(), Some(10), "a deferred carve keeps its turn");
    }

    #[test]
    fn strategies_parse_cli_syntax() {
        assert!(matches!(parse_strategy("nrd"), Ok(Strategy::Nrd)));
        assert!(matches!(parse_strategy("rd"), Ok(Strategy::Rd)));
        assert!(matches!(
            parse_strategy("adaptive"),
            Ok(Strategy::AdaptiveRd(_))
        ));
        assert!(matches!(
            parse_strategy("sw:17"),
            Ok(Strategy::SlidingWindow(_))
        ));
        assert!(parse_strategy("magic").is_err());
        assert!(parse_strategy("sw:none").is_err());
    }

    #[test]
    fn fair_share_is_pool_over_max_jobs() {
        let cfg = ServeConfig {
            pool_budget: 1000,
            max_jobs: 4,
            ..ServeConfig::default()
        };
        let mut spec = JobSpec {
            protocol: SERVE_PROTOCOL_VERSION,
            key: 1,
            spec: "unused".into(),
            p: 4,
            strategy: "rd".into(),
            budget_bytes: 0,
            fault_seed: 0,
            shadow_fault: String::new(),
            max_stages: 0,
        };
        assert_eq!(grant_bytes(&cfg, &spec), 250);
        spec.budget_bytes = 777;
        assert_eq!(grant_bytes(&cfg, &spec), 777);
    }
}
