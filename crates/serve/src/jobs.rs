//! Per-job state: the on-disk layout, the live publisher that fans the
//! journal stream out to subscribed clients, and the bounded
//! per-subscriber buffers that give the daemon backpressure.
//!
//! The stream a client receives IS the job's crash journal: every frame
//! the publisher fans out is the exact length-framed record that was
//! just fsynced to the journal file, so "watch the job" and "replicate
//! the journal" are the same operation. A subscriber that attaches late
//! is caught up from the file itself (the first `records` frames) and
//! then switched to the live queue — the file and the stream can never
//! disagree because they are the same bytes.

use std::collections::VecDeque;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex};

use rlrpd_core::remote::{commit_frontier, FrontierSummary};
use rlrpd_core::remote::{JobSpec, JobState, JobStatusFrame};

/// File name of the job's meta image (the exact [`JobSpec`] record the
/// client submitted).
pub const META_FILE: &str = "meta.bin";
/// File name of the job's crash journal.
pub const JOURNAL_FILE: &str = "journal.bin";
/// File name of the job's terminal status sidecar (a
/// [`JobStatusFrame`] record, written atomically via tmp + rename).
pub const STATUS_FILE: &str = "status.bin";

/// The tenant of a job: the upper 32 bits of its idempotency key.
/// Clients group related jobs under one tenant by sharing a key
/// prefix; the daemon round-robins dispatch across tenants so one
/// flood of submissions cannot starve another tenant's queue.
pub fn tenant_of(key: u64) -> u32 {
    (key >> 32) as u32
}

/// Directory holding a job's durable state under the daemon's state
/// dir, named by the idempotency key.
pub fn job_dir(state_dir: &Path, key: u64) -> PathBuf {
    state_dir.join(format!("job-{key:016x}"))
}

/// Parse a `job-<key:016x>` directory name back to its key.
pub fn key_of_dir(name: &str) -> Option<u64> {
    u64::from_str_radix(name.strip_prefix("job-")?, 16).ok()
}

/// Write `bytes` to `path` atomically: tmp file, fsync, rename. The
/// status sidecar and the meta image go through this so a crash leaves
/// either the whole record or nothing — never a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Walk a journal file's length-framed records and return the first
/// `limit` complete frames (all of them under `usize::MAX`). Stops at
/// the first incomplete frame — a torn tail from a crash mid-append is
/// simply not part of the snapshot, exactly as `Journal::open` will
/// truncate it on resume.
pub fn read_frames(path: &Path, limit: usize) -> std::io::Result<Vec<Vec<u8>>> {
    let mut buf = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut frames = Vec::new();
    let mut at = 0usize;
    while frames.len() < limit {
        let Some(len_bytes) = buf.get(at..at + 4) else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let Some(rec) = buf.get(at + 4..at + 4 + len) else {
            break;
        };
        frames.push(rec.to_vec());
        at += 4 + len;
    }
    Ok(frames)
}

/// Count the complete frames currently in a journal file.
pub fn count_frames(path: &Path) -> usize {
    read_frames(path, usize::MAX).map(|v| v.len()).unwrap_or(0)
}

/// One subscribed client stream: a bounded frame queue plus drop
/// accounting. The queue is the daemon's entire memory commitment to
/// a slow client — when it is full, new frames are *dropped* (counted,
/// later coalesced into a [`FrontierSummary`]) rather than buffered,
/// so a stalled reader can never grow daemon memory unboundedly.
pub struct Subscriber {
    state: Mutex<SubState>,
    cond: Condvar,
    /// Queue capacity in frames.
    cap: usize,
}

struct SubState {
    /// Buffered frames, each tagged with how many frames were dropped
    /// immediately *before* it — the marker rides with the next frame
    /// that fit, so summaries land at the position of the gap.
    queue: VecDeque<(Vec<u8>, u64)>,
    /// Drops not yet attached to a queued frame.
    pending_dropped: u64,
    /// The publisher delivered the terminal status frame.
    closed: bool,
    /// The session died; the publisher prunes this entry.
    gone: bool,
}

/// What a session's queue pop yields.
pub enum StreamItem {
    /// A journal (or status) frame to forward verbatim, preceded by a
    /// summary of `dropped` frames if any were lost to backpressure.
    Frame {
        /// The record bytes to forward.
        record: Vec<u8>,
        /// Frames dropped before this one (0 = none; emit a
        /// [`FrontierSummary`] first when positive).
        dropped: u64,
    },
    /// The publisher finished and the queue is drained.
    Closed,
}

impl Subscriber {
    fn new(cap: usize) -> Self {
        Subscriber {
            state: Mutex::new(SubState {
                queue: VecDeque::new(),
                pending_dropped: 0,
                closed: false,
                gone: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Block until a frame is available or the publisher closes.
    pub fn next(&self) -> StreamItem {
        let mut st = self.state.lock().expect("subscriber lock");
        loop {
            if let Some((record, dropped)) = st.queue.pop_front() {
                return StreamItem::Frame { record, dropped };
            }
            if st.closed {
                return StreamItem::Closed;
            }
            st = self.cond.wait(st).expect("subscriber lock");
        }
    }

    /// Mark this subscriber dead (its session hit a write error or a
    /// stall timeout); the publisher drops it on its next fan-out.
    pub fn mark_gone(&self) {
        self.state.lock().expect("subscriber lock").gone = true;
    }
}

struct PubInner {
    subs: Vec<Arc<Subscriber>>,
    /// Complete frames durably in the journal file and accounted here
    /// (file prefix == accounted frames; see module docs).
    records: u64,
    /// Last commit frontier seen in the stream.
    frontier: u64,
    /// Terminal status frame, once the job finished.
    finished: Option<Vec<u8>>,
}

/// Fans the job's journal stream out to its subscribers. One publisher
/// per job, alive from admission to terminal status; the job thread
/// feeds it from the journal's frame observer.
pub struct Publisher {
    key: u64,
    inner: Mutex<PubInner>,
}

impl Publisher {
    /// A publisher for job `key` whose journal file already holds
    /// `base_records` complete frames (0 for a fresh job).
    pub fn new(key: u64, base_records: u64) -> Self {
        Publisher {
            key,
            inner: Mutex::new(PubInner {
                subs: Vec::new(),
                records: base_records,
                frontier: 0,
                finished: None,
            }),
        }
    }

    /// Reconcile the accounted record count after `Journal::open`
    /// truncated a torn or corrupt tail (never grows the count).
    pub fn reconcile_records(&self, durable: u64) {
        let mut inner = self.inner.lock().expect("publisher lock");
        if durable < inner.records {
            inner.records = durable;
        }
    }

    /// Fan one durable journal record out to every live subscriber.
    /// Full queues drop the frame and count it; dead sessions are
    /// pruned here.
    pub fn publish(&self, record: &[u8]) {
        let mut inner = self.inner.lock().expect("publisher lock");
        inner.records += 1;
        if let Some(fr) = commit_frontier(record) {
            inner.frontier = inner.frontier.max(fr);
        }
        inner.subs.retain(|sub| {
            let mut st = sub.state.lock().expect("subscriber lock");
            if st.gone {
                return false;
            }
            if st.queue.len() >= sub.cap {
                st.pending_dropped += 1;
            } else {
                let dropped = std::mem::take(&mut st.pending_dropped);
                st.queue.push_back((record.to_vec(), dropped));
            }
            sub.cond.notify_one();
            true
        });
    }

    /// Deliver the terminal status frame (pushed even into a full
    /// queue — it is the one frame a client must not miss) and close
    /// every subscriber.
    pub fn finish(&self, status: &[u8]) {
        let mut inner = self.inner.lock().expect("publisher lock");
        inner.finished = Some(status.to_vec());
        for sub in &inner.subs {
            let mut st = sub.state.lock().expect("subscriber lock");
            let dropped = std::mem::take(&mut st.pending_dropped);
            st.queue.push_back((status.to_vec(), dropped));
            st.closed = true;
            sub.cond.notify_one();
        }
        inner.subs.clear();
    }

    /// Register a new subscriber. Returns the subscriber, the number of
    /// journal frames the session must replay from the file first (the
    /// catch-up snapshot), and the terminal status frame if the job
    /// already finished.
    pub fn subscribe(&self, cap: usize) -> (Arc<Subscriber>, u64, Option<Vec<u8>>) {
        let mut inner = self.inner.lock().expect("publisher lock");
        let snapshot = inner.records;
        let finished = inner.finished.clone();
        let sub = Arc::new(Subscriber::new(cap));
        if finished.is_none() {
            inner.subs.push(Arc::clone(&sub));
        }
        (sub, snapshot, finished)
    }

    /// The summary record standing in for frames this client lost to
    /// backpressure: the durable frontier and record count, plus how
    /// much detail was skipped.
    pub fn summary(&self, dropped: u64) -> FrontierSummary {
        let inner = self.inner.lock().expect("publisher lock");
        FrontierSummary {
            key: self.key,
            frontier: inner.frontier,
            records: inner.records,
            dropped,
        }
    }

    /// Live subscriber count (tests assert pruning).
    pub fn subscribers(&self) -> usize {
        self.inner.lock().expect("publisher lock").subs.len()
    }
}

/// One job, from admission to terminal status.
pub struct Job {
    /// The submission, bit-for-bit (its encoding is the meta image).
    pub spec: JobSpec,
    /// Durable state directory (`job-<key>` under the daemon's state
    /// dir).
    pub dir: PathBuf,
    /// Lifecycle state.
    pub state: Mutex<JobState>,
    /// Terminal status, once reached.
    pub status: Mutex<Option<JobStatusFrame>>,
    /// The journal fan-out.
    pub publisher: Publisher,
    /// Cooperative stop flag: set by drain, checked by the driver at
    /// every stage boundary.
    pub stop: Arc<AtomicBool>,
}

impl Job {
    /// A job in `Queued` state whose journal file (if any) holds
    /// `base_records` frames.
    pub fn new(spec: JobSpec, dir: PathBuf, base_records: u64) -> Self {
        let key = spec.key;
        Job {
            spec,
            dir,
            state: Mutex::new(JobState::Queued),
            status: Mutex::new(None),
            publisher: Publisher::new(key, base_records),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Current lifecycle state.
    pub fn current_state(&self) -> JobState {
        *self.state.lock().expect("job state lock")
    }

    /// Move to `state`.
    pub fn set_state(&self, state: JobState) {
        *self.state.lock().expect("job state lock") = state;
    }

    /// Path of the job's journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Path of the job's status sidecar.
    pub fn status_path(&self) -> PathBuf {
        self.dir.join(STATUS_FILE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_are_key_prefixes() {
        assert_eq!(tenant_of(0xAAAA_0001_0000_0007), 0xAAAA_0001);
        assert_eq!(tenant_of(7), 0);
    }

    #[test]
    fn job_dir_names_round_trip() {
        let dir = job_dir(Path::new("/tmp/x"), 0xdead_beef);
        let name = dir.file_name().unwrap().to_str().unwrap().to_string();
        assert_eq!(key_of_dir(&name), Some(0xdead_beef));
        assert_eq!(key_of_dir("not-a-job"), None);
    }

    #[test]
    fn full_queues_drop_and_count_instead_of_growing() {
        let p = Publisher::new(1, 0);
        let (sub, snapshot, finished) = p.subscribe(2);
        assert_eq!(snapshot, 0);
        assert!(finished.is_none());
        for k in 0..5u8 {
            p.publish(&[k; 8]);
        }
        // Two buffered, three dropped — the queue never exceeded cap.
        match sub.next() {
            StreamItem::Frame { record, dropped } => {
                assert_eq!(record, vec![0u8; 8]);
                assert_eq!(dropped, 0);
            }
            StreamItem::Closed => panic!("expected a frame"),
        }
        match sub.next() {
            StreamItem::Frame { dropped, .. } => assert_eq!(dropped, 0),
            StreamItem::Closed => panic!("expected a frame"),
        }
        p.publish(&[9; 8]);
        match sub.next() {
            StreamItem::Frame { record, dropped } => {
                assert_eq!(record, vec![9u8; 8]);
                assert_eq!(dropped, 3, "the three overflow frames were counted");
            }
            StreamItem::Closed => panic!("expected a frame"),
        }
        let s = p.summary(3);
        assert_eq!(s.records, 6);
        assert_eq!(s.dropped, 3);
    }

    #[test]
    fn finish_reaches_even_a_full_queue_and_closes() {
        let p = Publisher::new(1, 0);
        let (sub, _, _) = p.subscribe(1);
        p.publish(b"frame-a");
        p.publish(b"frame-b"); // dropped: queue full
        p.finish(b"status");
        match sub.next() {
            StreamItem::Frame { record, .. } => assert_eq!(record, b"frame-a"),
            StreamItem::Closed => panic!("expected the buffered frame"),
        }
        match sub.next() {
            StreamItem::Frame { record, dropped } => {
                assert_eq!(record, b"status");
                assert_eq!(dropped, 1);
            }
            StreamItem::Closed => panic!("expected the status frame"),
        }
        assert!(matches!(sub.next(), StreamItem::Closed));
        assert_eq!(p.subscribers(), 0);
    }

    #[test]
    fn gone_subscribers_are_pruned_on_publish() {
        let p = Publisher::new(1, 0);
        let (sub, _, _) = p.subscribe(4);
        sub.mark_gone();
        p.publish(b"x");
        assert_eq!(p.subscribers(), 0);
    }
}
