//! # rlrpd-serve — a crash-tolerant multi-tenant job daemon
//!
//! `rlrpd serve` turns the single-shot CLI into a long-lived service:
//! many concurrent clients submit compiled loop programs over the
//! existing length-framed protocol, and the daemon multiplexes their
//! speculative runs over one process — one shared worker pool, one
//! process-wide shadow-budget pool, one journal directory.
//!
//! The protocol *is* the journal format: every frame the daemon
//! streams to a watching client is the exact record it just fsynced
//! to that job's crash journal. "Follow the job" and "replicate the
//! journal" are the same operation, which is why a client that
//! reconnects after a daemon crash can be caught up from the file
//! byte-for-byte.
//!
//! Robustness properties, each deterministic enough to assert in CI:
//!
//! - **Admission control** — a process-wide [`rlrpd_shadow::BudgetPool`]
//!   is carved into per-job leases at dispatch; concurrently granted
//!   budgets never sum above the pool, submissions that could never
//!   fit are rejected with a typed reason, and dispatch round-robins
//!   across tenants (the upper 32 bits of the job key).
//! - **Backpressure** — each subscribed client gets a bounded frame
//!   queue; overflow frames are dropped and coalesced into
//!   [`rlrpd_core::remote::FrontierSummary`] records, and a client
//!   whose socket stalls past the write timeout is disconnected.
//!   Job durability is never coupled to client liveness.
//! - **Graceful drain** — SIGTERM stops admission, sets every running
//!   job's cooperative stop flag, lets runs pause at a durable commit
//!   point, and exits 0 with zero torn journals.
//! - **Crash recovery** — a restart with `--resume` scans the state
//!   directory and resumes every incomplete job from its journal;
//!   a SIGKILL mid-fleet costs at most the uncommitted suffix of each
//!   run, and every job still finishes byte-identical to sequential.
//!
//! [`daemon`] hosts the server ([`Daemon`] in-process for tests,
//! [`serve_entry`] as the CLI process body); [`client`] implements
//! `rlrpd submit` / `rlrpd status` with exponential backoff and
//! idempotent resubmission keyed by the client-chosen job key.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod jobs;

pub use client::{query_status, submit, ClientError, ClientOptions, SubmitOutcome};
pub use daemon::{serve_entry, Daemon, DaemonHandle, ServeConfig};
pub use jobs::{tenant_of, Job, Publisher, Subscriber};
