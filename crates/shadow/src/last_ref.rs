//! The last-reference table for cross-window dependence detection.
//!
//! Sliding-window DDG extraction (paper Section 3) analyzes one window
//! of iterations at a time; a flow dependence whose source iteration was
//! already committed in an earlier window would otherwise be lost. The
//! [`LastRefTable`] maintains, per element, the *last valid (committed)
//! writing iteration*, so a later window's exposed read can be matched
//! to its out-of-window producer.

use crate::hasher::FxBuildHasher;
use std::collections::HashMap;

/// Element → last committed writing iteration.
#[derive(Clone, Debug, Default)]
pub struct LastRefTable {
    last_write: HashMap<usize, u32, FxBuildHasher>,
}

impl LastRefTable {
    /// An empty table (no committed writes yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that committed iteration `iter` wrote `elem`. Keeps the
    /// maximum iteration per element; commits arrive in window order so
    /// later calls dominate, but out-of-order merges are tolerated.
    pub fn record_write(&mut self, elem: usize, iter: u32) {
        self.last_write
            .entry(elem)
            .and_modify(|cur| *cur = (*cur).max(iter))
            .or_insert(iter);
    }

    /// The last committed iteration that wrote `elem`, if any.
    pub fn last_writer(&self, elem: usize) -> Option<u32> {
        self.last_write.get(&elem).copied()
    }

    /// Number of elements with a recorded writer.
    pub fn len(&self) -> usize {
        self.last_write.len()
    }

    /// True when no writes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.last_write.is_empty()
    }

    /// Forget everything (new loop instantiation).
    pub fn clear(&mut self) {
        self.last_write.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_writes_dominate() {
        let mut t = LastRefTable::new();
        t.record_write(3, 5);
        t.record_write(3, 9);
        assert_eq!(t.last_writer(3), Some(9));
    }

    #[test]
    fn out_of_order_merge_keeps_maximum() {
        let mut t = LastRefTable::new();
        t.record_write(3, 9);
        t.record_write(3, 5);
        assert_eq!(t.last_writer(3), Some(9));
    }

    #[test]
    fn untouched_elements_have_no_writer() {
        let t = LastRefTable::new();
        assert_eq!(t.last_writer(0), None);
        assert!(t.is_empty());
    }

    #[test]
    fn clear_forgets_state() {
        let mut t = LastRefTable::new();
        t.record_write(1, 1);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.last_writer(1), None);
    }
}
