//! Runtime-selected shadow representation.
//!
//! The driver picks dense or sparse per tested array: dense when the
//! array is small relative to the expected touch count (TRACK's NUSED),
//! sparse for huge, sparsely touched arrays (SPICE's VALUE workspace).
//! [`Shadow`] dispatches to either with a uniform API so the rest of the
//! engine never branches on representation.

use crate::dense::DenseShadow;
use crate::marks::Mark;
use crate::packed::PackedShadow;
use crate::select::ShadowChoice;
use crate::sparse::SparseShadow;

/// A per-processor shadow of one array under test, dense or sparse.
#[derive(Clone, Debug)]
pub enum Shadow {
    /// One mark byte per element plus touched list.
    Dense(DenseShadow),
    /// Bit-packed planes, 3 bits per element.
    Packed(PackedShadow),
    /// Hash map from element to mark byte.
    Sparse(SparseShadow),
}

impl Shadow {
    /// A dense shadow for `size` elements.
    pub fn dense(size: usize) -> Self {
        Shadow::Dense(DenseShadow::new(size))
    }

    /// A bit-packed dense shadow for `size` elements.
    pub fn packed(size: usize) -> Self {
        Shadow::Packed(PackedShadow::new(size))
    }

    /// A sparse shadow (unbounded index space).
    pub fn sparse() -> Self {
        Shadow::Sparse(SparseShadow::new())
    }

    /// A fresh shadow of the representation `choice` picked for an
    /// array of `size` elements.
    pub fn for_choice(choice: ShadowChoice, size: usize) -> Self {
        match choice {
            ShadowChoice::Dense => Shadow::dense(size),
            ShadowChoice::Packed => Shadow::packed(size),
            ShadowChoice::Sparse => Shadow::sparse(),
        }
    }

    /// Which representation this shadow currently is.
    pub fn choice(&self) -> ShadowChoice {
        match self {
            Shadow::Dense(_) => ShadowChoice::Dense,
            Shadow::Packed(_) => ShadowChoice::Packed,
            Shadow::Sparse(_) => ShadowChoice::Sparse,
        }
    }

    /// Record an ordinary read of `elem`.
    #[inline]
    pub fn on_read(&mut self, elem: usize) {
        match self {
            Shadow::Dense(s) => s.on_read(elem),
            Shadow::Packed(s) => s.on_read(elem),
            Shadow::Sparse(s) => s.on_read(elem),
        }
    }

    /// Record an ordinary write of `elem`.
    #[inline]
    pub fn on_write(&mut self, elem: usize) {
        match self {
            Shadow::Dense(s) => s.on_write(elem),
            Shadow::Packed(s) => s.on_write(elem),
            Shadow::Sparse(s) => s.on_write(elem),
        }
    }

    /// Record a reduction update of `elem`.
    #[inline]
    pub fn on_reduce(&mut self, elem: usize) {
        match self {
            Shadow::Dense(s) => s.on_reduce(elem),
            Shadow::Packed(s) => s.on_reduce(elem),
            Shadow::Sparse(s) => s.on_reduce(elem),
        }
    }

    /// Convert `elem`'s reduction marks to ordinary marks.
    #[inline]
    pub fn materialize(&mut self, elem: usize) {
        match self {
            Shadow::Dense(s) => s.materialize(elem),
            Shadow::Packed(s) => s.materialize(elem),
            Shadow::Sparse(s) => s.materialize(elem),
        }
    }

    /// Current mark of `elem`.
    #[inline]
    pub fn mark(&self, elem: usize) -> Mark {
        match self {
            Shadow::Dense(s) => s.mark(elem),
            Shadow::Packed(s) => s.mark(elem),
            Shadow::Sparse(s) => s.mark(elem),
        }
    }

    /// Distinct elements referenced with their marks. Order is
    /// first-touch for dense, arbitrary for sparse; analysis must not
    /// depend on it.
    pub fn touched(&self) -> Box<dyn Iterator<Item = (usize, Mark)> + '_> {
        match self {
            Shadow::Dense(s) => Box::new(s.touched()),
            Shadow::Packed(s) => Box::new(s.touched()),
            Shadow::Sparse(s) => Box::new(s.touched()),
        }
    }

    /// Number of distinct elements referenced.
    pub fn num_touched(&self) -> usize {
        match self {
            Shadow::Dense(s) => s.num_touched(),
            Shadow::Packed(s) => s.num_touched(),
            Shadow::Sparse(s) => s.num_touched(),
        }
    }

    /// Re-initialize for the next stage.
    pub fn clear(&mut self) {
        match self {
            Shadow::Dense(s) => s.clear(),
            Shadow::Packed(s) => s.clear(),
            Shadow::Sparse(s) => s.clear(),
        }
    }

    /// Install a previously observed mark verbatim (representation
    /// migration and replay). `mark` must be touched and `elem` must
    /// currently be untouched.
    #[inline]
    pub fn restore(&mut self, elem: usize, mark: Mark) {
        match self {
            Shadow::Dense(s) => s.restore(elem, mark),
            Shadow::Packed(s) => s.restore(elem, mark),
            Shadow::Sparse(s) => s.restore(elem, mark),
        }
    }

    /// Shadow memory held, in bytes (sparse is a capacity-based
    /// estimate) — what this shadow reports through the footprint
    /// accountant.
    pub fn shadow_bytes(&self) -> u64 {
        match self {
            Shadow::Dense(s) => s.shadow_bytes() as u64,
            Shadow::Packed(s) => s.shadow_bytes() as u64,
            Shadow::Sparse(s) => s.shadow_bytes() as u64,
        }
    }

    /// A copy of this shadow in representation `choice` over `size`
    /// elements, carrying every live mark across.
    ///
    /// **Byte-identity guarantee:** the migrated shadow answers every
    /// query identically — `mark(e)` for all `e`, `num_touched()`, and
    /// the touched *set* (touched *order* may differ; analysis must not
    /// depend on it, per [`Shadow::touched`]'s contract). The proptest
    /// suite holds Dense↔Packed↔Sparse round-trips to this contract
    /// for arbitrary mark sequences.
    pub fn migrated(&self, choice: ShadowChoice, size: usize) -> Shadow {
        let mut out = Shadow::for_choice(choice, size);
        for (e, m) in self.touched() {
            out.restore(e, m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(size: usize) -> [Shadow; 3] {
        [Shadow::dense(size), Shadow::packed(size), Shadow::sparse()]
    }

    #[test]
    fn dense_and_sparse_agree_on_marking_semantics() {
        for mut s in both(16) {
            s.on_read(3);
            s.on_write(3);
            s.on_write(5);
            s.on_read(5);
            s.on_reduce(7);
            assert!(s.mark(3).is_exposed_read() && s.mark(3).is_written());
            assert!(s.mark(5).is_written() && !s.mark(5).is_exposed_read());
            assert!(s.mark(7).is_reduction_only());
            assert_eq!(s.num_touched(), 3);
            s.clear();
            assert_eq!(s.num_touched(), 0);
        }
    }

    #[test]
    fn touched_sets_agree_between_representations() {
        let mut d = Shadow::dense(32);
        let mut p = Shadow::sparse();
        let refs = [(3usize, 'r'), (9, 'w'), (3, 'w'), (21, 'r'), (9, 'r')];
        for (e, k) in refs {
            match k {
                'r' => {
                    d.on_read(e);
                    p.on_read(e);
                }
                _ => {
                    d.on_write(e);
                    p.on_write(e);
                }
            }
        }
        let mut dt: Vec<(usize, u8)> = d.touched().map(|(e, m)| (e, m.0)).collect();
        let mut pt: Vec<(usize, u8)> = p.touched().map(|(e, m)| (e, m.0)).collect();
        dt.sort_unstable();
        pt.sort_unstable();
        assert_eq!(dt, pt);
    }
}
