//! A fast, non-cryptographic hasher for sparse shadow structures.
//!
//! Shadow lookups sit on the marking fast path of every speculative
//! memory reference, and keys are array indices (small integers), for
//! which SipHash is needlessly slow. This is the Fx multiply-rotate
//! scheme (as used by rustc); implemented locally because the approved
//! offline dependency list does not include `rustc-hash`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher specialized for integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

/// `BuildHasher` for [`FxHasher`] — plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000usize {
            let mut h = FxHasher::default();
            h.write_usize(i);
            seen.insert(h.finish());
        }
        assert_eq!(
            seen.len(),
            10_000,
            "no collisions on small consecutive keys"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_usize(42);
        b.write_usize(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn usable_as_hashmap_hasher() {
        let mut m: HashMap<usize, u8, FxBuildHasher> = HashMap::default();
        for i in 0..100 {
            m.insert(i, (i % 256) as u8);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 7);
    }

    #[test]
    fn byte_stream_and_word_paths_agree_on_word_sized_input() {
        let mut a = FxHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = FxHasher::default();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
