//! Static shadow-structure selection.
//!
//! The paper's shadow-structure optimization makes marking cost
//! proportional to the number of *touched* elements rather than the
//! array size — but only if the right structure is picked: a dense byte
//! shadow is fastest per mark yet allocates (and, bit-packed, clears)
//! the whole array; a sparse hash shadow allocates per touch but pays
//! hashing on every mark. The run-time pass historically picked by
//! array size alone; with the symbolic dependence analysis predicting
//! per-array **touch density** ahead of the run, the choice can be made
//! statically per loop — and re-made at commit points from *observed*
//! density (the ROADMAP "adaptive shadow selection under memory
//! budgets" item).
//!
//! [`choose`] is a pure function of `(size, predicted_touched, budget)`
//! so the decision is auditable and testable in isolation; the language
//! crate maps the result onto the runtime's shadow kinds. The optional
//! per-array budget clamps the density pick down the
//! dense→packed→sparse ladder when the picked structure alone would
//! exceed it ([`clamp_to_budget`]); sparse is the floor — its footprint
//! follows touches, not `n`, so it is always admissible.

/// Which shadow structure to instrument an array with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowChoice {
    /// One mark byte per element ([`crate::DenseShadow`]): fastest
    /// marks, O(size) allocation — right when most elements are hit.
    Dense,
    /// Bit-packed planes ([`crate::PackedShadow`]): ~4× smaller than
    /// the byte shadow, slightly dearer marks — right for big arrays
    /// with moderate density where footprint dominates.
    Packed,
    /// Hash-based ([`crate::SparseShadow`]): allocation proportional to
    /// touches — right when a large array is touched sparsely.
    Sparse,
}

impl ShadowChoice {
    /// Short lowercase name for reports and lints.
    pub fn describe(self) -> &'static str {
        match self {
            ShadowChoice::Dense => "dense",
            ShadowChoice::Packed => "packed",
            ShadowChoice::Sparse => "sparse",
        }
    }

    /// The next-smaller representation on the degradation ladder, or
    /// `None` at the sparse floor.
    pub fn down_tier(self) -> Option<ShadowChoice> {
        match self {
            ShadowChoice::Dense => Some(ShadowChoice::Packed),
            ShadowChoice::Packed => Some(ShadowChoice::Sparse),
            ShadowChoice::Sparse => None,
        }
    }
}

/// Below this size a dense byte shadow is always cheapest: the whole
/// shadow fits in a couple of cache lines, so density games cannot win.
pub const SMALL_ARRAY: usize = 1 << 10;

/// Touch density at or below which hashing beats allocating the array:
/// fewer than 1 in 64 elements marked.
pub const SPARSE_DENSITY: f64 = 1.0 / 64.0;

/// Touch density below which the bit-packed shadow's 4× footprint
/// saving outweighs its dearer marks.
pub const PACKED_DENSITY: f64 = 1.0 / 4.0;

/// Estimated bytes per occupied sparse-shadow entry: an 8-byte key, a
/// mark byte, and hash-table control/padding overhead.
pub const SPARSE_ENTRY_BYTES: u64 = 16;

/// Bytes each touched element costs in a dense/packed touched list
/// (`u32` per first touch).
pub const TOUCH_LIST_BYTES: u64 = 4;

/// Predicted per-processor footprint, in bytes, of one shadow of
/// `choice` over an array of `size` elements with `touched` distinct
/// references per stage. Pure; mirrors what the live structures report
/// through the accountant (dense: a mark byte per element; packed:
/// three bit-planes; sparse: hash entries), so the budget clamp and the
/// runtime ladder agree on which representations fit.
pub fn footprint(choice: ShadowChoice, size: usize, touched: usize) -> u64 {
    // Distinct touches cannot exceed the array (overcounted predictions
    // clamp, mirroring `choose`'s density clamp).
    let touched = touched.min(size) as u64;
    match choice {
        ShadowChoice::Dense => size as u64 + touched * TOUCH_LIST_BYTES,
        ShadowChoice::Packed => size.div_ceil(64) as u64 * 24 + touched * TOUCH_LIST_BYTES,
        ShadowChoice::Sparse => touched * SPARSE_ENTRY_BYTES,
    }
}

/// Walk `choice` down the dense→packed→sparse ladder until its
/// predicted [`footprint`] fits `budget` (no-op when `budget` is
/// `None`). Sparse is the floor: it is returned even when its
/// touch-proportional footprint exceeds the budget, because no
/// representation can do better and the runtime's window-shrink /
/// sequential-fallback rungs take over from there.
pub fn clamp_to_budget(
    choice: ShadowChoice,
    size: usize,
    touched: usize,
    budget: Option<u64>,
) -> ShadowChoice {
    let Some(cap) = budget else { return choice };
    let mut c = choice;
    while footprint(c, size, touched) > cap {
        match c.down_tier() {
            Some(next) => c = next,
            None => break,
        }
    }
    c
}

/// Pick the shadow structure for an array of `size` elements of which
/// the static analysis predicts `touched` distinct ones are referenced
/// per speculative stage, under an optional per-array byte `budget`
/// (see [`clamp_to_budget`]). Pure and total: callers may feed
/// `touched > size` (clamped) or `size == 0` (dense).
pub fn choose(size: usize, touched: usize, budget: Option<u64>) -> ShadowChoice {
    let unclamped = if size < SMALL_ARRAY {
        ShadowChoice::Dense
    } else {
        let density = touched.min(size) as f64 / size as f64;
        if density <= SPARSE_DENSITY {
            ShadowChoice::Sparse
        } else if density <= PACKED_DENSITY {
            ShadowChoice::Packed
        } else {
            ShadowChoice::Dense
        }
    };
    clamp_to_budget(unclamped, size, touched, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arrays_are_always_dense() {
        assert_eq!(choose(8, 1, None), ShadowChoice::Dense);
        assert_eq!(choose(1023, 0, None), ShadowChoice::Dense);
        assert_eq!(choose(0, 0, None), ShadowChoice::Dense);
    }

    #[test]
    fn sparse_touches_on_big_arrays_hash() {
        assert_eq!(choose(1 << 20, 100, None), ShadowChoice::Sparse);
        assert_eq!(choose(1 << 20, (1 << 20) / 64, None), ShadowChoice::Sparse);
    }

    #[test]
    fn moderate_density_bit_packs() {
        assert_eq!(choose(1 << 20, 1 << 17, None), ShadowChoice::Packed);
        assert_eq!(choose(4096, 512, None), ShadowChoice::Packed);
    }

    #[test]
    fn dense_touches_stay_dense() {
        assert_eq!(choose(1 << 20, 1 << 19, None), ShadowChoice::Dense);
        assert_eq!(choose(4096, 4096, None), ShadowChoice::Dense);
    }

    #[test]
    fn overcounted_touches_clamp() {
        assert_eq!(choose(4096, usize::MAX, None), ShadowChoice::Dense);
    }

    #[test]
    fn boundaries_are_stable() {
        let size = 1 << 12;
        // Exactly at the sparse threshold: still sparse (<=).
        assert_eq!(choose(size, size / 64, None), ShadowChoice::Sparse);
        assert_eq!(choose(size, size / 64 + 1, None), ShadowChoice::Packed);
        assert_eq!(choose(size, size / 4, None), ShadowChoice::Packed);
        assert_eq!(choose(size, size / 4 + 1, None), ShadowChoice::Dense);
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        for (size, touched) in [(8, 1), (1 << 20, 100), (4096, 512), (4096, 4096)] {
            assert_eq!(
                choose(size, touched, None),
                choose(size, touched, Some(u64::MAX))
            );
        }
    }

    #[test]
    fn dense_pick_over_budget_down_tiers() {
        // A dense-density array whose byte shadow alone exceeds the
        // budget must drop to packed, and then to sparse.
        let size = 1 << 20;
        let touched = size / 2;
        assert_eq!(choose(size, touched, None), ShadowChoice::Dense);
        let packed_fits = footprint(ShadowChoice::Packed, size, touched);
        assert_eq!(
            choose(size, touched, Some(packed_fits)),
            ShadowChoice::Packed
        );
        // Below packed's footprint the only remaining tier is sparse.
        assert_eq!(
            choose(size, touched, Some(packed_fits - 1)),
            ShadowChoice::Sparse
        );
    }

    #[test]
    fn sparse_is_the_floor_even_over_budget() {
        // Nothing smaller exists: a starvation budget still yields
        // sparse (the runtime ladder handles the rest).
        assert_eq!(choose(1 << 20, 1 << 19, Some(1)), ShadowChoice::Sparse);
        assert_eq!(
            clamp_to_budget(ShadowChoice::Sparse, 1 << 20, 1 << 19, Some(1)),
            ShadowChoice::Sparse
        );
    }

    #[test]
    fn small_arrays_also_respect_the_budget() {
        // The small-array fast path is a performance default, not an
        // exemption from governance.
        assert_eq!(choose(512, 4, Some(64)), ShadowChoice::Sparse);
    }

    #[test]
    fn footprint_orders_the_ladder() {
        let (size, touched) = (1 << 20, 1 << 14);
        let d = footprint(ShadowChoice::Dense, size, touched);
        let p = footprint(ShadowChoice::Packed, size, touched);
        let s = footprint(ShadowChoice::Sparse, size, touched);
        assert!(d > p && p > s, "{d} > {p} > {s}");
    }
}
