//! Static shadow-structure selection.
//!
//! The paper's shadow-structure optimization makes marking cost
//! proportional to the number of *touched* elements rather than the
//! array size — but only if the right structure is picked: a dense byte
//! shadow is fastest per mark yet allocates (and, bit-packed, clears)
//! the whole array; a sparse hash shadow allocates per touch but pays
//! hashing on every mark. The run-time pass historically picked by
//! array size alone; with the symbolic dependence analysis predicting
//! per-array **touch density** ahead of the run, the choice can be made
//! statically per loop (the first concrete step of the ROADMAP
//! "adaptive shadow selection under memory budgets" item).
//!
//! [`choose`] is a pure function of `(size, predicted_touched)` so the
//! decision is auditable and testable in isolation; the language crate
//! maps the result onto the runtime's shadow kinds.

/// Which shadow structure to instrument an array with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowChoice {
    /// One mark byte per element ([`crate::DenseShadow`]): fastest
    /// marks, O(size) allocation — right when most elements are hit.
    Dense,
    /// Bit-packed planes ([`crate::PackedShadow`]): ~4× smaller than
    /// the byte shadow, slightly dearer marks — right for big arrays
    /// with moderate density where footprint dominates.
    Packed,
    /// Hash-based ([`crate::SparseShadow`]): allocation proportional to
    /// touches — right when a large array is touched sparsely.
    Sparse,
}

impl ShadowChoice {
    /// Short lowercase name for reports and lints.
    pub fn describe(self) -> &'static str {
        match self {
            ShadowChoice::Dense => "dense",
            ShadowChoice::Packed => "packed",
            ShadowChoice::Sparse => "sparse",
        }
    }
}

/// Below this size a dense byte shadow is always cheapest: the whole
/// shadow fits in a couple of cache lines, so density games cannot win.
pub const SMALL_ARRAY: usize = 1 << 10;

/// Touch density at or below which hashing beats allocating the array:
/// fewer than 1 in 64 elements marked.
pub const SPARSE_DENSITY: f64 = 1.0 / 64.0;

/// Touch density below which the bit-packed shadow's 4× footprint
/// saving outweighs its dearer marks.
pub const PACKED_DENSITY: f64 = 1.0 / 4.0;

/// Pick the shadow structure for an array of `size` elements of which
/// the static analysis predicts `touched` distinct ones are referenced
/// per speculative stage. Pure and total: callers may feed `touched >
/// size` (clamped) or `size == 0` (dense).
pub fn choose(size: usize, touched: usize) -> ShadowChoice {
    if size < SMALL_ARRAY {
        return ShadowChoice::Dense;
    }
    let density = touched.min(size) as f64 / size as f64;
    if density <= SPARSE_DENSITY {
        ShadowChoice::Sparse
    } else if density <= PACKED_DENSITY {
        ShadowChoice::Packed
    } else {
        ShadowChoice::Dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arrays_are_always_dense() {
        assert_eq!(choose(8, 1), ShadowChoice::Dense);
        assert_eq!(choose(1023, 0), ShadowChoice::Dense);
        assert_eq!(choose(0, 0), ShadowChoice::Dense);
    }

    #[test]
    fn sparse_touches_on_big_arrays_hash() {
        assert_eq!(choose(1 << 20, 100), ShadowChoice::Sparse);
        assert_eq!(choose(1 << 20, (1 << 20) / 64), ShadowChoice::Sparse);
    }

    #[test]
    fn moderate_density_bit_packs() {
        assert_eq!(choose(1 << 20, 1 << 17), ShadowChoice::Packed);
        assert_eq!(choose(4096, 512), ShadowChoice::Packed);
    }

    #[test]
    fn dense_touches_stay_dense() {
        assert_eq!(choose(1 << 20, 1 << 19), ShadowChoice::Dense);
        assert_eq!(choose(4096, 4096), ShadowChoice::Dense);
    }

    #[test]
    fn overcounted_touches_clamp() {
        assert_eq!(choose(4096, usize::MAX), ShadowChoice::Dense);
    }

    #[test]
    fn boundaries_are_stable() {
        let size = 1 << 12;
        // Exactly at the sparse threshold: still sparse (<=).
        assert_eq!(choose(size, size / 64), ShadowChoice::Sparse);
        assert_eq!(choose(size, size / 64 + 1), ShadowChoice::Packed);
        assert_eq!(choose(size, size / 4), ShadowChoice::Packed);
        assert_eq!(choose(size, size / 4 + 1), ShadowChoice::Dense);
    }
}
