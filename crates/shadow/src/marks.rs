//! The per-element, per-processor mark byte and its transition rules.
//!
//! The paper uses two bits per element — Read and Write — with the rule
//! that on a processor, *a read only sets the read bit if no write has
//! been seen yet*. A set read bit therefore means an **exposed read**:
//! the processor consumed a value it did not produce, which (a) forces
//! copy-in from shared storage and (b) is the only possible sink of a
//! cross-processor flow dependence. We add a third bit for speculative
//! reduction validation (tested "in a similar manner", per the paper's
//! footnote).
//!
//! Transition rules, applied by [`Mark`] methods and never violated:
//!
//! * read: sets [`Mark::EXPOSED_READ`] unless [`Mark::WRITE`] already set;
//! * write: sets [`Mark::WRITE`];
//! * reduce: sets [`Mark::REDUCTION`] — legal only while the element has
//!   no ordinary marks (the caller *materializes* otherwise, see
//!   [`Mark::materialize_reduction`]);
//! * repeated references of the same type never change the byte.
//!
//! A final per-stage mark byte for an element is therefore either
//! `REDUCTION` alone or a subset of `{WRITE, EXPOSED_READ}` — the
//! invariant the analysis phase (in `rlrpd-core`) relies on.

/// A per-element mark byte.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Mark(pub u8);

impl Mark {
    /// The element was written by this processor this stage.
    pub const WRITE: u8 = 0b001;
    /// The element was read before any write by this processor this
    /// stage (the value was copied in from shared storage).
    pub const EXPOSED_READ: u8 = 0b010;
    /// The element was referenced exclusively through the reduction
    /// operation on this processor this stage.
    pub const REDUCTION: u8 = 0b100;

    /// No reference yet.
    pub const CLEAR: Mark = Mark(0);

    /// Record an ordinary read. Sets the exposed-read bit only when no
    /// write has been observed, per the paper's marking rule.
    #[inline]
    pub fn on_read(&mut self) {
        debug_assert!(
            !self.is_reduction_only() || self.0 == 0,
            "materialize first"
        );
        if self.0 & Mark::WRITE == 0 {
            self.0 |= Mark::EXPOSED_READ;
        }
    }

    /// Record an ordinary write.
    #[inline]
    pub fn on_write(&mut self) {
        debug_assert!(!self.is_reduction_only(), "materialize first");
        self.0 |= Mark::WRITE;
    }

    /// Record a reduction update. Only legal while the element has no
    /// ordinary marks.
    #[inline]
    pub fn on_reduce(&mut self) {
        debug_assert!(
            self.0 & (Mark::WRITE | Mark::EXPOSED_READ) == 0,
            "reduce after ordinary access must go through the ordinary path"
        );
        self.0 |= Mark::REDUCTION;
    }

    /// Convert a reduction-marked element to ordinary marks after the
    /// runtime materialized its value (`private = copy_in(shared) ⊕
    /// accumulated`): the materialization *read shared data* (exposed
    /// read) and *produced a private value* (write).
    #[inline]
    pub fn materialize_reduction(&mut self) {
        debug_assert!(self.is_reduction_only());
        self.0 = Mark::EXPOSED_READ | Mark::WRITE;
    }

    /// True when any reference was recorded.
    #[inline]
    pub fn is_touched(self) -> bool {
        self.0 != 0
    }

    /// True when the element was written (ordinarily) on this processor.
    #[inline]
    pub fn is_written(self) -> bool {
        self.0 & Mark::WRITE != 0
    }

    /// True when the element has an exposed read on this processor.
    #[inline]
    pub fn is_exposed_read(self) -> bool {
        self.0 & Mark::EXPOSED_READ != 0
    }

    /// True when the element was referenced *only* through reductions.
    #[inline]
    pub fn is_reduction_only(self) -> bool {
        self.0 == Mark::REDUCTION
    }

    /// True when the element acts as a dependence *source* for later
    /// blocks: it produced data (ordinary write) or a reduction delta.
    /// An exposed read on a later block after either is a flow violation
    /// (a reduction delta is applied at commit, so reading the shared
    /// value over it would miss it).
    #[inline]
    pub fn is_dependence_source(self) -> bool {
        self.0 & (Mark::WRITE | Mark::REDUCTION) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_before_write_is_exposed() {
        let mut m = Mark::CLEAR;
        m.on_read();
        assert!(m.is_exposed_read());
        assert!(!m.is_written());
    }

    #[test]
    fn read_after_write_is_covered() {
        let mut m = Mark::CLEAR;
        m.on_write();
        m.on_read();
        assert!(
            !m.is_exposed_read(),
            "write-first read must not set the read bit"
        );
        assert!(m.is_written());
    }

    #[test]
    fn exposed_read_survives_later_write() {
        // (Read, Write) pattern: both bits stay set -> not privatizable
        // without copy-in, exactly the paper's Fig. 1 example.
        let mut m = Mark::CLEAR;
        m.on_read();
        m.on_write();
        assert!(m.is_exposed_read());
        assert!(m.is_written());
    }

    #[test]
    fn repeated_references_are_idempotent() {
        let mut m = Mark::CLEAR;
        m.on_read();
        let after_one = m;
        m.on_read();
        m.on_read();
        assert_eq!(m, after_one);

        let mut w = Mark::CLEAR;
        w.on_write();
        let after_w = w;
        w.on_write();
        assert_eq!(w, after_w);
    }

    #[test]
    fn reduction_only_tracks_and_materializes() {
        let mut m = Mark::CLEAR;
        m.on_reduce();
        assert!(m.is_reduction_only());
        assert!(m.is_dependence_source());
        assert!(!m.is_exposed_read());
        m.materialize_reduction();
        assert!(!m.is_reduction_only());
        assert!(m.is_exposed_read());
        assert!(m.is_written());
    }

    #[test]
    fn final_marks_are_reduction_xor_ordinary() {
        // The invariant the analysis relies on: after any legal sequence,
        // a mark is REDUCTION alone or a subset of {WRITE, EXPOSED_READ}.
        let sequences: Vec<Vec<&str>> = vec![
            vec!["r"],
            vec!["w"],
            vec!["r", "w"],
            vec!["w", "r"],
            vec!["red", "red"],
            vec!["red", "mat", "r", "w"],
        ];
        for seq in sequences {
            let mut m = Mark::CLEAR;
            for op in &seq {
                match *op {
                    "r" => m.on_read(),
                    "w" => m.on_write(),
                    "red" => m.on_reduce(),
                    "mat" => m.materialize_reduction(),
                    _ => unreachable!(),
                }
            }
            let red = m.0 & Mark::REDUCTION != 0;
            let ord = m.0 & (Mark::WRITE | Mark::EXPOSED_READ) != 0;
            assert!(!(red && ord), "mixed final mark from {seq:?}");
        }
    }
}
