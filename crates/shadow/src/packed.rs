//! Bit-packed dense shadow: the paper's literal "two bits for Read and
//! Write" layout (plus the reduction bit), four elements per byte pair.
//!
//! [`crate::DenseShadow`] spends a whole byte per element for fast
//! unaligned access; this variant packs marks at 2 bits ×
//! {write, exposed-read} + a separate reduction plane, i.e. ~4× less
//! shadow memory — which mattered on the paper's 4 MB-cache testbed and
//! still matters for cache residency of hot marking loops. The
//! `shadow_ops` bench compares the two.
//!
//! Semantics are bit-for-bit identical to [`crate::marks::Mark`]'s
//! transition rules; a shared test module asserts equivalence against
//! the byte-per-element shadow under random access sequences.

use crate::marks::Mark;

/// Dense shadow storing marks at 3 bits per element across packed
/// planes, with a touched list for O(touched) analysis/re-init.
#[derive(Clone, Debug)]
pub struct PackedShadow {
    /// Plane 0: WRITE bits, one per element.
    write: Vec<u64>,
    /// Plane 1: EXPOSED_READ bits.
    read: Vec<u64>,
    /// Plane 2: REDUCTION bits.
    red: Vec<u64>,
    size: usize,
    touched: Vec<u32>,
}

#[inline]
fn slot(e: usize) -> (usize, u64) {
    (e >> 6, 1u64 << (e & 63))
}

impl PackedShadow {
    /// Shadow for `size` elements, all unmarked.
    pub fn new(size: usize) -> Self {
        assert!(size <= u32::MAX as usize);
        let words = size.div_ceil(64);
        PackedShadow {
            write: vec![0; words],
            read: vec![0; words],
            red: vec![0; words],
            size,
            touched: Vec::new(),
        }
    }

    /// Number of elements shadowed.
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn is_touched(&self, e: usize) -> bool {
        let (w, m) = slot(e);
        (self.write[w] | self.read[w] | self.red[w]) & m != 0
    }

    #[inline]
    fn note_touch(&mut self, e: usize) {
        if !self.is_touched(e) {
            self.touched.push(e as u32);
        }
    }

    /// Record an ordinary read of `e` (exposed unless already written).
    #[inline]
    pub fn on_read(&mut self, e: usize) {
        debug_assert!(e < self.size);
        self.note_touch(e);
        let (w, m) = slot(e);
        if self.write[w] & m == 0 {
            self.read[w] |= m;
        }
    }

    /// Record an ordinary write of `e`.
    #[inline]
    pub fn on_write(&mut self, e: usize) {
        debug_assert!(e < self.size);
        self.note_touch(e);
        let (w, m) = slot(e);
        debug_assert!(self.red[w] & m == 0, "materialize before ordinary access");
        self.write[w] |= m;
    }

    /// Record a reduction update of `e`.
    #[inline]
    pub fn on_reduce(&mut self, e: usize) {
        debug_assert!(e < self.size);
        self.note_touch(e);
        let (w, m) = slot(e);
        debug_assert!(
            (self.write[w] | self.read[w]) & m == 0,
            "reduce after ordinary access must go through the ordinary path"
        );
        self.red[w] |= m;
    }

    /// Convert `e`'s reduction mark to ordinary marks (see
    /// [`Mark::materialize_reduction`]).
    #[inline]
    pub fn materialize(&mut self, e: usize) {
        let (w, m) = slot(e);
        debug_assert!(self.red[w] & m != 0);
        self.red[w] &= !m;
        self.read[w] |= m;
        self.write[w] |= m;
    }

    /// The element's mark byte, identical to what a [`Mark`]-based
    /// shadow would hold.
    #[inline]
    pub fn mark(&self, e: usize) -> Mark {
        let (w, m) = slot(e);
        let mut bits = 0u8;
        if self.write[w] & m != 0 {
            bits |= Mark::WRITE;
        }
        if self.read[w] & m != 0 {
            bits |= Mark::EXPOSED_READ;
        }
        if self.red[w] & m != 0 {
            bits |= Mark::REDUCTION;
        }
        Mark(bits)
    }

    /// Distinct elements referenced, in first-touch order.
    pub fn touched(&self) -> impl Iterator<Item = (usize, Mark)> + '_ {
        self.touched
            .iter()
            .map(|&e| (e as usize, self.mark(e as usize)))
    }

    /// Number of distinct elements referenced.
    pub fn num_touched(&self) -> usize {
        self.touched.len()
    }

    /// Re-initialize in O(touched).
    pub fn clear(&mut self) {
        for &e in &self.touched {
            let (w, m) = slot(e as usize);
            self.write[w] &= !m;
            self.read[w] &= !m;
            self.red[w] &= !m;
        }
        self.touched.clear();
    }

    /// Install a previously observed mark verbatim (representation
    /// migration and replay): sets the bit planes directly, bypassing
    /// the transition rules. `mark` must be a touched, legal mark and
    /// `e` must currently be untouched.
    pub fn restore(&mut self, e: usize, mark: Mark) {
        debug_assert!(e < self.size);
        debug_assert!(mark.is_touched(), "restoring an untouched mark");
        debug_assert!(!self.is_touched(e), "restore over a live mark");
        let (w, m) = slot(e);
        if mark.is_written() {
            self.write[w] |= m;
        }
        if mark.is_exposed_read() {
            self.read[w] |= m;
        }
        if mark.is_reduction_only() {
            self.red[w] |= m;
        }
        self.touched.push(e as u32);
    }

    /// Shadow memory in bytes: the bit planes plus the touched list's
    /// allocation (reported to the footprint accountant).
    pub fn shadow_bytes(&self) -> usize {
        (self.write.len() + self.read.len() + self.red.len()) * 8 + self.touched.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseShadow;

    #[test]
    fn transition_rules_match_the_byte_shadow() {
        // Replay a deterministic pseudo-random access sequence into
        // both representations and compare final marks.
        let size = 257; // crosses word boundaries
        let mut packed = PackedShadow::new(size);
        let mut dense = DenseShadow::new(size);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = (x >> 33) as usize % size;
            match (x >> 7) % 3 {
                0 => {
                    // The view layer materializes reduction-marked
                    // elements before any ordinary access; mirror it.
                    if packed.mark(e).is_reduction_only() {
                        packed.materialize(e);
                        dense.materialize(e);
                    }
                    packed.on_read(e);
                    dense.on_read(e);
                }
                1 => {
                    if packed.mark(e).is_reduction_only() {
                        packed.materialize(e);
                        dense.materialize(e);
                    }
                    packed.on_write(e);
                    dense.on_write(e);
                }
                _ => {
                    // Reduce only on untouched elements (the view layer
                    // guarantees this routing).
                    if !packed.mark(e).is_touched() {
                        packed.on_reduce(e);
                        dense.on_reduce(e);
                    }
                }
            }
        }
        for e in 0..size {
            assert_eq!(packed.mark(e), dense.mark(e), "element {e}");
        }
        assert_eq!(packed.num_touched(), dense.num_touched());
    }

    #[test]
    fn read_covered_by_write_stays_unexposed() {
        let mut s = PackedShadow::new(100);
        s.on_write(64); // first bit of word 1
        s.on_read(64);
        assert!(!s.mark(64).is_exposed_read());
        assert!(s.mark(64).is_written());
    }

    #[test]
    fn reduction_round_trip() {
        let mut s = PackedShadow::new(70);
        s.on_reduce(65);
        assert!(s.mark(65).is_reduction_only());
        s.materialize(65);
        assert!(s.mark(65).is_written());
        assert!(s.mark(65).is_exposed_read());
        assert!(!s.mark(65).is_reduction_only());
    }

    #[test]
    fn clear_is_complete_and_cheap() {
        let mut s = PackedShadow::new(1000);
        for e in [0usize, 63, 64, 999] {
            s.on_write(e);
        }
        s.clear();
        assert_eq!(s.num_touched(), 0);
        for e in 0..1000 {
            assert!(!s.mark(e).is_touched());
        }
        s.on_read(63);
        assert!(s.mark(63).is_exposed_read());
    }

    #[test]
    fn footprint_is_a_quarter_of_the_byte_shadow() {
        let s = PackedShadow::new(1 << 16);
        // 3 bit-planes = 3 bits/elem vs 8 bits/elem.
        assert!(s.shadow_bytes() * 2 < (1 << 16));
    }

    #[test]
    fn touched_order_is_first_touch() {
        let mut s = PackedShadow::new(128);
        s.on_write(100);
        s.on_read(3);
        s.on_read(100);
        let order: Vec<usize> = s.touched().map(|(e, _)| e).collect();
        assert_eq!(order, vec![100, 3]);
    }
}
