//! Dense shadow array: one mark byte per element plus a touched list.
//!
//! The touched list is the paper's shadow-structure optimization: the
//! analysis phase and the per-restart re-initialization both become
//! proportional to the number of *distinct references* marked on the
//! processor, not to the array size.

use crate::marks::Mark;

/// A dense, per-processor shadow of one array under test.
#[derive(Clone, Debug)]
pub struct DenseShadow {
    marks: Vec<Mark>,
    touched: Vec<u32>,
}

impl DenseShadow {
    /// Shadow for an array of `size` elements, all unmarked.
    pub fn new(size: usize) -> Self {
        assert!(
            size <= u32::MAX as usize,
            "dense shadow limited to u32 indices"
        );
        DenseShadow {
            marks: vec![Mark::CLEAR; size],
            touched: Vec::new(),
        }
    }

    /// Number of elements shadowed.
    pub fn size(&self) -> usize {
        self.marks.len()
    }

    #[inline]
    fn touch(&mut self, elem: usize) -> &mut Mark {
        let m = &mut self.marks[elem];
        if !m.is_touched() {
            self.touched.push(elem as u32);
        }
        m
    }

    /// Record an ordinary read of `elem`.
    #[inline]
    pub fn on_read(&mut self, elem: usize) {
        self.touch(elem).on_read();
    }

    /// Record an ordinary write of `elem`.
    #[inline]
    pub fn on_write(&mut self, elem: usize) {
        self.touch(elem).on_write();
    }

    /// Record a reduction update of `elem`.
    #[inline]
    pub fn on_reduce(&mut self, elem: usize) {
        self.touch(elem).on_reduce();
    }

    /// Convert `elem`'s reduction marks to ordinary marks (see
    /// [`Mark::materialize_reduction`]).
    #[inline]
    pub fn materialize(&mut self, elem: usize) {
        self.marks[elem].materialize_reduction();
    }

    /// Current mark of `elem`.
    #[inline]
    pub fn mark(&self, elem: usize) -> Mark {
        self.marks[elem]
    }

    /// Distinct elements referenced, in first-touch order.
    pub fn touched(&self) -> impl Iterator<Item = (usize, Mark)> + '_ {
        self.touched
            .iter()
            .map(|&e| (e as usize, self.marks[e as usize]))
    }

    /// Number of distinct elements referenced.
    pub fn num_touched(&self) -> usize {
        self.touched.len()
    }

    /// Re-initialize in time proportional to the touched count (the
    /// paper's cheap shadow re-init between R-LRPD stages).
    pub fn clear(&mut self) {
        for &e in &self.touched {
            self.marks[e as usize] = Mark::CLEAR;
        }
        self.touched.clear();
    }

    /// Install a previously observed mark verbatim (representation
    /// migration and replay). `mark` must be a touched, legal mark and
    /// `elem` must currently be untouched.
    pub fn restore(&mut self, elem: usize, mark: Mark) {
        debug_assert!(mark.is_touched(), "restoring an untouched mark");
        debug_assert!(!self.marks[elem].is_touched(), "restore over a live mark");
        self.marks[elem] = mark;
        self.touched.push(elem as u32);
    }

    /// Shadow memory held, in bytes: the mark array plus the touched
    /// list's allocation (reported to the footprint accountant).
    pub fn shadow_bytes(&self) -> usize {
        self.marks.len() + self.touched.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_follow_transition_rules() {
        let mut s = DenseShadow::new(8);
        s.on_read(1); // exposed
        s.on_write(2);
        s.on_read(2); // covered
        s.on_write(3);
        assert!(s.mark(1).is_exposed_read());
        assert!(!s.mark(2).is_exposed_read());
        assert!(s.mark(2).is_written());
        assert!(s.mark(3).is_written());
        assert!(!s.mark(0).is_touched());
    }

    #[test]
    fn touched_list_has_distinct_elements_in_first_touch_order() {
        let mut s = DenseShadow::new(8);
        s.on_write(5);
        s.on_read(5);
        s.on_read(1);
        s.on_write(1);
        s.on_write(5);
        let order: Vec<usize> = s.touched().map(|(e, _)| e).collect();
        assert_eq!(order, vec![5, 1]);
        assert_eq!(s.num_touched(), 2);
    }

    #[test]
    fn clear_is_complete_and_reusable() {
        let mut s = DenseShadow::new(4);
        s.on_read(0);
        s.on_write(3);
        s.clear();
        assert_eq!(s.num_touched(), 0);
        for e in 0..4 {
            assert!(!s.mark(e).is_touched());
        }
        // Reusable after clear with fresh semantics.
        s.on_read(3);
        assert!(
            s.mark(3).is_exposed_read(),
            "cleared write must not cover a new read"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_element_panics() {
        let mut s = DenseShadow::new(2);
        s.on_read(2);
    }
}
