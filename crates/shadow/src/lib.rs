//! Shadow data structures for the LRPD family of run-time dependence
//! tests.
//!
//! The LRPD test instruments every read/write of a compiler-unanalyzable
//! shared array with *marking code* that records, per processor and per
//! element, whether the element was written and whether it was read
//! before being written (an *exposed* read — the reference that needs
//! copy-in and the only possible sink of a cross-processor flow
//! dependence). This crate provides:
//!
//! * [`marks`] — the 2(+1)-bit mark byte and its transition rules,
//! * [`DenseShadow`] — one mark byte per array element plus a *touched
//!   list* so that analysis and re-initialization are proportional to the
//!   number of distinct references, not the array size (the paper's
//!   shadow-structure optimization),
//! * [`SparseShadow`] — a hash-based shadow for SPICE-like access
//!   patterns where the array is huge and touches are sparse,
//! * [`PackedShadow`] — the paper's literal bit-packed layout (3 bits
//!   per element in planes), ~4× smaller than the byte shadow,
//! * [`Shadow`] — a runtime-selected combination of the two,
//! * [`IterMarks`] — per-*iteration* mark lists (the paper's "N-level
//!   mark list") used by sliding-window DDG extraction,
//! * [`LastRefTable`] — the distributed last-reference table carrying the
//!   last committed writer of each element across windows.
//!
//! All structures are per-processor and single-threaded by design; the
//! analysis phase merges them across processors.
//!
//! ```
//! use rlrpd_shadow::Shadow;
//!
//! let mut shadow = Shadow::dense(16);
//! shadow.on_read(3);   // exposed: no prior write
//! shadow.on_write(3);
//! shadow.on_write(5);
//! shadow.on_read(5);   // covered by the write above
//! assert!(shadow.mark(3).is_exposed_read());
//! assert!(!shadow.mark(5).is_exposed_read());
//! assert_eq!(shadow.num_touched(), 2);
//! shadow.clear();      // O(touched), not O(size)
//! assert_eq!(shadow.num_touched(), 0);
//! ```

#![warn(missing_docs)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod budget;
pub mod dense;
pub mod hasher;
pub mod iter_marks;
pub mod last_ref;
pub mod marks;
pub mod packed;
pub mod select;
pub mod shadow;
pub mod sparse;

pub use budget::{BudgetLease, BudgetPool, ShadowBudget};
pub use dense::DenseShadow;
pub use iter_marks::{ElemEvents, EventKind, IterMarks};
pub use last_ref::LastRefTable;
pub use marks::Mark;
pub use packed::PackedShadow;
pub use select::{choose, clamp_to_budget, footprint, ShadowChoice};
pub use shadow::Shadow;
pub use sparse::SparseShadow;
