//! The shadow-memory footprint accountant.
//!
//! Shadow structures historically sized themselves as a function of the
//! array (`n` mark bytes per processor for a dense shadow) — fine for a
//! single run, fatal for a host multiplexing many. [`ShadowBudget`]
//! turns shadow memory into a governed resource: one accountant per
//! run, shared by every engine that run creates (supervisor, worker,
//! sequential fallback), through which every representation reports its
//! allocation and growth at the engine's phase boundaries.
//!
//! The accountant is deliberately dumb: it tracks `used` and `peak`
//! bytes against an optional `cap` and answers "are we over?". *Policy*
//! — the dense→packed→sparse ladder, window shrinking, sequential
//! fallback — lives with the engine and driver, which consult the
//! accountant at safe points (commit points, where untested state is
//! about to be re-executed anyway).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no cap": `u64::MAX` bytes is unreachable by any real
/// shadow allocation.
const UNLIMITED: u64 = u64::MAX;

/// Per-run shadow-memory accountant: bytes used, peak, and an optional
/// hard cap.
///
/// Shared (via `Arc`) across the engines of one run and across threads;
/// all counters are atomic. Charges are advisory — nothing fails at
/// charge time; the engine checks [`ShadowBudget::over`] at its safe
/// points and degrades representations there.
#[derive(Debug)]
pub struct ShadowBudget {
    cap: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl Default for ShadowBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl ShadowBudget {
    /// An accountant that tracks usage but never reports pressure.
    pub fn unlimited() -> Self {
        ShadowBudget {
            cap: UNLIMITED,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// An accountant with a hard cap of `bytes`.
    pub fn limited(bytes: u64) -> Self {
        ShadowBudget {
            cap: bytes.min(UNLIMITED - 1),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// `limited(b)` when `bytes` is `Some(b)`, else `unlimited()`.
    pub fn new(bytes: Option<u64>) -> Self {
        match bytes {
            Some(b) => Self::limited(b),
            None => Self::unlimited(),
        }
    }

    /// The cap, or `None` when unlimited.
    pub fn cap(&self) -> Option<u64> {
        (self.cap != UNLIMITED).then_some(self.cap)
    }

    /// Whether a cap is armed.
    pub fn is_limited(&self) -> bool {
        self.cap != UNLIMITED
    }

    /// Report `bytes` of new shadow allocation or growth.
    pub fn charge(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Report `bytes` of shadow memory returned (shrunk or freed).
    /// Saturates at zero: releases racing with charges must never wrap.
    pub fn release(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Whether current usage exceeds the cap (always `false` when
    /// unlimited).
    pub fn over(&self) -> bool {
        self.used() > self.cap
    }

    /// Whether usage of `bytes` would exceed the cap.
    pub fn would_exceed(&self, bytes: u64) -> bool {
        bytes > self.cap
    }
}

/// A process-wide pool of shadow-budget bytes, carved into per-job
/// grants by a multiplexing host (the `rlrpd serve` daemon).
///
/// Where [`ShadowBudget`] governs one run's *usage*, `BudgetPool`
/// governs *admission*: a job is dispatched only once
/// [`BudgetPool::try_carve`] hands it a [`BudgetLease`], and the
/// invariant `Σ granted ≤ total` holds at every instant — the grant is
/// a single atomic compare-exchange, and the lease returns its bytes
/// on drop (even when the job panics).
#[derive(Debug)]
pub struct BudgetPool {
    total: u64,
    granted: AtomicU64,
    granted_peak: AtomicU64,
}

impl BudgetPool {
    /// A pool of `total` bytes.
    pub fn new(total: u64) -> Self {
        BudgetPool {
            total,
            granted: AtomicU64::new(0),
            granted_peak: AtomicU64::new(0),
        }
    }

    /// The pool's size in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently out on leases.
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently granted bytes — the soak tests'
    /// witness that concurrent grants never summed above the pool.
    pub fn granted_peak(&self) -> u64 {
        self.granted_peak.load(Ordering::Relaxed)
    }

    /// Bytes available for the next grant.
    pub fn available(&self) -> u64 {
        self.total.saturating_sub(self.granted())
    }

    /// Would a request for `bytes` *ever* fit, even on an idle pool?
    /// `false` means the request must be rejected, not queued.
    pub fn can_ever_fit(&self, bytes: u64) -> bool {
        bytes <= self.total
    }

    /// Carve `bytes` out of the pool, or `None` if they are not
    /// available right now (queue and retry after a release). The
    /// returned lease gives the bytes back when dropped.
    pub fn try_carve(self: &std::sync::Arc<Self>, bytes: u64) -> Option<BudgetLease> {
        let mut cur = self.granted.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(bytes).filter(|&n| n <= self.total)?;
            match self.granted.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.granted_peak.fetch_max(next, Ordering::Relaxed);
                    return Some(BudgetLease {
                        pool: std::sync::Arc::clone(self),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A per-job grant carved from a [`BudgetPool`]; the bytes return to
/// the pool when the lease drops.
#[derive(Debug)]
pub struct BudgetLease {
    pool: std::sync::Arc<BudgetPool>,
    bytes: u64,
}

impl BudgetLease {
    /// Bytes this lease holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        let mut cur = self.pool.granted.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(self.bytes);
            match self.pool.granted.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_never_reports_pressure() {
        let b = ShadowBudget::unlimited();
        b.charge(u64::MAX / 2);
        assert!(!b.over());
        assert!(!b.is_limited());
        assert_eq!(b.cap(), None);
        assert_eq!(b.peak(), u64::MAX / 2);
    }

    #[test]
    fn cap_trips_over_and_peak_is_sticky() {
        let b = ShadowBudget::limited(100);
        b.charge(60);
        assert!(!b.over());
        b.charge(60);
        assert!(b.over());
        assert_eq!(b.used(), 120);
        b.release(80);
        assert!(!b.over());
        assert_eq!(b.used(), 40);
        assert_eq!(b.peak(), 120, "peak survives releases");
    }

    #[test]
    fn release_saturates_at_zero() {
        let b = ShadowBudget::limited(10);
        b.charge(5);
        b.release(1_000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn new_maps_option_to_cap() {
        assert_eq!(ShadowBudget::new(Some(64)).cap(), Some(64));
        assert_eq!(ShadowBudget::new(None).cap(), None);
        assert!(ShadowBudget::new(Some(0)).would_exceed(1));
    }

    #[test]
    fn pool_grants_never_sum_above_total() {
        let pool = Arc::new(BudgetPool::new(100));
        let a = pool.try_carve(60).expect("60 fits");
        assert_eq!(pool.granted(), 60);
        assert!(pool.try_carve(50).is_none(), "110 > 100");
        let b = pool.try_carve(40).expect("exactly fills");
        assert_eq!(pool.available(), 0);
        drop(a);
        assert_eq!(pool.granted(), 40);
        drop(b);
        assert_eq!(pool.granted(), 0);
        assert_eq!(pool.granted_peak(), 100);
    }

    #[test]
    fn pool_rejects_what_can_never_fit() {
        let pool = Arc::new(BudgetPool::new(10));
        assert!(!pool.can_ever_fit(11));
        assert!(pool.can_ever_fit(10));
        assert!(pool.try_carve(11).is_none());
    }

    #[test]
    fn concurrent_carves_respect_the_pool() {
        let pool = Arc::new(BudgetPool::new(1_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    if let Some(lease) = pool.try_carve(300) {
                        assert!(pool.granted() <= 1_000);
                        drop(lease);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.granted(), 0, "every lease returned");
        assert!(pool.granted_peak() <= 1_000, "peak bounded by pool");
    }
}
