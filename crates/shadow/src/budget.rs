//! The shadow-memory footprint accountant.
//!
//! Shadow structures historically sized themselves as a function of the
//! array (`n` mark bytes per processor for a dense shadow) — fine for a
//! single run, fatal for a host multiplexing many. [`ShadowBudget`]
//! turns shadow memory into a governed resource: one accountant per
//! run, shared by every engine that run creates (supervisor, worker,
//! sequential fallback), through which every representation reports its
//! allocation and growth at the engine's phase boundaries.
//!
//! The accountant is deliberately dumb: it tracks `used` and `peak`
//! bytes against an optional `cap` and answers "are we over?". *Policy*
//! — the dense→packed→sparse ladder, window shrinking, sequential
//! fallback — lives with the engine and driver, which consult the
//! accountant at safe points (commit points, where untested state is
//! about to be re-executed anyway).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no cap": `u64::MAX` bytes is unreachable by any real
/// shadow allocation.
const UNLIMITED: u64 = u64::MAX;

/// Per-run shadow-memory accountant: bytes used, peak, and an optional
/// hard cap.
///
/// Shared (via `Arc`) across the engines of one run and across threads;
/// all counters are atomic. Charges are advisory — nothing fails at
/// charge time; the engine checks [`ShadowBudget::over`] at its safe
/// points and degrades representations there.
#[derive(Debug)]
pub struct ShadowBudget {
    cap: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl Default for ShadowBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl ShadowBudget {
    /// An accountant that tracks usage but never reports pressure.
    pub fn unlimited() -> Self {
        ShadowBudget {
            cap: UNLIMITED,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// An accountant with a hard cap of `bytes`.
    pub fn limited(bytes: u64) -> Self {
        ShadowBudget {
            cap: bytes.min(UNLIMITED - 1),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// `limited(b)` when `bytes` is `Some(b)`, else `unlimited()`.
    pub fn new(bytes: Option<u64>) -> Self {
        match bytes {
            Some(b) => Self::limited(b),
            None => Self::unlimited(),
        }
    }

    /// The cap, or `None` when unlimited.
    pub fn cap(&self) -> Option<u64> {
        (self.cap != UNLIMITED).then_some(self.cap)
    }

    /// Whether a cap is armed.
    pub fn is_limited(&self) -> bool {
        self.cap != UNLIMITED
    }

    /// Report `bytes` of new shadow allocation or growth.
    pub fn charge(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Report `bytes` of shadow memory returned (shrunk or freed).
    /// Saturates at zero: releases racing with charges must never wrap.
    pub fn release(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Whether current usage exceeds the cap (always `false` when
    /// unlimited).
    pub fn over(&self) -> bool {
        self.used() > self.cap
    }

    /// Whether usage of `bytes` would exceed the cap.
    pub fn would_exceed(&self, bytes: u64) -> bool {
        bytes > self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_reports_pressure() {
        let b = ShadowBudget::unlimited();
        b.charge(u64::MAX / 2);
        assert!(!b.over());
        assert!(!b.is_limited());
        assert_eq!(b.cap(), None);
        assert_eq!(b.peak(), u64::MAX / 2);
    }

    #[test]
    fn cap_trips_over_and_peak_is_sticky() {
        let b = ShadowBudget::limited(100);
        b.charge(60);
        assert!(!b.over());
        b.charge(60);
        assert!(b.over());
        assert_eq!(b.used(), 120);
        b.release(80);
        assert!(!b.over());
        assert_eq!(b.used(), 40);
        assert_eq!(b.peak(), 120, "peak survives releases");
    }

    #[test]
    fn release_saturates_at_zero() {
        let b = ShadowBudget::limited(10);
        b.charge(5);
        b.release(1_000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn new_maps_option_to_cap() {
        assert_eq!(ShadowBudget::new(Some(64)).cap(), Some(64));
        assert_eq!(ShadowBudget::new(None).cap(), None);
        assert!(ShadowBudget::new(Some(0)).would_exceed(1));
    }
}
