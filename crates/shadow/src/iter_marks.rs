//! Per-iteration mark lists — the paper's "N-level mark list".
//!
//! For data-dependence-graph extraction (paper Section 3) processor-wise
//! marks are too coarse: the shadow must remember *which iteration*
//! produced or consumed each element so that individual DDG edges
//! `(write@i → read@j)` can be logged. [`IterMarks`] records, per
//! element, the ordered sequence of writes and *exposed* reads at
//! iteration granularity. A read is exposed (visible outside its own
//! iteration) when no earlier reference of the same iteration wrote the
//! element; privatization makes every other read iteration-local.

use crate::hasher::FxBuildHasher;
use std::collections::HashMap;

/// What an element-level event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// The iteration wrote the element (any write, first one recorded).
    Write,
    /// The iteration read the element before writing it (flow-dependence
    /// sink candidate).
    ExposedRead,
}

/// Ordered per-element event log: `(iteration, kind)` in program order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElemEvents {
    events: Vec<(u32, EventKind)>,
    last_write_iter: Option<u32>,
}

impl ElemEvents {
    /// Events in program order, deduplicated per `(iteration, kind)`.
    pub fn events(&self) -> &[(u32, EventKind)] {
        &self.events
    }

    fn push_once(&mut self, iter: u32, kind: EventKind) {
        if self.events.last() != Some(&(iter, kind))
            && !self.events.iter().any(|&(i, k)| i == iter && k == kind)
        {
            self.events.push((iter, kind));
        }
    }
}

/// Per-processor, per-array iteration-level shadow for DDG extraction.
#[derive(Clone, Debug, Default)]
pub struct IterMarks {
    map: HashMap<usize, ElemEvents, FxBuildHasher>,
}

impl IterMarks {
    /// Empty mark list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `elem` at `iter`; logged as exposed unless the
    /// same iteration already wrote the element.
    pub fn on_read(&mut self, elem: usize, iter: u32) {
        let st = self.map.entry(elem).or_default();
        if st.last_write_iter != Some(iter) {
            st.push_once(iter, EventKind::ExposedRead);
        }
    }

    /// Record a write of `elem` at `iter`.
    pub fn on_write(&mut self, elem: usize, iter: u32) {
        let st = self.map.entry(elem).or_default();
        st.push_once(iter, EventKind::Write);
        st.last_write_iter = Some(iter);
    }

    /// All touched elements with their event logs (arbitrary order).
    pub fn elems(&self) -> impl Iterator<Item = (usize, &ElemEvents)> + '_ {
        self.map.iter().map(|(&e, ev)| (e, ev))
    }

    /// Event log of one element, if touched.
    pub fn get(&self, elem: usize) -> Option<&ElemEvents> {
        self.map.get(&elem)
    }

    /// Number of distinct elements touched.
    pub fn num_touched(&self) -> usize {
        self.map.len()
    }

    /// Re-initialize for the next window.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EventKind::*;

    #[test]
    fn read_after_same_iteration_write_is_not_exposed() {
        let mut m = IterMarks::new();
        m.on_write(4, 7);
        m.on_read(4, 7);
        assert_eq!(m.get(4).unwrap().events(), &[(7, Write)]);
    }

    #[test]
    fn read_after_earlier_iteration_write_is_exposed() {
        let mut m = IterMarks::new();
        m.on_write(4, 2);
        m.on_read(4, 5);
        assert_eq!(m.get(4).unwrap().events(), &[(2, Write), (5, ExposedRead)]);
    }

    #[test]
    fn events_deduplicate_per_iteration_and_kind() {
        let mut m = IterMarks::new();
        m.on_read(1, 3);
        m.on_read(1, 3);
        m.on_write(1, 3);
        m.on_write(1, 3);
        m.on_read(1, 3); // now covered by the iteration's own write
        assert_eq!(m.get(1).unwrap().events(), &[(3, ExposedRead), (3, Write)]);
    }

    #[test]
    fn interleaved_iterations_keep_program_order() {
        // Block executes iterations 1 then 2; element ping-pongs.
        let mut m = IterMarks::new();
        m.on_read(9, 1);
        m.on_write(9, 1);
        m.on_read(9, 2); // exposed: last write was iteration 1
        m.on_write(9, 2);
        assert_eq!(
            m.get(9).unwrap().events(),
            &[(1, ExposedRead), (1, Write), (2, ExposedRead), (2, Write)]
        );
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = IterMarks::new();
        m.on_write(0, 0);
        m.clear();
        assert_eq!(m.num_touched(), 0);
        m.on_read(0, 0);
        assert_eq!(m.get(0).unwrap().events(), &[(0, ExposedRead)]);
    }
}
