//! Sparse shadow: a hash map from element index to mark byte.
//!
//! SPICE's loops reference a handful of elements of an enormous
//! equivalenced work array (`VALUE`); a dense shadow would waste memory
//! and make re-initialization expensive. The sparse shadow stores only
//! touched elements — the paper's "sparse version of the R-LRPD test".

use crate::hasher::FxBuildHasher;
use crate::marks::Mark;
use std::collections::HashMap;

/// A sparse, per-processor shadow of one array under test.
#[derive(Clone, Debug, Default)]
pub struct SparseShadow {
    marks: HashMap<usize, Mark, FxBuildHasher>,
}

impl SparseShadow {
    /// An empty sparse shadow (no size bound: any `usize` index may be
    /// marked).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an ordinary read of `elem`.
    #[inline]
    pub fn on_read(&mut self, elem: usize) {
        self.marks.entry(elem).or_default().on_read();
    }

    /// Record an ordinary write of `elem`.
    #[inline]
    pub fn on_write(&mut self, elem: usize) {
        self.marks.entry(elem).or_default().on_write();
    }

    /// Record a reduction update of `elem`.
    #[inline]
    pub fn on_reduce(&mut self, elem: usize) {
        self.marks.entry(elem).or_default().on_reduce();
    }

    /// Convert `elem`'s reduction marks to ordinary marks.
    #[inline]
    pub fn materialize(&mut self, elem: usize) {
        self.marks
            .get_mut(&elem)
            .expect("materialize of untouched element")
            .materialize_reduction();
    }

    /// Current mark of `elem` ([`Mark::CLEAR`] when untouched).
    #[inline]
    pub fn mark(&self, elem: usize) -> Mark {
        self.marks.get(&elem).copied().unwrap_or(Mark::CLEAR)
    }

    /// Distinct elements referenced (arbitrary order).
    pub fn touched(&self) -> impl Iterator<Item = (usize, Mark)> + '_ {
        self.marks.iter().map(|(&e, &m)| (e, m))
    }

    /// Number of distinct elements referenced.
    pub fn num_touched(&self) -> usize {
        self.marks.len()
    }

    /// Re-initialize; keeps the allocation for reuse across stages.
    pub fn clear(&mut self) {
        self.marks.clear();
    }

    /// Install a previously observed mark verbatim (representation
    /// migration and replay). `mark` must be a touched, legal mark and
    /// `elem` must currently be untouched.
    pub fn restore(&mut self, elem: usize, mark: Mark) {
        debug_assert!(mark.is_touched(), "restoring an untouched mark");
        let prev = self.marks.insert(elem, mark);
        debug_assert!(prev.is_none(), "restore over a live mark");
    }

    /// Estimated shadow memory held, in bytes: the hash table's
    /// capacity at ~16 bytes per slot (key + mark + control/padding),
    /// reported to the footprint accountant. An estimate — `HashMap`
    /// does not expose its exact layout — but a deliberate *over*-count
    /// is impossible to promise, so the accountant treats every sparse
    /// figure as approximate.
    pub fn shadow_bytes(&self) -> usize {
        self.marks.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_follow_transition_rules() {
        let mut s = SparseShadow::new();
        s.on_read(1_000_000); // exposed, far beyond any dense bound
        s.on_write(2);
        s.on_read(2);
        assert!(s.mark(1_000_000).is_exposed_read());
        assert!(!s.mark(2).is_exposed_read());
        assert!(s.mark(2).is_written());
        assert!(!s.mark(0).is_touched());
    }

    #[test]
    fn touched_counts_distinct_elements() {
        let mut s = SparseShadow::new();
        s.on_write(5);
        s.on_read(5);
        s.on_read(9);
        assert_eq!(s.num_touched(), 2);
        let mut elems: Vec<usize> = s.touched().map(|(e, _)| e).collect();
        elems.sort_unstable();
        assert_eq!(elems, vec![5, 9]);
    }

    #[test]
    fn clear_resets_semantics() {
        let mut s = SparseShadow::new();
        s.on_write(7);
        s.clear();
        assert_eq!(s.num_touched(), 0);
        s.on_read(7);
        assert!(s.mark(7).is_exposed_read());
    }

    #[test]
    fn reduction_marks_round_trip() {
        let mut s = SparseShadow::new();
        s.on_reduce(3);
        assert!(s.mark(3).is_reduction_only());
        s.materialize(3);
        assert!(s.mark(3).is_written());
        assert!(s.mark(3).is_exposed_read());
    }
}
