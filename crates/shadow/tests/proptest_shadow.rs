//! Property tests: the three shadow representations are observationally
//! identical, and per-iteration mark lists obey the exposure rule.

use proptest::prelude::*;
use rlrpd_shadow::{DenseShadow, IterMarks, PackedShadow, SparseShadow};

/// An operation against an element, mirroring the view layer's legal
/// routing (ordinary ops materialize reduction-marked elements first).
#[derive(Clone, Debug)]
enum Op {
    Read(usize),
    Write(usize),
    Reduce(usize),
}

fn ops(size: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0usize..size, 0u8..3).prop_map(|(e, k)| match k {
            0 => Op::Read(e),
            1 => Op::Write(e),
            _ => Op::Reduce(e),
        }),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dense, packed and sparse shadows agree on every mark after any
    /// legal operation sequence.
    #[test]
    fn representations_agree(ops in ops(64)) {
        let size = 64;
        let mut dense = DenseShadow::new(size);
        let mut packed = PackedShadow::new(size);
        let mut sparse = SparseShadow::new();
        for op in &ops {
            match *op {
                Op::Read(e) => {
                    if dense.mark(e).is_reduction_only() {
                        dense.materialize(e);
                        packed.materialize(e);
                        sparse.materialize(e);
                    }
                    dense.on_read(e);
                    packed.on_read(e);
                    sparse.on_read(e);
                }
                Op::Write(e) => {
                    if dense.mark(e).is_reduction_only() {
                        dense.materialize(e);
                        packed.materialize(e);
                        sparse.materialize(e);
                    }
                    dense.on_write(e);
                    packed.on_write(e);
                    sparse.on_write(e);
                }
                Op::Reduce(e) => {
                    // Reduce is only legal on untouched/reduction marks.
                    if !dense.mark(e).is_touched() || dense.mark(e).is_reduction_only() {
                        dense.on_reduce(e);
                        packed.on_reduce(e);
                        sparse.on_reduce(e);
                    }
                }
            }
        }
        for e in 0..size {
            prop_assert_eq!(dense.mark(e), packed.mark(e));
            prop_assert_eq!(dense.mark(e), sparse.mark(e));
        }
        prop_assert_eq!(dense.num_touched(), packed.num_touched());
        prop_assert_eq!(dense.num_touched(), sparse.num_touched());
    }

    /// Clearing restores pristine semantics for every representation.
    #[test]
    fn clear_is_complete(elems in prop::collection::vec(0usize..32, 1..50)) {
        let mut dense = DenseShadow::new(32);
        let mut packed = PackedShadow::new(32);
        let mut sparse = SparseShadow::new();
        for &e in &elems {
            dense.on_write(e);
            packed.on_write(e);
            sparse.on_write(e);
        }
        dense.clear();
        packed.clear();
        sparse.clear();
        for e in 0..32 {
            prop_assert!(!dense.mark(e).is_touched());
            prop_assert!(!packed.mark(e).is_touched());
            prop_assert!(!sparse.mark(e).is_touched());
        }
        // A fresh read after clear is exposed again.
        let probe = elems[0];
        dense.on_read(probe);
        prop_assert!(dense.mark(probe).is_exposed_read());
    }

    /// IterMarks: a read is logged as exposed iff its own iteration has
    /// not written the element earlier.
    #[test]
    fn iter_marks_exposure_rule(
        events in prop::collection::vec((0usize..16, 0u32..8, any::<bool>()), 0..100)
    ) {
        use rlrpd_shadow::EventKind;
        use std::collections::HashSet;
        let mut marks = IterMarks::new();
        // Model: (elem, iter) pairs that have written.
        let mut wrote: HashSet<(usize, u32)> = HashSet::new();
        let mut expect_exposed: HashSet<(usize, u32)> = HashSet::new();
        // Events must arrive in nondecreasing iteration order per the
        // block contract; sort to enforce it.
        let mut events = events;
        events.sort_by_key(|&(_, it, _)| it);
        for &(e, it, is_write) in &events {
            if is_write {
                marks.on_write(e, it);
                wrote.insert((e, it));
            } else {
                marks.on_read(e, it);
                if !wrote.contains(&(e, it)) {
                    expect_exposed.insert((e, it));
                }
            }
        }
        for (e, ev) in marks.elems() {
            for &(it, kind) in ev.events() {
                if kind == EventKind::ExposedRead {
                    prop_assert!(
                        expect_exposed.contains(&(e, it)),
                        "spurious exposed read ({e}, {it})"
                    );
                }
            }
        }
        // Every expected exposure is present.
        for &(e, it) in &expect_exposed {
            let found = marks
                .get(e)
                .map(|ev| ev.events().contains(&(it, EventKind::ExposedRead)))
                .unwrap_or(false);
            prop_assert!(found, "missing exposed read ({e}, {it})");
        }
    }
}

/// Apply one legal op to a [`Shadow`] (the runtime-selected wrapper),
/// mirroring the view layer's materialize-before-ordinary routing.
fn apply(shadow: &mut rlrpd_shadow::Shadow, op: &Op) {
    match *op {
        Op::Read(e) => {
            if shadow.mark(e).is_reduction_only() {
                shadow.materialize(e);
            }
            shadow.on_read(e);
        }
        Op::Write(e) => {
            if shadow.mark(e).is_reduction_only() {
                shadow.materialize(e);
            }
            shadow.on_write(e);
        }
        Op::Reduce(e) => {
            if !shadow.mark(e).is_touched() || shadow.mark(e).is_reduction_only() {
                shadow.on_reduce(e);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Migration is a byte-identity on mark state: after any legal op
    /// sequence, walking the representation ladder in any order — and
    /// round-tripping back — preserves every element's mark exactly.
    #[test]
    fn migration_preserves_all_marks(ops in ops(64)) {
        use rlrpd_shadow::{Shadow, ShadowChoice};
        let size = 64;
        for start in [ShadowChoice::Dense, ShadowChoice::Packed, ShadowChoice::Sparse] {
            let mut shadow = Shadow::for_choice(start, size);
            for op in &ops {
                apply(&mut shadow, op);
            }
            for dest in [ShadowChoice::Dense, ShadowChoice::Packed, ShadowChoice::Sparse] {
                let migrated = shadow.migrated(dest, size);
                prop_assert_eq!(migrated.choice(), dest);
                for e in 0..size {
                    prop_assert_eq!(
                        shadow.mark(e), migrated.mark(e),
                        "mark of {} diverged across {:?} -> {:?}", e, start, dest
                    );
                }
                prop_assert_eq!(shadow.num_touched(), migrated.num_touched());
                // And back: the round trip is also an identity.
                let back = migrated.migrated(start, size);
                for e in 0..size {
                    prop_assert_eq!(shadow.mark(e), back.mark(e));
                }
            }
        }
    }

    /// Migrating under live marks keeps operating correctly: ops applied
    /// after a mid-sequence migration behave as if no migration happened.
    #[test]
    fn migration_mid_sequence_is_transparent(
        ops_a in ops(48), ops_b in ops(48),
        route in 0usize..3,
    ) {
        use rlrpd_shadow::{Shadow, ShadowChoice};
        let size = 48;
        let dest = [ShadowChoice::Dense, ShadowChoice::Packed, ShadowChoice::Sparse][route];
        // Reference: one dense shadow, no migration.
        let mut reference = Shadow::dense(size);
        for op in ops_a.iter().chain(&ops_b) {
            apply(&mut reference, op);
        }
        // Subject: migrate between the two halves of the sequence.
        let mut subject = Shadow::dense(size);
        for op in &ops_a {
            apply(&mut subject, op);
        }
        subject = subject.migrated(dest, size);
        for op in &ops_b {
            apply(&mut subject, op);
        }
        for e in 0..size {
            prop_assert_eq!(reference.mark(e), subject.mark(e));
        }
        prop_assert_eq!(reference.num_touched(), subject.num_touched());
    }
}
