//! Sliding-window size adaptation from failure history.
//!
//! ```sh
//! cargo run --example adaptive_window
//! ```
//!
//! The paper tunes the window size empirically and sketches two
//! adaptive policies: grow the block size when many close dependences
//! are encountered (bigger blocks keep source and sink on one
//! processor), or start with a very large block — equivalent to (N)RD —
//! and shrink it while dependences are uncovered. This example runs
//! both against fixed sizes on a loop with clustered short-distance
//! dependences.

use rlrpd::loops::RandomDepLoop;
use rlrpd::{run_speculative, RunConfig, Strategy, WindowConfig, WindowPolicy};

fn main() {
    // Clustered short-distance dependences: the worst case for small
    // windows, harmless once the window swallows the cluster.
    let lp = RandomDepLoop::new(4096, 0.02, 12, 99, 1.0);
    let p = 8;
    println!(
        "random loop: n = 4096, {} planted dependences (distance ≤ 12), p = {p}\n",
        lp.planted_deps().len()
    );
    println!(
        "{:<26} {:>7} {:>9} {:>9}",
        "window policy", "stages", "restarts", "speedup"
    );

    let run = |label: &str, wcfg: WindowConfig| {
        let r = run_speculative(
            &lp,
            RunConfig::new(p).with_strategy(Strategy::SlidingWindow(wcfg)),
        );
        println!(
            "{:<26} {:>7} {:>9} {:>8.2}x",
            label,
            r.report.stages.len(),
            r.report.restarts,
            r.report.speedup()
        );
    };

    for w in [4usize, 16, 64, 256] {
        run(&format!("fixed w={w}"), WindowConfig::fixed(w));
    }
    run(
        "grow 4→256 on failure",
        WindowConfig {
            iters_per_proc: 4,
            policy: WindowPolicy::GrowOnFailure {
                factor: 2.0,
                max: 256,
            },
            circular: true,
        },
    );
    run(
        "shrink 256→4 on failure",
        WindowConfig {
            iters_per_proc: 256,
            policy: WindowPolicy::ShrinkOnFailure {
                factor: 2.0,
                min: 4,
            },
            circular: true,
        },
    );
}
