//! Persisting a wavefront schedule across process lifetimes.
//!
//! ```sh
//! cargo run --release --example persisted_schedule
//! ```
//!
//! SPICE re-analyzes the same circuit run after run; the paper's
//! schedule reuse extends naturally across *process* lifetimes: extract
//! the DDG once, save the wavefront schedule to disk, and later
//! sessions skip straight to steady state.

use rlrpd::core::WavefrontSchedule;
use rlrpd::loops::SpiceProgram;
use rlrpd::CostModel;

fn main() {
    let path = std::env::temp_dir().join("rlrpd_adder128_schedule.bin");
    let cost = CostModel::default();

    // Session 1: pay the speculative extraction, persist the schedule.
    let mut session1 = SpiceProgram::adder128();
    let r1 = session1.run(5, 8, cost);
    std::fs::write(&path, session1.schedule().unwrap().to_bytes()).expect("write schedule");
    println!(
        "session 1: extraction {:.0} virtual units, steady state {:.2}x, \
         end-to-end over 5 Newton iterations {:.2}x",
        r1.extraction_time,
        r1.steady_state_speedup(),
        r1.total_speedup()
    );
    println!(
        "schedule persisted: {} bytes, {} wavefronts (critical path {})",
        std::fs::metadata(&path).unwrap().len(),
        session1.schedule().unwrap().depth(),
        r1.critical_path
    );

    // Session 2 (a fresh process in real life): load and install.
    let bytes = std::fs::read(&path).expect("read schedule");
    let schedule = WavefrontSchedule::from_bytes(&bytes).expect("valid artifact");
    let mut session2 = SpiceProgram::adder128();
    session2.install_schedule(schedule);
    let r2 = session2.run(5, 8, cost);
    println!(
        "session 2: extraction {:.0} (skipped), end-to-end {:.2}x from the first iteration",
        r2.extraction_time,
        r2.total_speedup()
    );
    assert_eq!(r2.extraction_time, 0.0);
    assert_eq!(r1.steady_state_time, r2.steady_state_time);

    std::fs::remove_file(&path).ok();
    println!("\npersisted schedules carry the paper's one-time analysis across runs ✓");
}
