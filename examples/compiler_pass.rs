//! The run-time pass end to end: write a loop as text, let the
//! classifier decide which arrays need the LRPD test, and execute it
//! speculatively.
//!
//! ```sh
//! cargo run --example compiler_pass
//! ```

use rlrpd::lang::compile;
use rlrpd::{run_sequential, run_speculative, RunConfig, Strategy};

const SOURCE: &str = "
# A small 'simulation step': state updated through scattered,
# input-dependent targets the compiler cannot see through.

array STATE[300]  = 1;            # scattered read/write    -> TESTED
array WORK[256];                  # per-iteration scratch   -> UNTESTED
array ENERGY[8];                  # histogram               -> REDUCTION(+)

cost 20;

for i in 0..256 {
    let src = (i * 13 + 5) % 256; # scattered (non-affine) source
    let v = STATE[src] * 0.5 + i; # exposed read
    WORK[i] = v;                  # affine, iteration-disjoint
    if i % 24 == 0 {
        STATE[src + 17] = v;      # guarded, scattered write
    }
    ENERGY[i % 8] += v;           # pure sum reduction
}
";

fn main() {
    let lp = compile(SOURCE).expect("source compiles");

    println!("the pass classified the arrays as:\n{}", lp.report());

    for (label, strategy) in [
        ("NRD", Strategy::Nrd),
        ("RD", Strategy::Rd),
        (
            "SW64",
            Strategy::SlidingWindow(rlrpd::WindowConfig::fixed(64)),
        ),
    ] {
        let res = run_speculative(&lp, RunConfig::new(8).with_strategy(strategy));
        println!(
            "{label:<4} stages = {:<3} restarts = {:<3} PR = {:.3}  speedup = {:.2}x",
            res.report.stages.len(),
            res.report.restarts,
            res.report.pr(),
            res.report.speedup()
        );
    }

    // The guarantee holds for compiled programs too.
    let res = run_speculative(&lp, RunConfig::new(8));
    let (seq, _) = run_sequential(&lp);
    for ((name, s), (_, r)) in seq.iter().zip(&res.arrays) {
        assert_eq!(s, r, "array {name}");
    }
    println!("\nfinal state identical to sequential execution ✓");
}
