//! The whole-TRACK program over many radar frames, with history-based
//! strategy prediction.
//!
//! ```sh
//! cargo run --release --example track_pipeline
//! ```
//!
//! TRACK's three measured loops (≈95% of sequential time) run once per
//! frame; the parallelism ratio accumulates "over the life of the
//! program" as the paper reports it, feedback-guided balancing learns
//! across frames, and the predictive mode picks each loop's strategy
//! from its own history.

use rlrpd::loops::{ProgramMode, TrackProgram};
use rlrpd::CostModel;

fn main() {
    let frames = 10;
    let prog = TrackProgram::new(frames, 2026);
    println!("TRACK pipeline: {frames} frames, loops NLFILT / EXTEND / FPTRAK\n");

    for p in [4usize, 8, 16] {
        for (label, mode) in [
            ("fixed", ProgramMode::Fixed),
            ("predictive", ProgramMode::Predictive),
        ] {
            let report = prog.run(p, CostModel::default(), mode);
            let loops: Vec<String> = report
                .loops
                .iter()
                .map(|l| format!("{} PR={:.2} {:.2}x", l.name, l.pr, l.speedup()))
                .collect();
            println!(
                "p = {p:>2} [{label:<10}]  {}  =>  program {:.2}x",
                loops.join(" | "),
                report.program_speedup
            );
        }
    }

    println!(
        "\nPR accumulates across instantiations (paper §5.2); the predictive mode\n\
         explores NRD/adaptive/window strategies per loop and settles on the best."
    );
}
