//! Irregular reductions — the intro's motivating application classes.
//!
//! ```sh
//! cargo run --example irregular_reductions
//! ```
//!
//! Three kernels no compiler can statically parallelize, all validated
//! by the speculative reduction test in a single stage:
//!
//! * CHARMM-style non-bonded forces (pair list, scatter to both atoms),
//! * GAUSSIAN-style Fock build (integral quartets, six entries each),
//! * SPICE-style BJT stamps (device list into the Y matrix).

use rlrpd::loops::{BjtLoop, FockBuildLoop, MoldynSystem, NonbondedLoop};
use rlrpd::{run_sequential, run_speculative, RunConfig, SpecLoop, Strategy};

fn show(name: &str, lp: &dyn SpecLoop<f64>, reduced_array: &str) {
    let res = run_speculative(lp, RunConfig::new(8).with_strategy(Strategy::Nrd));
    let (seq, _) = run_sequential(lp);
    let max_err = res
        .array(reduced_array)
        .iter()
        .zip(&seq.iter().find(|(n, _)| *n == reduced_array).unwrap().1)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{name:<24} iters = {:<6} stages = {} PR = {:.2} speedup = {:.2}x  max |Δ| vs seq = {max_err:.2e}",
        lp.num_iters(),
        res.report.stages.len(),
        res.report.pr(),
        res.report.speedup()
    );
    assert_eq!(res.report.stages.len(), 1, "reductions never restart");
}

fn main() {
    println!("irregular reductions under the speculative reduction test (p = 8)\n");
    show(
        "moldyn non-bonded",
        &NonbondedLoop::new(MoldynSystem::new(2000, 12, 1)),
        "FORCE",
    );
    show("gaussian fock build", &FockBuildLoop::reference(), "FOCK");
    show("spice bjt stamps", &BjtLoop::adder128(), "Y");
    println!(
        "\nevery kernel commits in ONE speculative stage: colliding updates are\n\
         deltas folded at commit, never dependences — the paper's reduction test."
    );
}
