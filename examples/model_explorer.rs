//! Explore the Section-4 analytical model from the command line.
//!
//! ```sh
//! cargo run --example model_explorer -- [n] [p] [omega] [ell] [sync] [alpha]
//! ```
//!
//! Prints `k_s`, `k_d`, the Eq. 4 redistribution cutoff, the NRD /
//! adaptive / always predictions, and the per-stage simulation for the
//! given geometric loop.

use rlrpd::model::{
    k_d_geometric, k_s_geometric, simulate_stages, t_static, t_total_geometric, ModelParams,
    RedistPolicy,
};

fn arg(k: usize, default: f64) -> f64 {
    std::env::args()
        .nth(k)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let params = ModelParams {
        n: arg(1, 4096.0) as usize,
        p: arg(2, 8.0) as usize,
        omega: arg(3, 100.0),
        ell: arg(4, 10.0),
        sync: arg(5, 50.0),
    };
    let alpha = arg(6, 0.5);

    println!("model parameters: {params:?}, alpha = {alpha}");
    println!("  total work n·ω            = {}", params.total_work());
    println!(
        "  ideal parallel time       = {}",
        params.ideal_parallel_time()
    );

    let k_s = k_s_geometric(alpha, params.p);
    let k_d = k_d_geometric(&params, alpha);
    let cutoff = params.p as f64 * params.sync / (params.omega - params.ell).max(1e-12);
    println!("  k_s (NRD stages)          = {k_s:.2}");
    println!("  k_d (redistributing)      = {k_d:.2}");
    println!("  Eq. 4 cutoff (iterations) = {cutoff:.1}");
    println!(
        "  T_static (pure NRD)       = {:.1}",
        t_static(&params, k_s.ceil())
    );
    println!(
        "  T(n) (adaptive, Eq. 6)    = {:.1}",
        t_total_geometric(&params, alpha)
    );

    for policy in [
        RedistPolicy::Never,
        RedistPolicy::Adaptive,
        RedistPolicy::Always,
    ] {
        let stages = simulate_stages(&params, alpha, policy);
        let total: f64 = stages.iter().map(|s| s.total()).sum();
        println!("\n  {policy:?}: {} stages, total {total:.1}", stages.len());
        for s in &stages {
            println!(
                "    stage {:>2}: remaining {:>6}  loop {:>9.1}  redist {:>7.1}  sync {:>6.1}{}",
                s.stage,
                s.remaining,
                s.loop_time,
                s.redist_overhead,
                s.sync_overhead,
                if s.redistributed { "  [RD]" } else { "" }
            );
        }
    }
}
