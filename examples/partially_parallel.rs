//! Strategy comparison on a partially parallel loop (an NLFILT-style
//! tracking kernel with guarded short-distance dependences).
//!
//! ```sh
//! cargo run --example partially_parallel
//! ```
//!
//! Shows the trade-offs of Section 2: NRD never wastes redistribution
//! but leaves processors idle; RD keeps everyone busy but may uncover
//! new dependences; the adaptive rule switches between them; the
//! sliding window re-executes the least work at the price of more
//! synchronizations. The classic (non-recursive) LRPD test is included
//! to show the slowdown the R-LRPD test eliminates.

use rlrpd::core::{run_classic_lrpd, AdaptRule};
use rlrpd::loops::{NlfiltInput, NlfiltLoop};
use rlrpd::{run_speculative, RunConfig, Strategy, WindowConfig};

fn main() {
    let lp = NlfiltLoop::new(NlfiltInput::i16_400());
    let p = 8;
    println!(
        "NLFILT-style loop, input {}, {} guarded writes, p = {p}\n",
        lp.input().name,
        lp.num_guarded_writes()
    );
    println!(
        "{:<28} {:>7} {:>9} {:>7} {:>9}",
        "strategy", "stages", "restarts", "PR", "speedup"
    );

    let cases = [
        ("NRD", Strategy::Nrd),
        ("RD", Strategy::Rd),
        (
            "adaptive (Eq. 4)",
            Strategy::AdaptiveRd(AdaptRule::ModelEq4),
        ),
        (
            "adaptive (measured)",
            Strategy::AdaptiveRd(AdaptRule::Measured),
        ),
        (
            "sliding window w=32",
            Strategy::SlidingWindow(WindowConfig::fixed(32)),
        ),
        (
            "sliding window w=128",
            Strategy::SlidingWindow(WindowConfig::fixed(128)),
        ),
    ];
    for (label, strategy) in cases {
        let r = run_speculative(&lp, RunConfig::new(p).with_strategy(strategy));
        println!(
            "{:<28} {:>7} {:>9} {:>7.3} {:>8.2}x",
            label,
            r.report.stages.len(),
            r.report.restarts,
            r.report.pr(),
            r.report.speedup()
        );
    }

    // The baseline the paper improves on: one failed doall, then fully
    // sequential re-execution.
    let classic = run_classic_lrpd(&lp, &RunConfig::new(p));
    println!(
        "{:<28} {:>7} {:>9} {:>7.3} {:>8.2}x   <- pays the whole speculation as slowdown",
        "classic LRPD (baseline)",
        classic.report.stages.len(),
        classic.report.restarts,
        classic.report.pr(),
        classic.report.speedup()
    );
}
