//! DDG extraction + wavefront scheduling on a SPICE-style sparse LU
//! loop (DCDCMP loop 15 of the paper).
//!
//! ```sh
//! cargo run --release --example wavefront_spice
//! ```
//!
//! The loop's addresses depend on data it produces (total workspace
//! aliasing), so no side-effect-free inspector exists; the sliding-
//! window R-LRPD test extracts the full data dependence graph *while
//! executing the loop correctly*, and the resulting wavefront schedule
//! is reused for every later instantiation.

use rlrpd::core::{execute_wavefronts, WavefrontSchedule};
use rlrpd::loops::Dcdcmp15Loop;
use rlrpd::{extract_ddg, run_speculative, CostModel, ExecMode, RunConfig, Strategy, WindowConfig};

fn main() {
    // The adder.128-shaped deck: 14337 unknowns, critical path ~334.
    let lp = Dcdcmp15Loop::adder128();
    let cfg = RunConfig::new(8);

    println!("extracting DDG with the sparse sliding-window R-LRPD test…");
    let ddg = extract_ddg(&lp, &cfg, WindowConfig::fixed(64));
    println!(
        "  flow edges = {}, anti = {}, output = {}",
        ddg.graph.flow.len(),
        ddg.graph.anti.len(),
        ddg.graph.output.len()
    );
    println!(
        "  iterations = 14337, flow critical path = {} (paper: 334)",
        ddg.graph.flow_critical_path()
    );

    let schedule = WavefrontSchedule::from_graph(&ddg.graph);
    println!(
        "  wavefront schedule: {} levels, average width {:.1}\n",
        schedule.depth(),
        schedule.avg_width()
    );

    println!("reusing the schedule across instantiations:");
    for p in [2usize, 4, 8, 16] {
        let (_, report) =
            execute_wavefronts(&lp, &schedule, p, ExecMode::Simulated, CostModel::default());
        println!("  p = {p:>2}: wavefront speedup {:.2}x", report.speedup());
    }

    // Compare with running the same loop through the plain R-LRPD test
    // (dense dependence structure -> nearly serial schedule).
    let direct = run_speculative(&lp, RunConfig::new(8).with_strategy(Strategy::Rd));
    println!(
        "\nplain R-LRPD on the same loop at p = 8: {:.2}x with {} restarts \
         (why DDG extraction pays)",
        direct.report.speedup(),
        direct.report.restarts
    );
}
