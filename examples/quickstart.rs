//! Quickstart: speculatively parallelize a loop the compiler cannot
//! analyze.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The loop writes `a[idx[i]]` and reads `a[jdx[i]]` through
//! subscript arrays unknown at compile time — the textbook case for
//! run-time dependence testing. The R-LRPD test executes it as a
//! sequence of fully parallel stages, committing every correctly
//! executed prefix, and guarantees the final state equals sequential
//! execution.

use rlrpd::{
    run_sequential, run_speculative, ArrayDecl, ArrayId, ClosureLoop, RunConfig, ShadowKind,
};

const A: ArrayId = ArrayId(0);

fn main() {
    let n = 1000;
    // Input-dependent subscripts (here: a fixed pattern — each
    // iteration writes its own slot but occasionally reads a recent
    // neighbour's, the short-distance dependences the paper targets).
    let idx: Vec<usize> = (0..n).collect();
    let jdx: Vec<usize> = (0..n)
        .map(|i| if i > 0 && i % 43 == 0 { i - 17 } else { i })
        .collect();

    let lp = ClosureLoop::new(
        n,
        move || vec![ArrayDecl::tested("A", vec![1.0; 1000], ShadowKind::Dense)],
        move |i, ctx| {
            let v = ctx.read(A, jdx[i]);
            ctx.write(A, idx[i], v * 0.5 + i as f64);
        },
    )
    // Each iteration carries real work (ω = 50 virtual units) — the
    // paper targets loops whose bodies dwarf the test overhead.
    .with_cost(|_| 50.0);

    // Run on 8 virtual processors (deterministic simulated machine).
    let result = run_speculative(&lp, RunConfig::new(8));

    println!("stages executed : {}", result.report.stages.len());
    println!("restarts        : {}", result.report.restarts);
    println!("parallelism PR  : {:.3}", result.report.pr());
    println!(
        "virtual speedup : {:.2}x over sequential",
        result.report.speedup()
    );
    println!("dependence arcs : {}", result.arcs.len());

    // The guarantee: identical to sequential execution, always.
    let (seq, _) = run_sequential(&lp);
    assert_eq!(result.array("A"), &seq[0].1[..]);
    println!("final state matches sequential execution ✓");
}
