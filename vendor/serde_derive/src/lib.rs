//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace only ever *derives* these traits (for future
//! serialization surface); nothing bounds on them, so the derives can
//! expand to nothing.

use proc_macro::TokenStream;

/// Derive macro accepting `#[derive(serde::Serialize)]`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro accepting `#[derive(serde::Deserialize)]`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
