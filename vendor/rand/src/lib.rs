//! Offline shim for `rand` 0.9: a deterministic xoshiro256** generator
//! behind the `StdRng` name, with the `random_range`/`random_bool` API
//! subset the workspace uses. The stream differs from crates.io
//! `StdRng` (ChaCha12), which only changes the synthetic workload data —
//! everything in this repository is self-consistently deterministic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full seed state from a single `u64` (via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a range can be sampled over; implemented for `Range` and
/// `RangeInclusive` of the primitive integers and floats.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full domain: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(v)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// A uniformly distributed value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's "standard" RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn bool_probability_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..u64::MAX) == b.random_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
