//! Offline shim for `criterion`: a minimal timing harness with the
//! `criterion_group!`/`criterion_main!`/`benchmark_group` surface.
//!
//! Each benchmark is auto-calibrated to a target measurement budget and
//! reports the median per-iteration time over a fixed number of
//! measurement batches. No plots, no statistics beyond the median —
//! enough to compare implementations and record baselines offline.
//! `cargo bench -- <filter>` runs only benchmarks whose id contains the
//! filter substring.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark id.
const TARGET: Duration = Duration::from_millis(300);
/// Measurement batches per benchmark id (median is reported).
const BATCHES: usize = 11;

/// The benchmark driver handed to group/target functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// A driver with its id filter parsed from the command line.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        // cargo bench passes `--bench` plus any user filter strings.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.enabled(id) {
            run_one(id, &mut f);
        }
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().0);
        if self.c.enabled(&id) {
            run_one(&id, &mut f);
        }
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.0);
        if self.c.enabled(&id) {
            run_one(&id, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    /// Declare the group's throughput (recorded, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declared throughput of a benchmark.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    // Calibrate: grow the iteration count until one batch is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * (BATCHES as u32) >= TARGET || iters >= 1 << 24 {
            break;
        }
        let target_batch = TARGET / BATCHES as u32;
        if b.elapsed.is_zero() {
            iters *= 16;
        } else {
            let scale = target_batch.as_secs_f64() / b.elapsed.as_secs_f64();
            iters = ((iters as f64 * scale.clamp(1.1, 16.0)) as u64).max(iters + 1);
        }
    }

    let mut samples: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    println!(
        "{id:<60} {:>12} ns/iter  (x{iters})",
        format_ns(median * 1e9)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Collect benchmark target functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dense", 100).0, "dense/100");
        assert_eq!(BenchmarkId::from_parameter("even").0, "even");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed > Duration::ZERO || b.iters == 1000);
    }
}
