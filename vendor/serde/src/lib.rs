//! Offline shim for `serde`: marker traits plus re-exported no-op
//! derive macros. The workspace derives `Serialize`/`Deserialize` on
//! report/statistics types for future serialization surface but never
//! calls a serializer, so empty traits are sufficient.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
