//! Offline shim for `proptest`: deterministic random case generation
//! with the strategy-combinator surface this workspace uses. No
//! shrinking — a failing case panics with its generated inputs, which
//! are reproducible because every test derives its RNG seed from its
//! own module path.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// The `prop` namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare deterministic property tests.
///
/// Accepts the `proptest!` block syntax used in this workspace: an
/// optional `#![proptest_config(...)]` inner attribute followed by
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut rng = $crate::test_runner::new_rng(seed);
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        if e.is_reject() {
                            continue;
                        }
                        ::std::panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body (fails the case, not the
/// whole process, though without shrinking the effect is the same).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Skip the current case when an assumption about the generated inputs
/// does not hold (the case is rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Choose uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
