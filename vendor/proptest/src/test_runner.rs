//! Test-runner configuration and case errors.

/// Configuration of one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases (overridable via the
    /// `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// A failed or rejected property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    reject: bool,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError {
            message,
            reject: false,
        }
    }

    /// A rejected case (`prop_assume!` did not hold): skipped, not a
    /// failure.
    pub fn reject(message: String) -> Self {
        TestCaseError {
            message,
            reject: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

/// A deterministic RNG for the named test, seeded from the name alone.
pub fn new_rng(seed: u64) -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic 64-bit FNV-1a hash of a test's name, used as its RNG
/// seed so every run generates the same cases.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(seed_from_name("a::b"), seed_from_name("a::c"));
    }

    #[test]
    fn config_carries_cases() {
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_cases(64).cases, 64);
            assert_eq!(ProptestConfig::default().cases, 256);
        }
    }
}
