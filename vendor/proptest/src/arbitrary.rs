//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary_with(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary_with(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_with(rng: &mut StdRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary_with(rng: &mut StdRng) -> f64 {
        // Finite, symmetric, spanning many magnitudes.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (unit - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary_with(rng: &mut StdRng) -> f32 {
        f64::arbitrary_with(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = any::<u64>();
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_ne!(a, b);
        let _: bool = any::<bool>().sample(&mut rng);
        let f = any::<f64>().sample(&mut rng);
        assert!(f.is_finite());
    }
}
