//! Value-generation strategies: ranges, tuples, collections, mapping,
//! and unions — the combinator subset this workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| self.sample(rng)))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among several strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`, each picked with equal probability.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
    (inclusive $($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
impl_range_strategy!(inclusive u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length specification for [`vec`]: a fixed size or a size range.
pub trait SizeRange {
    /// Draw a length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// A strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S, L> {
    elem: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element_strategy, length)`.
pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { elem, len }
}

/// `&str` patterns as string strategies, supporting the regex subset
/// this workspace uses: literal characters, character classes
/// (`[a-z_\\n]` with ranges and escapes), and `{min,max}` repetition of
/// the preceding class or literal.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn sample_pattern(pat: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a (possibly escaped) literal.
        let pool: Vec<char> = if chars[i] == '[' {
            let mut pool = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let lo = if chars[i] == '\\' {
                    i += 1;
                    unescape(chars[i])
                } else {
                    chars[i]
                };
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let hi = if chars[i + 2] == '\\' {
                        i += 1;
                        unescape(chars[i + 2])
                    } else {
                        chars[i + 2]
                    };
                    pool.extend((lo..=hi).filter(|c| c.is_ascii() || *c > '\u{7f}'));
                    i += 3;
                } else {
                    pool.push(lo);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated character class in {pat:?}");
            i += 1; // consume ']'
            pool
        } else if chars[i] == '\\' {
            i += 1;
            let c = unescape(chars[i]);
            i += 1;
            vec![c]
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!pool.is_empty(), "empty character class in {pat:?}");

        // Optional {min,max} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|k| i + k)
                .unwrap_or_else(|| panic!("unterminated repetition in {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad repetition bound"),
                    hi.trim().parse::<usize>().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let n = rng.random_range(min..=max);
        for _ in 0..n {
            out.push(pool[rng.random_range(0..pool.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_tuples_and_vecs_compose() {
        let strat = vec((0usize..8, 0.0f64..1.0).prop_map(|(a, b)| (a, b)), 3..10);
        let mut r = rng();
        for _ in 0..50 {
            let v = strat.sample(&mut r);
            assert!((3..10).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 8);
                assert!((0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn union_draws_every_option() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
